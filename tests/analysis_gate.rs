//! Local mirror of the CI `analysis-gate` job: the gate inputs under
//! `ci/analysis/` must stay in sync with the sources they mirror, and
//! the analyzer must reproduce the checked-in expectations exactly.
//!
//! CI diffs `basecamp analyze <input> --json` against the expectation
//! files byte-for-byte; this test performs the same comparison through
//! the library API so a drift is caught by `cargo test` before the
//! workflow ever runs.

use everest_sdk::basecamp::{Basecamp, CompileOptions};
use everest_usecases::traffic::mapmatch::CONDRUST_MAP_MATCH;

const PROBE_EKL: &str = include_str!("../ci/analysis/probe.ekl");
const MAPMATCH_RS: &str = include_str!("../ci/analysis/mapmatch.rs");
const EXPECTED_PROBE: &str = include_str!("../ci/analysis/expected_probe.json");
const EXPECTED_MAPMATCH: &str = include_str!("../ci/analysis/expected_mapmatch.json");

/// The coordination gate input is the paper's Fig. 4 program — the
/// same text the use-case crate ships. If one side changes, the other
/// must follow (and the expectation file with it).
#[test]
fn gate_input_mirrors_the_mapmatch_use_case() {
    assert_eq!(
        MAPMATCH_RS.trim(),
        CONDRUST_MAP_MATCH.trim(),
        "ci/analysis/mapmatch.rs drifted from CONDRUST_MAP_MATCH"
    );
}

#[test]
fn probe_kernel_report_matches_the_checked_in_expectation() {
    let basecamp = Basecamp::new();
    let kernel = basecamp
        .compile_kernel(PROBE_EKL, CompileOptions::default())
        .expect("probe.ekl compiles");
    let report = basecamp.analyze_kernel(&kernel);
    assert_eq!(
        report.to_json(),
        EXPECTED_PROBE.trim_end(),
        "probe expectation drifted; regenerate per ci/analysis/README.md"
    );
    assert!(!report.has_denials(), "gate input must stay deny-free");
}

#[test]
fn mapmatch_report_matches_the_checked_in_expectation() {
    let basecamp = Basecamp::new();
    let program = basecamp
        .compile_coordination(MAPMATCH_RS)
        .expect("mapmatch.rs compiles");
    let report = basecamp.analyze_coordination(&program);
    assert_eq!(
        report.to_json(),
        EXPECTED_MAPMATCH.trim_end(),
        "mapmatch expectation drifted; regenerate per ci/analysis/README.md"
    );
    assert!(!report.has_denials(), "gate input must stay deny-free");
}
