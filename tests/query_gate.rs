//! Local mirror of the CI `query-gate` job: the EXPLAIN JSON that
//! `basecamp query --json` emits for the corpus under `ci/query/` must
//! reproduce the checked-in expectations byte-for-byte, and a same-seed
//! replay must be byte-identical.
//!
//! CI diffs the CLI output against the expectation files; this test
//! performs the same comparison through the library API so a drift is
//! caught by `cargo test` before the workflow ever runs.

use everest_sdk::query::{run_query, QueryOptions};

const CORPUS: &[(&str, &str, &str)] = &[
    (
        "traffic",
        include_str!("../ci/query/traffic_join.sql"),
        include_str!("../ci/query/expected_traffic_join.json"),
    ),
    (
        "airquality",
        include_str!("../ci/query/airquality_daily.sql"),
        include_str!("../ci/query/expected_airquality_daily.json"),
    ),
    (
        "energy",
        include_str!("../ci/query/energy_capacity.sql"),
        include_str!("../ci/query/expected_energy_capacity.json"),
    ),
];

fn gate_options(dataset: &str, sql: &str) -> QueryOptions {
    QueryOptions {
        dataset: dataset.to_string(),
        sql: sql.trim().to_string(),
        ..QueryOptions::default()
    }
}

#[test]
fn explain_json_matches_the_checked_in_expectations() {
    for (dataset, sql, expected) in CORPUS {
        let report = run_query(&gate_options(dataset, sql)).expect("gate query runs");
        // The CLI writes `explain_json().trim_end()` plus a newline;
        // mirror that framing exactly.
        assert_eq!(
            format!("{}\n", report.explain_json().trim_end()),
            **expected,
            "{dataset} expectation drifted; regenerate per ci/query/README.md"
        );
    }
}

#[test]
fn same_seed_explain_replays_byte_identically() {
    for (dataset, sql, _) in CORPUS {
        let options = gate_options(dataset, sql);
        let a = run_query(&options).expect("first replay");
        let b = run_query(&options).expect("second replay");
        assert_eq!(
            a.explain_json(),
            b.explain_json(),
            "{dataset}: EXPLAIN JSON must replay byte-identically"
        );
    }
}

#[test]
fn gate_queries_pass_verification_and_lints_cleanly() {
    for (dataset, sql, _) in CORPUS {
        let report = run_query(&gate_options(dataset, sql)).expect("gate query runs");
        assert!(
            !report.analysis.has_denials(),
            "{dataset}: gate query must stay deny-free"
        );
        assert!(
            !report.lowered.kernels.is_empty(),
            "{dataset}: gate query must lower to at least one kernel"
        );
    }
}
