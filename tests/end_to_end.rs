//! Workspace integration tests: the full SDK flow from DSL text to
//! simulated cluster execution, crossing every crate boundary.

use everest_sdk::basecamp::{Basecamp, CompileOptions};
use everest_sdk::everest_ekl::rrtmg::{
    input_map, major_absorber_reference, major_absorber_source, synthetic_inputs, RrtmgDims,
};
use everest_sdk::workflow::{Workflow, WorkflowStep};

fn dims() -> RrtmgDims {
    RrtmgDims {
        nlay: 10,
        ngpt: 4,
        ntemp: 5,
        npres: 10,
        neta: 4,
        nflav: 2,
    }
}

/// DSL text → IR → interpreted execution must equal the hand-written
/// Fortran-shaped reference, through the public SDK entry point.
#[test]
fn compiled_rrtmg_matches_reference_numerics() {
    let basecamp = Basecamp::new();
    let compiled = basecamp
        .compile_kernel(&major_absorber_source(dims()), CompileOptions::default())
        .unwrap();

    let inputs = synthetic_inputs(dims());
    let reference = major_absorber_reference(dims(), &inputs);

    // Run the lowered loop IR in the functional simulator.
    let mut interp = everest_sdk::everest_ir::interp::Interpreter::new();
    let map = input_map(&inputs);
    let mut args = Vec::new();
    for name in &compiled.program.inputs {
        let t = &map[name];
        args.push(
            interp.alloc_buffer(everest_sdk::everest_ir::interp::Buffer::from_data(
                &t.shape,
                t.data.clone(),
            )),
        );
    }
    let out_shape = compiled.program.tensors["tau_abs"].shape.clone();
    let out = interp.alloc_buffer(everest_sdk::everest_ir::interp::Buffer::zeros(&out_shape));
    args.push(out.clone());
    interp
        .run_function(&compiled.module, "major_absorber", &args)
        .unwrap();
    let everest_sdk::everest_ir::interp::Value::Buffer(h) = out else {
        panic!("buffer handle expected");
    };
    let got = &interp.buffer(h).data;
    assert_eq!(got.len(), reference.len());
    for (g, w) in got.iter().zip(&reference) {
        assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0));
    }
}

/// Compile → deploy → execute: the accelerated ensemble workflow must
/// beat the CPU-only one on an EVEREST-style cluster.
#[test]
fn accelerated_ensemble_workflow_wins() {
    let basecamp = Basecamp::new();
    let compiled = basecamp
        .compile_kernel(
            &major_absorber_source(dims()),
            CompileOptions {
                explore: true,
                batch_items: 128,
                ..CompileOptions::default()
            },
        )
        .unwrap();

    // An ensemble of 8 members, each: prep -> radiation (accelerable) ->
    // post, followed by a merge.
    let mut workflow = Workflow::new("ensemble");
    let mut member_posts = Vec::new();
    for m in 0..8 {
        workflow = workflow
            .step(WorkflowStep {
                name: format!("prep{m}"),
                depends_on: vec![],
                cpu_us: 1_000.0,
                output_bytes: 1 << 20,
                accelerate_with: None,
            })
            .step(WorkflowStep {
                name: format!("radiation{m}"),
                depends_on: vec![format!("prep{m}")],
                cpu_us: 400_000.0,
                output_bytes: 1 << 18,
                accelerate_with: Some("rrtmg".into()),
            })
            .step(WorkflowStep {
                name: format!("post{m}"),
                depends_on: vec![format!("radiation{m}")],
                cpu_us: 2_000.0,
                output_bytes: 1 << 16,
                accelerate_with: None,
            });
        member_posts.push(format!("post{m}"));
    }
    workflow = workflow.step(WorkflowStep {
        name: "merge".into(),
        depends_on: member_posts,
        cpu_us: 5_000.0,
        output_bytes: 1 << 20,
        accelerate_with: None,
    });

    let cluster = everest_sdk::everest_runtime::Cluster::everest(2, 2, 8);
    let accelerated = workflow
        .execute(&[("rrtmg", &compiled)], cluster.clone())
        .unwrap();
    let mut cpu_only = workflow.clone();
    for s in &mut cpu_only.steps {
        s.accelerate_with = None;
    }
    let plain = cpu_only.execute(&[], cluster).unwrap();
    assert!(
        accelerated.makespan_us < plain.makespan_us,
        "acceleration must win: {} vs {}",
        accelerated.makespan_us,
        plain.makespan_us
    );
    let on_fpga = accelerated.entries.iter().filter(|e| e.on_fpga).count();
    assert_eq!(on_fpga, 8, "all radiation steps offloaded");
}

/// Custom data formats (§VIII highlight): recompiling the same kernel
/// with base2 fixed-point must cut latency and DSPs vs f64 through the
/// public API.
#[test]
fn custom_formats_trade_accuracy_for_speed_via_sdk() {
    let basecamp = Basecamp::new();
    let source = major_absorber_source(dims());
    let double = basecamp
        .compile_kernel(&source, CompileOptions::default())
        .unwrap();
    let fixed = basecamp
        .compile_kernel(
            &source,
            CompileOptions {
                hls: everest_sdk::everest_hls::HlsOptions {
                    format: everest_sdk::everest_hls::NumericFormat::Fixed(
                        everest_sdk::everest_ir::FixedFormat::signed(15, 16),
                    ),
                    ..everest_sdk::everest_hls::HlsOptions::default()
                },
                ..CompileOptions::default()
            },
        )
        .unwrap();
    assert!(fixed.hls.cycles < double.hls.cycles);
    assert!(fixed.hls.area.dsps <= double.hls.area.dsps);
}

/// The virtualized runtime claim (Fig. 6): running the generated host
/// driver inside a VF-passthrough VM is near native; emulated I/O is
/// not.
#[test]
fn virtualization_overhead_shapes_hold_for_compiled_kernels() {
    use everest_sdk::everest_platform::device::FpgaDevice;
    use everest_sdk::everest_platform::xrt::XrtDevice;
    use everest_sdk::everest_runtime::{IoMode, PhysicalNode};

    let basecamp = Basecamp::new();
    let compiled = basecamp
        .compile_kernel(&major_absorber_source(dims()), CompileOptions::default())
        .unwrap();
    let arch = compiled.architecture.as_ref().unwrap();

    let node = PhysicalNode::new("host", 32, FpgaDevice::alveo_u55c(), 4);
    let vm_pt = node.start_vm(8, IoMode::VfPassthrough);
    node.plug_vf(vm_pt).unwrap();
    let vm_em = node.start_vm(8, IoMode::Emulated);

    let run = |session: &mut XrtDevice| -> f64 {
        let t0 = session.now_us();
        everest_sdk::everest_olympus::run_host_driver(arch, session, 64).unwrap();
        session.now_us() - t0
    };
    let mut native = XrtDevice::open(FpgaDevice::alveo_u55c());
    let t_native = run(&mut native);
    let mut pt = node.open_accelerator(vm_pt).unwrap();
    let t_pt = run(&mut pt);
    let mut em = node.open_accelerator(vm_em).unwrap();
    let t_em = run(&mut em);

    assert!(
        (t_pt - t_native) / t_native < 0.05,
        "VF passthrough must be near-native: native {t_native:.0}, pt {t_pt:.0}"
    );
    assert!(
        t_em > t_pt,
        "emulated I/O must cost more: {t_em:.0} vs {t_pt:.0}"
    );
}
