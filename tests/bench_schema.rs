//! Validates the committed bench records against their checked-in
//! schemas (`BENCH_e16.json` against `ci/bench_schema.json`,
//! `BENCH_e17.json` against `ci/bench_e17_schema.json`,
//! `BENCH_e19.json` against `ci/bench_e19_schema.json`), so a
//! `bench_record` change that drops or renames a field fails the
//! suite before CI tries to parse the record for regression checks.
//!
//! The validator covers the JSON-Schema subset the schema file uses:
//! `type` (object / array / string / number / integer), `const`,
//! `required`, `properties`, and `items`. Adding a keyword to the
//! schema without teaching the validator is itself an error — unknown
//! keywords are rejected rather than silently ignored.

use serde::Value;

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn load(rel: &str) -> Value {
    let path = repo_path(rel);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{rel} is not valid JSON: {e}"))
}

/// Keywords the validator understands; anything else in a schema
/// object is a schema bug.
const KNOWN_KEYWORDS: &[&str] = &[
    "$schema",
    "title",
    "description",
    "type",
    "const",
    "required",
    "properties",
    "items",
];

fn validate(schema: &Value, value: &Value, path: &str, errors: &mut Vec<String>) {
    let Value::Object(fields) = schema else {
        errors.push(format!("{path}: schema node is not an object"));
        return;
    };
    for (keyword, _) in fields {
        if !KNOWN_KEYWORDS.contains(&keyword.as_str()) {
            errors.push(format!("{path}: unsupported schema keyword '{keyword}'"));
        }
    }
    if let Some(Value::Str(ty)) = schema.get("type") {
        let ok = match ty.as_str() {
            "object" => matches!(value, Value::Object(_)),
            "array" => matches!(value, Value::Array(_)),
            "string" => matches!(value, Value::Str(_)),
            "number" => matches!(value, Value::Num(_)),
            "integer" => matches!(value, Value::Num(n) if n.fract() == 0.0),
            other => {
                errors.push(format!("{path}: unsupported type '{other}' in schema"));
                return;
            }
        };
        if !ok {
            errors.push(format!("{path}: expected {ty}, found {value:?}"));
            return;
        }
    }
    if let Some(Value::Str(expected)) = schema.get("const") {
        if value != &Value::Str(expected.clone()) {
            errors.push(format!(
                "{path}: expected constant \"{expected}\", found {value:?}"
            ));
        }
    }
    if let Some(Value::Array(required)) = schema.get("required") {
        for key in required {
            if let Value::Str(key) = key {
                if value.get(key).is_none() {
                    errors.push(format!("{path}: missing required field '{key}'"));
                }
            }
        }
    }
    if let Some(Value::Object(properties)) = schema.get("properties") {
        for (key, sub) in properties {
            if let Some(field) = value.get(key) {
                validate(sub, field, &format!("{path}.{key}"), errors);
            }
        }
    }
    if let Some(items) = schema.get("items") {
        if let Value::Array(elements) = value {
            for (i, element) in elements.iter().enumerate() {
                validate(items, element, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn errors_for(schema: &Value, value: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    validate(schema, value, "$", &mut errors);
    errors
}

#[test]
fn committed_bench_record_matches_schema() {
    // CI points this at the smoke record to check it satisfies the
    // same shape; by default the committed baseline is validated.
    let rel = std::env::var("BENCH_RECORD_PATH").unwrap_or_else(|_| "BENCH_e16.json".to_string());
    let schema = load("ci/bench_schema.json");
    let record = load(&rel);
    let errors = errors_for(&schema, &record);
    assert!(
        errors.is_empty(),
        "{rel} violates ci/bench_schema.json:\n  {}",
        errors.join("\n  ")
    );
}

#[test]
fn committed_e17_record_matches_schema() {
    let schema = load("ci/bench_e17_schema.json");
    let record = load("BENCH_e17.json");
    let errors = errors_for(&schema, &record);
    assert!(
        errors.is_empty(),
        "BENCH_e17.json violates ci/bench_e17_schema.json:\n  {}",
        errors.join("\n  ")
    );
    // The committed record must carry the experiment's headline: the
    // lifecycle layer completing more than its features-off baseline.
    let field = |block: &str, key: &str| -> f64 {
        match record.get(block).and_then(|b| b.get(key)) {
            Some(Value::Num(n)) => *n,
            other => panic!("BENCH_e17.json {block}.{key} is not a number: {other:?}"),
        }
    };
    assert!(
        field("virtual", "completed") > field("virtual", "baseline_completed"),
        "the committed E17 record must show a goodput improvement"
    );
}

#[test]
fn committed_e19_record_matches_schema() {
    let schema = load("ci/bench_e19_schema.json");
    let record = load("BENCH_e19.json");
    let errors = errors_for(&schema, &record);
    assert!(
        errors.is_empty(),
        "BENCH_e19.json violates ci/bench_e19_schema.json:\n  {}",
        errors.join("\n  ")
    );
    // The committed record must carry the experiment's headline: the
    // optimizer's rewrite rules shrinking the lowered schedule.
    let field = |block: &str, key: &str| -> f64 {
        match record.get(block).and_then(|b| b.get(key)) {
            Some(Value::Num(n)) => *n,
            other => panic!("BENCH_e19.json {block}.{key} is not a number: {other:?}"),
        }
    };
    assert!(
        field("virtual", "plan_speedup") >= 1.0,
        "the committed E19 record must show the optimizer not inflating the schedule"
    );
    assert!(
        field("virtual", "cycles_optimized") <= field("virtual", "cycles_unoptimized"),
        "the committed E19 cycle counts must be consistent with the speedup"
    );
}

#[test]
fn validator_rejects_missing_and_mistyped_fields() {
    let schema = load("ci/bench_schema.json");
    let mut record = load("BENCH_e16.json");

    // Drop a required block: must be reported.
    if let Value::Object(fields) = &mut record {
        fields.retain(|(k, _)| k != "wall");
    }
    let errors = errors_for(&schema, &record);
    assert!(
        errors
            .iter()
            .any(|e| e.contains("missing required field 'wall'")),
        "dropping 'wall' went unnoticed: {errors:?}"
    );

    // Mistype a field: must be reported with its path.
    let mut record = load("BENCH_e16.json");
    if let Value::Object(fields) = &mut record {
        for (k, v) in fields.iter_mut() {
            if k == "date" {
                *v = Value::Num(1.0);
            }
        }
    }
    let errors = errors_for(&schema, &record);
    assert!(
        errors.iter().any(|e| e.starts_with("$.date")),
        "mistyped 'date' went unnoticed: {errors:?}"
    );
}
