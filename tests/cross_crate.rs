//! Cross-crate integration: autotuner driving compiled variants, the
//! anomaly service guarding weather inputs, DOSA partitioning compiled
//! kernels, and dialect round-trips across every flow.

use everest_sdk::basecamp::{Basecamp, CompileOptions, Target};
use everest_sdk::everest_autotuner::{
    config, Autotuner, Constraint, Features, Objective, OperatingPoint,
};
use everest_sdk::everest_ekl::rrtmg::{major_absorber_source, RrtmgDims};

fn dims() -> RrtmgDims {
    RrtmgDims {
        nlay: 8,
        ngpt: 4,
        ntemp: 5,
        npres: 10,
        neta: 4,
        nflav: 2,
    }
}

/// The autotuner (§VI-C) selects between the compiled FPGA variant and a
/// CPU estimate, and switches when the FPGA becomes contended.
#[test]
fn autotuner_arbitrates_compiled_variants() {
    let basecamp = Basecamp::new();
    let compiled = basecamp
        .compile_kernel(&major_absorber_source(dims()), CompileOptions::default())
        .unwrap();
    let fpga_us = compiled.fpga_time_us.unwrap();
    let cpu_us = fpga_us * 40.0; // CPU estimate for the same kernel

    let mut tuner = Autotuner::new();
    tuner.add_point(OperatingPoint::new(config([("variant", "fpga")])).expect("time_us", fpga_us));
    tuner.add_point(OperatingPoint::new(config([("variant", "cpu")])).expect("time_us", cpu_us));
    tuner.set_objective(Objective::minimize("time_us"));
    assert_eq!(
        tuner.best(&Features::new()).unwrap()["variant"].to_string(),
        "fpga"
    );
    // FPGA cluster contended: observations degrade 100x.
    let fpga_cfg = config([("variant", "fpga")]);
    for _ in 0..10 {
        tuner.observe(&fpga_cfg, "time_us", fpga_us * 100.0);
    }
    assert_eq!(
        tuner.best(&Features::new()).unwrap()["variant"].to_string(),
        "cpu",
        "under contention the CPU variant must win"
    );
    let _ = Constraint::le("time_us", 1.0);
}

/// Anomaly detection as input sanitization (§VII): corrupt station
/// observations before assimilation are flagged.
#[test]
fn anomaly_service_guards_weather_observations() {
    use everest_sdk::everest_anomaly::dataset::Dataset;
    use everest_sdk::everest_anomaly::detectors::{Detector, Mahalanobis};
    use everest_sdk::everest_usecases::weather::{observe_truth, ModelConfig, WeatherModel};

    let model = WeatherModel::new(ModelConfig::default());
    let truth = model.initial_condition(9);
    let clean = observe_truth(&truth, 200, 0.3, 3);
    let rows: Vec<Vec<f64>> = clean
        .iter()
        .map(|o| vec![o.i as f64, o.j as f64, o.temp])
        .collect();
    let data = Dataset::from_rows(rows);
    let detector = Mahalanobis::fit(&data, 1e-6, 0.02);
    // A corrupted observation: 60 K too warm (sensor failure).
    let bad = vec![5.0, 5.0, truth.temp.at(5, 5) + 60.0];
    assert!(
        detector.is_anomalous(&bad),
        "corrupt observation must be flagged"
    );
    let good = vec![5.0, 5.0, truth.temp.at(5, 5) + 0.2];
    assert!(!detector.is_anomalous(&good));
}

/// DOSA (§V-C): a pipeline of compiled kernels partitions across
/// cloudFPGA nodes; the result respects per-node resources.
#[test]
fn dosa_partitions_compiled_pipeline() {
    use everest_sdk::everest_olympus::{partition, KernelSpec};
    use everest_sdk::everest_platform::device::FpgaDevice;
    use everest_sdk::everest_platform::link::NetworkModel;

    let basecamp = Basecamp::new();
    let compiled = basecamp
        .compile_kernel(
            &major_absorber_source(dims()),
            CompileOptions {
                target: Target::CloudFpga,
                ..CompileOptions::default()
            },
        )
        .unwrap();
    // A 4-stage pipeline of the same kernel shape.
    let stage = KernelSpec::from_report(compiled.hls.clone(), 0.6);
    let stages: Vec<KernelSpec> = (0..4)
        .map(|k| KernelSpec {
            name: format!("stage{k}"),
            ..stage.clone()
        })
        .collect();
    let device = FpgaDevice::cloudfpga();
    let result = partition(&stages, &device, &NetworkModel::cloudfpga_tcp(), 4).unwrap();
    assert!(!result.assignments.is_empty());
    assert!(result.latency_us > 0.0);
    // every stage assigned exactly once, in order
    let covered: usize = result.assignments.iter().map(|r| r.len()).sum();
    assert_eq!(covered, 4);
}

/// Every IR module produced anywhere in the SDK round-trips through the
/// textual format.
#[test]
fn all_flow_ir_roundtrips() {
    let basecamp = Basecamp::new();
    let compiled = basecamp
        .compile_kernel(&major_absorber_source(dims()), CompileOptions::default())
        .unwrap();
    let coordination = basecamp
        .compile_coordination(everest_sdk::everest_usecases::traffic::mapmatch::CONDRUST_MAP_MATCH)
        .unwrap();
    for module in [
        &compiled.module,
        compiled.system_ir.as_ref().unwrap(),
        &coordination.dfg_ir,
    ] {
        let text = Basecamp::print_ir(module);
        let parsed = everest_sdk::everest_ir::parse::parse_module(&text).unwrap();
        assert_eq!(Basecamp::print_ir(&parsed), text);
        everest_sdk::everest_ir::verify::verify_module(basecamp.context(), &parsed).unwrap();
    }
}

/// The scheduler degrades gracefully and recovers under failure while
/// running a compiled workflow.
#[test]
fn failure_recovery_with_compiled_kernels() {
    use everest_sdk::everest_runtime::{Cluster, Failure, Policy, Scheduler, TaskGraph, TaskSpec};

    let basecamp = Basecamp::new();
    let compiled = basecamp
        .compile_kernel(&major_absorber_source(dims()), CompileOptions::default())
        .unwrap();
    let fpga_us = compiled.fpga_time_us.unwrap();

    let mut graph = TaskGraph::new();
    let src = graph
        .add(TaskSpec::new("src", 100.0).with_output_bytes(1 << 16))
        .unwrap();
    for k in 0..10 {
        graph
            .add(
                TaskSpec::new(&format!("rad{k}"), fpga_us * 30.0)
                    .after([src])
                    .with_fpga(fpga_us)
                    .with_output_bytes(1 << 14),
            )
            .unwrap();
    }
    let scheduler = Scheduler::new(Cluster::everest(2, 2, 4), Policy::Heft);
    let clean = scheduler.run(&graph);
    let failed = scheduler.run_with_failure(
        &graph,
        Some(Failure {
            node: clean.entries[1].node,
            at_us: clean.makespan_us * 0.3,
        }),
    );
    assert_eq!(failed.entries.len(), graph.len(), "all tasks complete");
    assert!(failed.makespan_us >= clean.makespan_us);
}
