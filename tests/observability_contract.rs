//! The observability contract: every span, counter, gauge, histogram,
//! monitor and event name the SDK records must be documented in
//! `docs/OBSERVABILITY.md`. Stable names are the interface tooling keys
//! on — adding instrumentation without documenting it fails here.

use std::collections::BTreeSet;

use everest_autotuner::{config, Autotuner, Features, Objective, OperatingPoint};
use everest_ir::pass::{ConstantFolding, Cse, Dce, LoopInvariantCodeMotion, PassManager};
use everest_olympus::KernelSpec;
use everest_platform::device::FpgaDevice;
use everest_platform::link::NetworkModel;
use everest_platform::memory::AccessPattern;
use everest_platform::xrt::{Direction, XrtDevice};
use everest_runtime::virt::{IoMode, PhysicalNode};
use everest_runtime::{
    Cluster, DetRng, Failure, FaultInjector, FaultKind, FaultPlan, FaultSpec, Policy,
    RecoveryConfig, RetryPolicy, Scheduler, TaskGraph, TaskSpec,
};
use everest_sdk::basecamp::{Basecamp, CompileOptions};
use everest_sdk::chaos::{run_chaos, ChaosOptions};
use everest_sdk::heal::{run_heal, HealOptions};
use everest_sdk::query::{run_query, QueryOptions};
use everest_sdk::serve::{run_serve, ServeOptions};
use everest_telemetry::Registry;

const CONTRACT: &str = include_str!("../docs/OBSERVABILITY.md");

/// A recorded name is covered when it appears verbatim in the doc, or
/// when it matches one of the two documented *structured* name schemes.
fn documented(name: &str) -> bool {
    if CONTRACT.contains(name) {
        return true;
    }
    // `ir.pass.<name>`: the scheme plus each pass name is documented.
    if let Some(pass) = name.strip_prefix("ir.pass.") {
        return CONTRACT.contains("ir.pass.<name>") && CONTRACT.contains(&format!("`{pass}`"));
    }
    // `autotuner.<config>.<metric>`: structured monitor names.
    if name.starts_with("autotuner.") && CONTRACT.contains("autotuner.<config>.<metric>") {
        return true;
    }
    // `health.node<i>.<series>`: per-node health-monitor windows.
    if let Some(rest) = name.strip_prefix("health.node") {
        let series_ok = rest.ends_with(".inflation") || rest.ends_with(".link");
        return series_ok && CONTRACT.contains("health.node<i>.<series>");
    }
    false
}

/// Exercises every instrumented subsystem so the global registry holds
/// a representative sample of the whole namespace.
fn exercise_sdk() {
    let basecamp = Basecamp::new();
    let source = "
        kernel contract_probe {
            index i : 0..256
            input x : [i]
            input y : [i]
            let s[i] = 2.0 * x[i] + y[i]
            let total = sum(i)(s[i])
            output s
            output total
        }";
    let compiled = basecamp
        .compile_kernel(
            source,
            CompileOptions {
                explore: true,
                ..CompileOptions::default()
            },
        )
        .expect("probe kernel compiles");
    basecamp.analyze_kernel(&compiled);
    basecamp
        .compile_coordination(everest_usecases::traffic::mapmatch::CONDRUST_MAP_MATCH)
        .expect("coordination compiles");

    // IR pass pipeline.
    let mut pm = PassManager::new();
    pm.add(Box::new(Dce))
        .add(Box::new(Cse))
        .add(Box::new(LoopInvariantCodeMotion))
        .add(Box::new(ConstantFolding));
    let mut module = compiled.module.clone();
    pm.run(basecamp.context(), &mut module)
        .expect("pipeline runs");

    // Olympus multi-kernel partitioning.
    let spec = KernelSpec::from_report(compiled.hls.clone(), 0.7);
    everest_olympus::partition(
        &[spec.clone(), spec],
        &FpgaDevice::alveo_u55c(),
        &NetworkModel::cloudfpga_tcp(),
        2,
    )
    .expect("partition succeeds");

    // Platform sessions: PCIe- and network-attached.
    for device in [FpgaDevice::alveo_u55c(), FpgaDevice::cloudfpga()] {
        let mut session = XrtDevice::open(device);
        session.load_bitstream("contract.xclbin");
        let bo = session.alloc_bo(1 << 20, 0).expect("fits");
        session
            .sync_bo(bo.handle, Direction::HostToDevice)
            .expect("syncs");
        session.run_kernel("contract_probe", 10_000).expect("runs");
        session.memory_stream_time_us(1 << 20, &AccessPattern::default());
    }

    // Scheduler with an injected failure.
    let mut graph = TaskGraph::new();
    let src = graph
        .add(TaskSpec::new("src", 100.0).with_output_bytes(1 << 10))
        .expect("adds");
    for i in 0..6 {
        graph
            .add(TaskSpec::new(&format!("work{i}"), 2_000.0).after([src]))
            .expect("adds");
    }
    let scheduler = Scheduler::new(Cluster::homogeneous(3, 1), Policy::Heft);
    scheduler.run(&graph);
    scheduler.run_with_failure(
        &graph,
        Some(Failure {
            node: 0,
            at_us: 1_500.0,
        }),
    );

    // Fault injection across the platform session: DMA hang, transient
    // kernel error with retry, ECC stall, failed partial reconfig.
    let fault_plan = FaultPlan::new(99)
        .with_fault(FaultSpec::new(50.0, 0, FaultKind::DmaTimeout))
        .with_fault(FaultSpec::new(200.0, 0, FaultKind::TransientKernelError))
        .with_fault(FaultSpec::new(400.0, 0, FaultKind::MemoryEcc))
        .with_fault(FaultSpec::new(500.0, 0, FaultKind::PartialReconfigFail));
    let mut faulty = XrtDevice::open(FpgaDevice::alveo_u55c())
        .with_faults(FaultInjector::for_node(fault_plan, 0));
    faulty.load_bitstream("contract.xclbin");
    let bo = faulty.alloc_bo(1 << 20, 0).expect("fits");
    assert!(
        faulty.sync_bo(bo.handle, Direction::HostToDevice).is_err(),
        "planned DMA timeout must surface"
    );
    faulty
        .sync_bo(bo.handle, Direction::HostToDevice)
        .expect("second sync succeeds, timeout already fired");
    let mut rng = DetRng::new(99);
    faulty
        .run_kernel_with_retry("contract_probe", 100_000, &RetryPolicy::default(), &mut rng)
        .expect("transient recovers under retry");
    faulty
        .run_kernel("contract_probe", 100_000)
        .expect("ecc stalls but succeeds");
    assert!(
        faulty.partial_reconfig("role0").is_err(),
        "planned reconfig failure must surface"
    );

    // Plan-driven multi-fault scheduling: retries with backoff, CPU
    // degradation after a VF loss, quarantine after repeated faults.
    let mut chaos_graph = TaskGraph::new();
    for i in 0..8 {
        chaos_graph
            .add(TaskSpec::new(&format!("c{i}"), 4_000.0).with_fpga(500.0))
            .expect("adds");
    }
    let chaos_plan = FaultPlan::new(7)
        .with_fault(FaultSpec::new(100.0, 0, FaultKind::TransientKernelError))
        .with_fault(FaultSpec::new(600.0, 0, FaultKind::MemoryEcc))
        .with_fault(FaultSpec::new(1_200.0, 0, FaultKind::TransientKernelError))
        .with_fault(FaultSpec::new(10.0, 1, FaultKind::VfUnplug { vf: 0 }));
    Scheduler::new(Cluster::everest(0, 2, 4), Policy::Heft).run_with_plan(
        &chaos_graph,
        &chaos_plan,
        &RecoveryConfig {
            quarantine_threshold: 2,
            ..RecoveryConfig::default()
        },
    );

    // A full seeded campaign through the SDK facade (basecamp.chaos).
    run_chaos(&ChaosOptions {
        seed: 5,
        nodes: 2,
        tasks: 6,
        faults: 3,
    });

    // The closed self-healing loop through the SDK facade
    // (basecamp.heal): gray campaign, verdicts, breaker trips,
    // migrations, checkpoints and the in-process resume check.
    run_heal(&HealOptions::default());

    // The serving front end through the SDK facade (basecamp.serve):
    // overload sheds at the door and in queue, chaos exercises the
    // fault and breaker paths, the autotuner retunes the batch ceiling.
    run_serve(&ServeOptions {
        load: 4.0,
        chaos: 4,
        horizon_ms: 80.0,
        ..ServeOptions::default()
    });

    // The same front end with the full request-lifecycle layer on, so
    // the retry, hedge, limiter and brownout names are all recorded.
    run_serve(&ServeOptions {
        load: 4.0,
        chaos: 4,
        horizon_ms: 80.0,
        retries: true,
        hedge: true,
        limiter: true,
        brownout: true,
        ..ServeOptions::default()
    });

    // And with the partition-tolerance layer on: gossip rounds, SWIM
    // probes and confirms, shard failovers, fencing and the typed
    // partitioned-away shed all record their `cluster.*` names.
    run_serve(&ServeOptions {
        chaos: 3,
        partition: 3,
        horizon_ms: 80.0,
        retries: true,
        brownout: true,
        ..ServeOptions::default()
    });

    // An analytic query end to end through the SDK facade
    // (basecamp.query): parse, optimize, execute, lower to kernels.
    run_query(&QueryOptions::default()).expect("contract query runs");

    // SR-IOV virtualization: boots, plugs, contention, unplug, then the
    // fault path — a surprise unplug and its repair.
    let node = PhysicalNode::new("contract0", 16, FpgaDevice::alveo_u55c(), 2);
    let vm = node.start_vm(4, IoMode::VfPassthrough);
    let vf = node.plug_vf(vm).expect("first plug");
    node.plug_vf(vm).expect("second plug");
    assert!(node.plug_vf(vm).is_err(), "third plug must hit contention");
    node.unplug_vf(vm, vf).expect("unplug");
    let replug = node.plug_vf(vm).expect("replug");
    node.surprise_unplug_vf(replug).expect("surprise unplug");
    node.repair_vf(replug).expect("repair");

    // Autotuner sharing the global registry, forced to switch variants.
    let mut tuner = Autotuner::new().with_registry(Registry::global());
    tuner.add_point(OperatingPoint::new(config([("variant", "fpga")])).expect("time_us", 500.0));
    tuner.add_point(OperatingPoint::new(config([("variant", "cpu")])).expect("time_us", 4_000.0));
    tuner.set_objective(Objective::minimize("time_us"));
    let fpga = config([("variant", "fpga")]);
    tuner.best(&Features::new()).expect("decides");
    for _ in 0..10 {
        tuner.observe(&fpga, "time_us", 60_000.0);
    }
    tuner.best(&Features::new()).expect("decides again");
}

#[test]
fn every_recorded_name_is_documented() {
    let registry = Registry::global();
    exercise_sdk();

    let mut names: BTreeSet<String> = BTreeSet::new();
    names.extend(registry.spans().into_iter().map(|s| s.name));
    names.extend(registry.counter_names());
    names.extend(registry.gauge_names());
    names.extend(registry.histogram_names());
    names.extend(registry.monitor_names());
    names.extend(registry.events().into_iter().map(|e| e.name));

    // The probe must have touched every layer.
    for expected in [
        "basecamp.compile",
        "ir.pipeline",
        "hls.synthesize",
        "olympus.explore",
        "olympus.partition",
        "platform.pcie.bytes",
        "platform.network.bytes",
        "platform.faults.dma_timeouts",
        "platform.kernel.retries",
        "faults.injected",
        "scheduler.run",
        "scheduler.retries",
        "scheduler.degraded_tasks",
        "basecamp.chaos",
        "basecamp.heal",
        "health.samples",
        "health.verdicts",
        "scheduler.breaker_opens",
        "scheduler.migrations",
        "scheduler.checkpoints",
        "virt.vf_plugs",
        "virt.vf_faults",
        "virt.vf_repairs",
        "autotuner.switches",
        "basecamp.serve",
        "serve.run",
        "serve.requests_offered",
        "serve.requests_completed",
        "serve.batches_dispatched",
        "serve.queue_depth",
        "serve.latency_us",
        "serve.batch_size",
        "serve.faults",
        "serve.retry.attempts",
        "serve.hedge.launched",
        "serve.shed.overloaded",
        "serve.brownout.tier",
        "serve.limiter.limit",
        "basecamp.query",
        "query.parse",
        "query.optimize",
        "query.execute",
        "query.lower",
        "query.queries",
        "query.rows_out",
        "query.kernels",
    ] {
        assert!(
            names.contains(expected),
            "probe failed to record {expected}; recorded: {names:?}"
        );
    }

    let undocumented: Vec<&String> = names.iter().filter(|n| !documented(n)).collect();
    assert!(
        undocumented.is_empty(),
        "names recorded but missing from docs/OBSERVABILITY.md: {undocumented:?}"
    );
}

#[test]
fn chrome_trace_span_names_are_documented() {
    // Mirrors the CLI acceptance path: the span names that end up in a
    // `--trace` export must all be in the contract document.
    let registry = Registry::new();
    {
        let _compile = registry.span("basecamp.compile");
        let _hls = registry.span("basecamp.hls");
    }
    let trace = registry.to_chrome_trace();
    for span in registry.spans() {
        assert!(trace.contains(&format!("\"name\":\"{}\"", span.name)));
        assert!(documented(&span.name), "{} undocumented", span.name);
    }
}
