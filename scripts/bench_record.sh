#!/usr/bin/env sh
# Records the E16 serving perf baseline into BENCH_e16.json at the
# repository root. The virtual metrics are deterministic; the wall
# events/sec figure is machine-dependent and tracks the ROADMAP item-3
# perf trajectory. Commit the refreshed file alongside perf-relevant
# changes.
set -eu

cd "$(dirname "$0")/.."
cargo build --release -p everest-sdk --bin bench_record
./target/release/bench_record --date "$(date -I)" --out BENCH_e16.json
