#!/usr/bin/env sh
# Records a serving perf baseline at the repository root:
# BENCH_e16.json (saturation campaign, default), BENCH_e17.json
# (lifecycle campaign — pass `--bench e17`) or BENCH_e19.json (analytic
# query suite — pass `--bench e19`). The virtual metrics are
# deterministic; the wall events/sec figure is machine-dependent and
# tracks the ROADMAP item-3 perf trajectory. The record being replaced
# is appended to the new record's "history" array, so the committed
# file carries the whole trajectory. Commit the refreshed file
# alongside perf-relevant changes.
#
# Extra arguments pass through to the bench_record binary and later
# flags win, so the defaults below can be overridden:
#
#   scripts/bench_record.sh --smoke --out target/bench_smoke.json \
#       --baseline BENCH_e16.json --max-regression 2.0
#
# runs the short-horizon CI smoke variant and fails when the measured
# rate is more than 2x slower than the committed baseline. See
# docs/PERFORMANCE.md for the full methodology.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_e16.json
for a in "$@"; do
  [ "$a" = "e17" ] && out=BENCH_e17.json
  [ "$a" = "e19" ] && out=BENCH_e19.json
done
cargo build --release -p everest-sdk --bin bench_record
./target/release/bench_record --date "$(date -I)" --out "$out" "$@"
