//! Offline drop-in replacement for the subset of `proptest 1.x` this
//! workspace uses: the `proptest! { #[test] fn name(x in strategy, ..) }`
//! DSL with range strategies, `any::<T>()`, tuple strategies,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! reports its case index and seed, which is enough to reproduce it
//! deterministically (generation is a fixed function of the test name
//! and case index).

use std::ops::Range;

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for one `(test, case)` pair. The stream
    /// depends only on these inputs, so failures replay exactly.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f32 / (1u64 << 53) as f32;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: keep arithmetic-heavy properties meaningful.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (unit - 0.5) * 2e12
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Assertion failure with its rendered message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a rendered message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError::Fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// Shorthand for the result type property bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Defines property tests over generated inputs.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(test_name, case);
                    $(let $arg =
                        $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        panic!("{test_name} failed at case {case}: {err}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..17,
            y in -2.0f64..2.0,
            flag in any::<bool>(),
            v in crate::collection::vec(0u8..4, 1..6),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            if flag {
                prop_assert!(x >= 3);
            }
            prop_assert!(!v.is_empty() && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 4, "element {} out of range", e);
            }
            if x == 3 {
                return Ok(());
            }
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn tuples_generate_componentwise(
            pair in (0u32..10, 5usize..9),
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert_eq!(pair.1 / 9, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = 0u64..1_000_000;
        let a: Vec<u64> = {
            let mut rng = TestRng::for_case("t", 7);
            (0..16).map(|_| Strategy::generate(&s, &mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_case("t", 7);
            (0..16).map(|_| Strategy::generate(&s, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_name_the_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
