//! Offline drop-in replacement for the subset of `serde 1.0` this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on plain
//! named-field structs and enums (no `#[serde(...)]` attributes), fed
//! into `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! Instead of serde's visitor architecture, this stub converts values
//! through an owned JSON-like [`Value`] tree: `Serialize` produces a
//! `Value`, `Deserialize` consumes one. The derive macro lives in the
//! companion `serde_derive` crate and generates impls of these two
//! traits.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like data tree, the interchange format between the derive
/// impls and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (integers are stored exactly up to 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with field order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a field of an object, treating a missing field as
    /// `null` (so `Option` fields deserialize to `None`).
    pub fn get_or_null(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable description of the
/// mismatch between the value tree and the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, found {got:?}"))
    }
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the interchange tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the tree does not match the type's shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// Identity impls, mirroring upstream `serde_json::Value`: parsing into
// a `Value` keeps the document as-is for schema-agnostic inspection.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                match value {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                match value {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Error, Serialize, Value};

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_uses_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Num(3.0)), Ok(Some(3)));
    }

    #[test]
    fn fractional_numbers_are_not_integers() {
        assert_eq!(
            u32::from_value(&Value::Num(1.5)),
            Err(Error::expected("integer", &Value::Num(1.5)))
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".to_string(), Value::Num(1.0))]);
        assert_eq!(v.get("a"), Some(&Value::Num(1.0)));
        assert_eq!(v.get("b"), None);
        assert_eq!(v.get_or_null("b"), &Value::Null);
    }
}
