//! Offline drop-in replacement for the subset of `rand 0.9` this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::random_range` over
//! half-open and inclusive numeric ranges, and `SliceRandom::shuffle`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, dependency-free stand-ins with matching package
//! names (see `vendor/README.md`). The generator is xoshiro256++
//! seeded through SplitMix64: small, fast, and statistically fine for
//! the simulations and synthetic data generation in this repository.
//! Determinism per seed is guaranteed, but streams differ from
//! upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding constructor, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator (xoshiro256++ in this stub, seeded via
    /// SplitMix64 like upstream `rand` recommends).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut sm = seed;
            let mut word = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut rng = StdRng {
                state: [word(), word(), word(), word()],
            };
            // Warm the state up so nearby seeds decorrelate further.
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.random_range(1i64..=4);
            assert!((1..=4).contains(&z));
        }
    }

    #[test]
    fn float_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let x = rng.random_range(0.0f64..1.0);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
