//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! Supports the shapes this workspace actually derives on: non-generic
//! named-field structs and enums whose variants are unit, tuple, or
//! named-field, with no `#[serde(...)]` attributes. Enum encoding is
//! externally tagged like upstream serde: unit variants as strings,
//! newtype variants as `{"Variant": value}`, tuple variants as
//! `{"Variant": [..]}`, struct variants as `{"Variant": {..}}`.
//!
//! The macro parses the item at the token level (no `syn`/`quote`,
//! which are unavailable offline) and emits impls of `serde::Serialize`
//! / `serde::Deserialize` as generated source text.

use std::fmt::Write as _;
use std::iter::Peekable;
use std::str::FromStr;

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: `(variant, kind)` in declaration order.
    Enum(Vec<(String, VariantKind)>),
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Named-field variant: field names in order.
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` (conversion into a `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => serialize_struct_body(fields),
        Shape::Enum(variants) => serialize_enum_body(&name, variants),
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    TokenStream::from_str(&code).expect("serde_derive emitted invalid Rust")
}

/// Derives `serde::Deserialize` (reconstruction from a `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => deserialize_struct_body(&name, fields),
        Shape::Enum(variants) => deserialize_enum_body(&name, variants),
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    );
    TokenStream::from_str(&code).expect("serde_derive emitted invalid Rust")
}

fn serialize_struct_body(fields: &[String]) -> String {
    let mut pairs = String::new();
    for f in fields {
        let _ = write!(
            pairs,
            "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
        );
    }
    format!("::serde::Value::Object(vec![{pairs}])")
}

fn serialize_enum_body(name: &str, variants: &[(String, VariantKind)]) -> String {
    let mut arms = String::new();
    for (variant, kind) in variants {
        let arm = match kind {
            VariantKind::Unit => {
                format!("{name}::{variant} => ::serde::Value::Str(\"{variant}\".to_string()),")
            }
            VariantKind::Tuple(1) => format!(
                "{name}::{variant}(f0) => ::serde::Value::Object(vec![(\
                 \"{variant}\".to_string(), ::serde::Serialize::to_value(f0))]),"
            ),
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{variant}({}) => ::serde::Value::Object(vec![(\
                     \"{variant}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                    binds.join(", "),
                    items.join(", ")
                )
            }
            VariantKind::Struct(fields) => {
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{variant} {{ {} }} => ::serde::Value::Object(vec![(\
                     \"{variant}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                    fields.join(", "),
                    pairs.join(", ")
                )
            }
        };
        arms.push_str(&arm);
    }
    format!("match self {{ {arms} }}")
}

fn deserialize_struct_body(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        let _ = write!(
            inits,
            "{f}: ::serde::Deserialize::from_value(value.get_or_null(\"{f}\"))?,"
        );
    }
    format!(
        "match value {{\n\
         ::serde::Value::Object(_) => Ok({name} {{ {inits} }}),\n\
         other => Err(::serde::Error::expected(\"object\", other)),\n\
         }}"
    )
}

fn deserialize_enum_body(name: &str, variants: &[(String, VariantKind)]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for (variant, kind) in variants {
        match kind {
            VariantKind::Unit => {
                let _ = write!(unit_arms, "\"{variant}\" => Ok({name}::{variant}),");
            }
            VariantKind::Tuple(1) => {
                let _ = write!(
                    payload_arms,
                    "\"{variant}\" => Ok({name}::{variant}(\
                     ::serde::Deserialize::from_value(payload)?)),"
                );
            }
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                let _ = write!(
                    payload_arms,
                    "\"{variant}\" => {{\n\
                     let items = payload.as_array().ok_or_else(|| \
                     ::serde::Error::expected(\"array\", payload))?;\n\
                     if items.len() != {n} {{ return Err(::serde::Error(\
                     format!(\"expected {n} fields for {variant}, found {{}}\", \
                     items.len()))); }}\n\
                     Ok({name}::{variant}({}))\n\
                     }}",
                    items.join(", ")
                );
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             payload.get_or_null(\"{f}\"))?"
                        )
                    })
                    .collect();
                let _ = write!(
                    payload_arms,
                    "\"{variant}\" => Ok({name}::{variant} {{ {} }}),",
                    inits.join(", ")
                );
            }
        }
    }
    format!(
        "match value {{\n\
         ::serde::Value::Str(tag) => match tag.as_str() {{\n\
         {unit_arms}\n\
         other => Err(::serde::Error(format!(\"unknown variant {{other}}\"))),\n\
         }},\n\
         ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
         let (tag, payload) = &fields[0];\n\
         let _ = payload;\n\
         match tag.as_str() {{\n\
         {payload_arms}\n\
         other => Err(::serde::Error(format!(\"unknown variant {{other}}\"))),\n\
         }}\n\
         }},\n\
         other => Err(::serde::Error::expected(\"enum value\", other)),\n\
         }}"
    )
}

// ---------------------------------------------------------------------
// Token-level item parsing.

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive stub does not support generic items ({name})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive stub requires named fields ({name})")
            }
            Some(_) => continue,
            None => panic!("serde_derive: missing body for {name}"),
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body.stream())),
        "enum" => Shape::Enum(parse_variants(body.stream())),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

/// Skips `#[...]` attributes (including doc comments) and `pub` /
/// `pub(...)` visibility qualifiers.
fn skip_attributes_and_visibility(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` named fields, returning the names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:`, found {other:?}"),
        }
        skip_type(&mut tokens);
    }
    fields
}

/// Consumes a type up to (and including) the next top-level comma,
/// tracking `<...>` nesting so generic arguments do not split early.
fn skip_type(tokens: &mut Tokens) {
    let mut angle_depth = 0i32;
    for token in tokens.by_ref() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

/// Parses enum variants: unit, tuple, or named-field.
fn parse_variants(stream: TokenStream) -> Vec<(String, VariantKind)> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push((name, kind));
        // Skip any discriminant and the trailing comma.
        for token in tokens.by_ref() {
            if matches!(&token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

/// Counts top-level comma-separated entries in a tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut saw_tokens = false;
    for token in stream {
        saw_tokens = true;
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}
