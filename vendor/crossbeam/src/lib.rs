//! Offline drop-in replacement for the subset of `crossbeam 0.8` this
//! workspace uses: `channel::bounded` with clonable senders.
//!
//! Backed by `std::sync::mpsc::sync_channel`, which matches the
//! multi-producer single-consumer usage in `everest-condrust`'s
//! deterministic executor exactly (senders are cloned per producer,
//! each receiver is moved into one consumer thread).

pub mod channel {
    //! Bounded MPSC channels.

    use std::sync::mpsc;

    /// Sending half of a bounded channel. Clonable.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when every receiver has been dropped; carries the
    /// unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates a channel that blocks senders once `capacity` messages
    /// are in flight (`capacity == 0` gives rendezvous semantics).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued; errors if disconnected.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once the channel is
        /// empty and every sender has been dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError};

    #[test]
    fn multi_producer_fan_in() {
        let (tx, rx) = bounded::<u32>(4);
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(k).unwrap())
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(5).is_err());
    }
}
