//! Offline drop-in replacement for the subset of `parking_lot 0.12`
//! this workspace uses: a `Mutex` whose `lock()` returns the guard
//! directly (no poisoning).
//!
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered rather
//! than propagated, which matches `parking_lot`'s no-poisoning model.

use std::sync::MutexGuard as StdGuard;

/// A mutual-exclusion primitive without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(10);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 15);
        assert_eq!(m.into_inner(), 15);
    }

    #[test]
    fn shared_counter_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }
}
