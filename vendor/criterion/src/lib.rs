//! Offline drop-in replacement for the subset of `criterion 0.x` this
//! workspace uses: `Criterion::bench_function`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurements are a simple warmup-then-sample mean over wall-clock
//! time — enough to print comparable numbers for the paper experiments
//! without the statistical machinery of upstream criterion. When the
//! binary is invoked with `--test` (as `cargo test` does for benchmark
//! targets), each routine runs exactly once so test runs stay fast.

use std::time::{Duration, Instant};

/// Benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u32,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Benchmarks one routine under `id`, printing the mean time.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, self.test_mode, f);
        self
    }

    /// Opens a named group; its benchmarks print as `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u32,
    test_mode: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Benchmarks one routine under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_bench(&full, self.sample_size, self.test_mode, f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op offline).
    pub fn finish(self) {}
}

fn run_bench<F>(id: &str, sample_size: u32, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: if test_mode { 1 } else { sample_size },
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.total.as_secs_f64() / bencher.iterations as f64;
        println!("{id:<40} time: {}", format_seconds(mean));
    }
}

/// Timing context passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warmup run.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iterations += u64::from(self.samples);
    }
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut criterion = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut count = 0u32;
        criterion.bench_function("counting", |b| b.iter(|| count += 1));
        // 1 warmup + 3 samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn unit_formatting_picks_scales() {
        assert!(format_seconds(2.5).ends_with(" s"));
        assert!(format_seconds(2.5e-3).ends_with(" ms"));
        assert!(format_seconds(2.5e-6).ends_with(" µs"));
        assert!(format_seconds(2.5e-9).ends_with(" ns"));
    }
}
