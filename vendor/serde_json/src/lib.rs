//! Offline drop-in replacement for the subset of `serde_json 1.0` this
//! workspace uses: `to_string`, `to_string_pretty`, `from_str`, and the
//! `Error` type — all in terms of the vendored `serde::Value` tree.

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as JSON indented with two spaces.
///
/// # Errors
///
/// Infallible for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = Parser::new(text).parse_document()?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer.

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write as _;
    const SAFE_INT: f64 = 9_007_199_254_740_992.0; // 2^53
    if !n.is_finite() {
        out.push_str("null"); // upstream serde_json also cannot encode these
    } else if n.fract() == 0.0 && n.abs() < SAFE_INT {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters"));
        }
        Ok(value)
    }

    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected `{}`", c as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.error("expected object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| self.error("invalid UTF-8"))?;
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err(self.error("unterminated string")),
                Some((_, '"')) => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some((_, c)) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_round_trip() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::Str("u55c \"hbm\"".to_string())),
            (
                "nums".to_string(),
                Value::Array(vec![Value::Num(1.0), Value::Num(-2.5), Value::Null]),
            ),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        for pretty in [false, true] {
            let mut text = String::new();
            write_value(&mut text, &value, if pretty { Some(2) } else { None }, 0);
            let back = Parser::new(&text).parse_document().unwrap();
            assert_eq!(back, value, "failed for pretty={pretty}: {text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut out = String::new();
        write_number(&mut out, 600_000.0);
        assert_eq!(out, "600000");
    }

    #[test]
    fn parse_errors_name_the_position() {
        let err = Parser::new("{\"a\": }").parse_document().unwrap_err();
        assert!(err.to_string().contains("at byte"));
        assert!(Parser::new("[1, 2").parse_document().is_err());
        assert!(Parser::new("12 tail").parse_document().is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let value = Value::Str("line\nbreak\ttab \\ \"q\" \u{1}".to_string());
        let mut text = String::new();
        write_value(&mut text, &value, None, 0);
        assert_eq!(Parser::new(&text).parse_document().unwrap(), value);
    }
}
