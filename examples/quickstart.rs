//! Quickstart: compile an EKL kernel through the whole SDK flow and
//! print every artifact the paper's Fig. 2 pipeline produces.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use everest_sdk::basecamp::{Basecamp, CompileOptions, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a kernel in the EVEREST Kernel Language (paper §V-A.1):
    //    Einstein-notation tensor code with explicit summation.
    let source = "
        kernel saxpy_sum {
            index i : 0..1024
            input a : [i]
            input x : [i]
            input y : [i]
            let scaled[i] = 2.0 * a[i] * x[i] + y[i]
            let total = sum(i)(scaled[i])
            output scaled
            output total
        }";

    // 2. basecamp is the single point of access to the SDK (§IV).
    let basecamp = Basecamp::new();

    // 3. Compile for an Alveo u55c with design-space exploration.
    let options = CompileOptions {
        target: Target::AlveoU55c,
        explore: true,
        batch_items: 256,
        ..CompileOptions::default()
    };
    let kernel = basecamp.compile_kernel(source, options)?;

    println!("== EKL frontend ==");
    println!("kernel:   {}", kernel.program.name);
    println!("inputs:   {:?}", kernel.program.inputs);
    println!("outputs:  {:?}", kernel.program.outputs);

    println!("\n== Loop-level IR (excerpt) ==");
    let ir = Basecamp::print_ir(&kernel.module);
    for line in ir.lines().take(12) {
        println!("{line}");
    }
    println!("... ({} lines total)", ir.lines().count());

    println!("\n== HLS report ==");
    println!("cycles:       {}", kernel.hls.cycles);
    println!(
        "latency:      {:.1} us @ {:.0} MHz",
        kernel.hls.time_us, kernel.hls.fmax_mhz
    );
    println!(
        "area:         {} LUT, {} FF, {} DSP, {} BRAM",
        kernel.hls.area.luts, kernel.hls.area.ffs, kernel.hls.area.dsps, kernel.hls.area.brams
    );
    for l in &kernel.hls.loops {
        println!(
            "loop depth {}: trip {}, II {}, pipelined: {}",
            l.depth, l.trip_count, l.ii, l.pipelined
        );
    }

    let arch = kernel.architecture.as_ref().expect("FPGA target");
    println!("\n== Olympus system architecture ==");
    println!("platform:      {}", arch.platform);
    println!(
        "configuration: {} replicas x {} lanes, {}-byte packing, double-buffer: {}",
        arch.config.replication,
        arch.config.lanes_per_replica,
        arch.config.pack_bytes,
        arch.config.double_buffer
    );
    println!(
        "per-call time: {:.2} us",
        kernel.fpga_time_us.expect("FPGA target")
    );

    println!("\n== olympus dialect IR ==");
    println!(
        "{}",
        Basecamp::print_ir(kernel.system_ir.as_ref().expect("FPGA target"))
    );
    Ok(())
}
