//! Anomaly detection service (paper §VII): the model-selection node
//! searches the detector zoo with TPE, then the detection node scans a
//! stream and emits the JSON report of anomalous indexes.
//!
//! ```sh
//! cargo run --example anomaly_service
//! ```

use everest_sdk::everest_anomaly::dataset::Dataset;
use everest_sdk::everest_anomaly::service::{select_model, DetectionNode, Strategy};
use everest_sdk::everest_anomaly::synthetic::{f1_score, generate, StreamConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sensor-like stream with ~5% injected anomalies.
    let stream = generate(StreamConfig::default(), 7);
    let half = stream.data.len() / 2;
    let train = Dataset::from_rows(stream.data.rows[..half].to_vec());
    let validation = Dataset::from_rows(stream.data.rows[half..].to_vec());
    let labels = stream.labels[half..].to_vec();

    println!("== model-selection node (AutoML, 40 trials) ==");
    for strategy in [Strategy::Random, Strategy::Tpe] {
        let model = select_model(&train, &validation, &labels, 40, strategy, 11);
        println!(
            "{:?}: best F1 {:.3} with {:?}",
            strategy,
            model.f1,
            model
                .params
                .get("family")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
        );
    }

    let selected = select_model(&train, &validation, &labels, 40, Strategy::Tpe, 11);
    println!("\nconvergence (best F1 after each trial):");
    for (k, f1) in selected.trajectory.iter().enumerate().step_by(8) {
        println!("  trial {k:>3}: {f1:.3}");
    }

    println!("\n== detection node ==");
    let mut node = DetectionNode::new(selected, 512, 11);
    let report = node.detect(&validation);
    let mut predictions = vec![false; validation.len()];
    for &i in &report.anomalous_indexes {
        predictions[i] = true;
    }
    let (precision, recall, f1) = f1_score(&labels, &predictions);
    println!(
        "scanned {} points, flagged {} (precision {:.2}, recall {:.2}, F1 {:.2})",
        report.scanned,
        report.anomalous_indexes.len(),
        precision,
        recall,
        f1
    );
    println!("\nJSON output (paper: 'a JSON file containing the indexes'):");
    let json = DetectionNode::to_json(&report)?;
    for line in json.lines().take(12) {
        println!("{line}");
    }
    println!("...");
    Ok(())
}
