//! Air-quality monitoring use case (paper §II-C, §VIII): ensemble
//! weather forecasts drive plume dispersion; the site decides whether to
//! pay for emission reduction.
//!
//! ```sh
//! cargo run --example airquality_ensemble
//! ```

use everest_sdk::everest_usecases::airquality::{forecast_site, Decision, Receptor, Stack};
use everest_sdk::everest_usecases::weather::EnsembleStrategy;

fn main() {
    let stack = Stack {
        height_m: 45.0,
        rate_gs: 400.0,
    };
    let receptors = vec![
        Receptor {
            east_m: 1500.0,
            north_m: 200.0,
            limit: 40.0,
        },
        Receptor {
            east_m: -900.0,
            north_m: 900.0,
            limit: 40.0,
        },
        Receptor {
            east_m: 300.0,
            north_m: -2000.0,
            limit: 40.0,
        },
    ];

    println!(
        "industrial site: stack {} m, {} g/s",
        stack.height_m, stack.rate_gs
    );
    println!("{} receptors, limit 40 ug/m3\n", receptors.len());

    for (label, strategy) in [
        (
            "different global forecasts",
            EnsembleStrategy::GlobalForecasts,
        ),
        (
            "different physics modules",
            EnsembleStrategy::PhysicsModules,
        ),
        (
            "initial-field perturbations",
            EnsembleStrategy::FieldPerturbations,
        ),
    ] {
        println!("== ensemble strategy: {label} (8 members, 24 h) ==");
        let (forecasts, decision) = forecast_site(&stack, &receptors, strategy, 8, 24, 0.4, 2024);
        for (k, f) in forecasts.iter().enumerate() {
            println!(
                "  receptor {k}: P(exceed) = {:>5.1}%  mean peak = {:>7.2} ug/m3",
                100.0 * f.exceedance_probability,
                f.mean_peak
            );
        }
        match decision {
            Decision::Normal => println!("  decision: operate normally\n"),
            Decision::ReduceEmissions { probability } => println!(
                "  decision: REDUCE EMISSIONS (worst exceedance probability {:.0}%)\n\
                 \x20          (costs tens of thousands of euros per day, paper II-C)\n",
                probability * 100.0
            ),
        }
    }
}
