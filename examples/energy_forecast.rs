//! Renewable-energy prediction use case (paper §II-B, §VIII): Kernel
//! Ridge wind-power forecasting, backtested at increasing WRF refresh
//! rates — the capability accelerated WRF unlocks.
//!
//! ```sh
//! cargo run --example energy_forecast
//! ```

use everest_sdk::everest_usecases::energy::{generate_history, sweep_runs_per_day, WindFarm};

fn main() {
    let farm = WindFarm::default();
    println!(
        "wind farm: {} x {:.1} MW turbines, hub {} m",
        farm.turbines, farm.rated_mw, farm.hub_height_m
    );

    println!("generating one synthetic farm-year (truth weather run)...");
    let history = generate_history(&farm, 60, 42);
    println!(
        "history: {} hourly samples, capacity {:.0} MW",
        history.len(),
        farm.rated_mw * farm.turbines as f64
    );

    println!(
        "\nbacktest: train 40 days, test {} days",
        history.len() / 24 - 40
    );
    println!(
        "{:>12} | {:>10} | {:>16}",
        "WRF runs/day", "MAE (MW)", "vs 1 run/day"
    );
    println!("{}", "-".repeat(46));
    let results = sweep_runs_per_day(&farm, &history, 40, &[1, 2, 4, 8, 24]);
    let base = results[0].mae_mw;
    for r in &results {
        println!(
            "{:>12} | {:>10.3} | {:>15.1}%",
            r.runs_per_day,
            r.mae_mw,
            100.0 * (1.0 - r.mae_mw / base)
        );
    }
    println!(
        "\nThe accelerated WRF enables more runs per day; fresher forecasts\n\
         cut the market error the traders pay for (paper §II-B)."
    );
}
