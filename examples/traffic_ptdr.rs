//! Traffic use case (paper §II-D, §VIII): map matching through the
//! deterministic ConDRust pipeline, then Probabilistic Time-Dependent
//! Routing on the Alveo u55c system model vs the CPU baseline.
//!
//! ```sh
//! cargo run --example traffic_ptdr
//! ```

use std::sync::Arc;

use everest_sdk::everest_condrust::exec::{run_parallel, run_sequential};
use everest_sdk::everest_condrust::graph::DataflowGraph;
use everest_sdk::everest_condrust::lang::parse_function;
use everest_sdk::everest_platform::device::FpgaDevice;
use everest_sdk::everest_platform::xrt::XrtDevice;
use everest_sdk::everest_usecases::traffic::mapmatch::{
    condrust_registry, sample_value, MatchConfig, CONDRUST_MAP_MATCH,
};
use everest_sdk::everest_usecases::traffic::{
    build_route, generate_trajectories, match_accuracy, monte_carlo, ptdr, FcdConfig, RoadNetwork,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Arc::new(RoadNetwork::grid(12, 12, 100.0));

    // --- Map matching (Fig. 4): ConDRust program over noisy FCD -------
    println!("== HMM map matching through ConDRust ==");
    let trajectories = generate_trajectories(&net, FcdConfig::default(), 6, 42);
    let function = parse_function(CONDRUST_MAP_MATCH)?;
    let graph = DataflowGraph::from_function(&function)?;
    let registry = condrust_registry(Arc::clone(&net), MatchConfig::default());
    for (k, t) in trajectories.iter().enumerate() {
        let items: Vec<_> = t.samples.iter().map(sample_value).collect();
        let sequential = run_sequential(&graph, &registry, &items)?;
        let parallel = run_parallel(&graph, &registry, &items, 4)?;
        assert_eq!(sequential, parallel, "determinism guarantee");
        let matched: Vec<usize> = parallel
            .iter()
            .map(|v| v.as_i64().unwrap_or(-1) as usize)
            .collect();
        println!(
            "trajectory {k}: {} samples, accuracy {:.0}% (parallel == sequential)",
            t.samples.len(),
            100.0 * match_accuracy(&matched, &t.true_segments)
        );
    }

    // --- PTDR on CPU vs the Alveo u55c model (§VIII) ------------------
    println!("\n== PTDR: travel-time distribution, departing 08:00 ==");
    let route = build_route(&net, 0, 40);
    let samples = 20_000;
    let t0 = std::time::Instant::now();
    let dist = monte_carlo(&net, &route, 8.0, samples, 7);
    let cpu_ms = t0.elapsed().as_secs_f64() * 1000.0;
    println!("route:   {} segments", route.segments.len());
    println!("mean:    {:.1} min", dist.mean());
    for q in [0.5, 0.9, 0.95, 0.99] {
        println!("p{:<4} {:.1} min", (q * 100.0) as u32, dist.quantile(q));
    }
    println!(
        "on-time within 12 min: {:.1}%",
        100.0 * dist.on_time_probability(12.0)
    );

    // FPGA offload estimate: kernel cycles on the u55c at 300 MHz.
    let mut session = XrtDevice::open(FpgaDevice::alveo_u55c());
    session.load_bitstream("ptdr.xclbin");
    let cycles = ptdr::fpga_cycles(&route, samples);
    let fpga_us = session.run_kernel("ptdr", cycles)?;
    println!("\nCPU Monte Carlo:  {cpu_ms:.1} ms");
    println!(
        "u55c kernel:      {:.3} ms ({} cycles at 300 MHz, pipelined II=1)",
        fpga_us / 1000.0,
        cycles
    );
    println!(
        "speedup:          {:.0}x (compute only)",
        cpu_ms * 1000.0 / fpga_us
    );
    Ok(())
}
