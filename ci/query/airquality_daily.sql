SELECT day, max(prob), avg(peak) FROM air_quality WHERE prob >= 0.0 AND true GROUP BY day ORDER BY day
