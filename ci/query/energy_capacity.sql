SELECT count(*), avg(power_mw) FROM wind_power WHERE wind_ms > 2 + 2 AND availability > 0.5
