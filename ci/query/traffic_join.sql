SELECT t.traj_id, sum(s.length_m) AS dist FROM traj_segments t JOIN segments s ON t.seg_id = s.seg_id WHERE s.length_m > 1 + 1 GROUP BY t.traj_id ORDER BY dist DESC LIMIT 5
