
fn map_match(samples: Vec<Sample>) -> Vec<Match> {
    let mut out = Vec::new();
    let mut hmm = hmm_state();
    for s in samples {
        let c = candidates(s);
        let m = hmm.step(c);
        out.push(m);
    }
    out
}
