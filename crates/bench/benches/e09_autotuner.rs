//! E9 [§VI-C] — Dynamic autotuning: the mARGOt-style tuner tracks the
//! environment through three phases (normal, FPGA contention, recovery)
//! and adapts the selected variant; a static choice pays through the
//! contention phase.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_autotuner::{config, Autotuner, Configuration, Features, Objective, OperatingPoint};
use everest_bench::{banner, rule};

const FPGA_US: f64 = 600.0;
const CPU_US: f64 = 9_000.0;
const CONTENTION: f64 = 30.0;

/// Simulated environment: the true execution time of a variant during a
/// phase.
fn true_time(variant: &str, phase: usize) -> f64 {
    match (variant, phase) {
        ("fpga", 1) => FPGA_US * CONTENTION, // contended cluster
        ("fpga", _) => FPGA_US,
        _ => CPU_US,
    }
}

fn make_tuner() -> Autotuner {
    let mut tuner = Autotuner::new();
    tuner.add_point(OperatingPoint::new(config([("variant", "fpga")])).expect("time_us", FPGA_US));
    tuner.add_point(OperatingPoint::new(config([("variant", "cpu")])).expect("time_us", CPU_US));
    tuner.set_objective(Objective::minimize("time_us"));
    tuner
}

fn run_adaptive() -> (f64, Vec<(usize, String)>) {
    let mut tuner = make_tuner();
    let mut total = 0.0;
    let mut switches = Vec::new();
    let mut last = String::new();
    for step in 0..60 {
        let phase = step / 20;
        let cfg: Configuration = tuner.best(&Features::new()).expect("feasible");
        let variant = cfg["variant"].to_string();
        let t = true_time(&variant, phase);
        total += t;
        tuner.observe(&cfg, "time_us", t);
        // Keep the unchosen variant's knowledge fresh with a periodic probe
        // (mARGOt-style exploration).
        if step % 5 == 4 {
            let other = if variant == "fpga" { "cpu" } else { "fpga" };
            let other_cfg = config([("variant", other)]);
            tuner.observe(&other_cfg, "time_us", true_time(other, phase));
        }
        if variant != last {
            switches.push((step, variant.clone()));
            last = variant;
        }
    }
    (total, switches)
}

fn run_static(variant: &str) -> f64 {
    (0..60).map(|step| true_time(variant, step / 20)).sum()
}

fn print_series() {
    banner("E9", "VI-C", "dynamic autotuning under FPGA contention");
    println!("60 kernel invocations; phase 2 (steps 20-39) contends the FPGA 30x\n");
    let (adaptive_total, switches) = run_adaptive();
    let static_fpga = run_static("fpga");
    let static_cpu = run_static("cpu");
    println!("{:<26} {:>14}", "policy", "total time");
    rule(42);
    println!("{:<26} {:>11.1} ms", "static fpga", static_fpga / 1000.0);
    println!("{:<26} {:>11.1} ms", "static cpu", static_cpu / 1000.0);
    println!(
        "{:<26} {:>11.1} ms",
        "mARGOt adaptive",
        adaptive_total / 1000.0
    );
    println!("\nvariant switches:");
    for (step, variant) in &switches {
        println!("  step {step:>2}: -> {variant}");
    }
    assert!(
        adaptive_total < static_fpga && adaptive_total < static_cpu * 3.0,
        "adaptation must beat static fpga under contention"
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e09_autotuner");
    group.sample_size(30);
    group.bench_function("adaptive_60_invocations", |b| b.iter(run_adaptive));
    let tuner = make_tuner();
    group.bench_function("single_decision", |b| {
        b.iter(|| tuner.best(&Features::new()).expect("feasible"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
