//! E19 [§IV] — Analytic queries lowered to dfg kernels. Shows the
//! everest-query front-end running one SQL query per use-case dataset
//! end to end: parse → plan → property-proven rewrite rules → the
//! deterministic executor, then lowering to a verified `dfg` graph of
//! HLS-scheduled operator kernels with an Olympus memory architecture
//! and a `ClassKind::Query` serving class. The headline figures are
//! the executor's scanned rows/sec and the schedule-cycle speedup the
//! optimizer buys (recorded by `bench_record --bench e19` into
//! BENCH_e19.json).

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_query::datasets::Dataset;
use everest_query::optimizer::Optimizer;
use everest_sdk::query::{run_query, QueryOptions};

const SEED: u64 = 42;
const SUITE: &[(&str, &str)] = &[
    (
        "traffic",
        "SELECT t.traj_id, sum(s.length_m) AS dist FROM traj_segments t \
         JOIN segments s ON t.seg_id = s.seg_id WHERE s.length_m > 1 + 1 \
         GROUP BY t.traj_id ORDER BY dist DESC LIMIT 5",
    ),
    (
        "airquality",
        "SELECT day, max(prob), avg(peak) FROM air_quality \
         WHERE prob >= 0.0 AND true GROUP BY day ORDER BY day",
    ),
    (
        "energy",
        "SELECT count(*), avg(power_mw) FROM wind_power \
         WHERE wind_ms > 2 + 2 AND availability > 0.5",
    ),
];

fn print_series() {
    banner("E19", "IV", "SQL queries lowered to dfg kernel pipelines");

    println!(
        "{:>10} {:>6} {:>8} {:>10} {:>12} {:>9} {:>9}",
        "dataset", "rows", "kernels", "cycles", "cycles(raw)", "speedup", "bound_us"
    );
    rule(72);
    for (dataset, sql) in SUITE {
        let mut options = QueryOptions {
            seed: SEED,
            dataset: (*dataset).to_string(),
            sql: (*sql).to_string(),
            optimize: true,
        };
        let on = run_query(&options).expect("query runs optimized");
        options.optimize = false;
        let off = run_query(&options).expect("query runs unoptimized");
        assert_eq!(
            on.batch, off.batch,
            "{dataset}: the rewrite rules must not change the result"
        );
        assert!(
            off.lowered.total_cycles() >= on.lowered.total_cycles(),
            "{dataset}: the optimizer must not inflate the schedule"
        );
        println!(
            "{:>10} {:>6} {:>8} {:>10} {:>12} {:>8.2}x {:>9.1}",
            dataset,
            on.batch.rows.len(),
            on.lowered.kernels.len(),
            on.lowered.total_cycles(),
            off.lowered.total_cycles(),
            off.lowered.total_cycles() as f64 / on.lowered.total_cycles().max(1) as f64,
            on.class.static_bound_us.unwrap_or(0.0),
        );
    }

    // Determinism: the whole pipeline — catalog, plans, EXPLAIN JSON,
    // lowering — replays byte-identically from the same seed.
    let options = QueryOptions {
        seed: SEED,
        dataset: "traffic".to_string(),
        sql: SUITE[0].1.to_string(),
        optimize: true,
    };
    let a = run_query(&options).expect("first replay");
    let b = run_query(&options).expect("second replay");
    assert_eq!(
        a.explain_json(),
        b.explain_json(),
        "EXPLAIN JSON must replay byte-identically"
    );
    println!("\nsame-seed replay: EXPLAIN JSON byte-identical");
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e19_query");
    group.sample_size(10);

    // Executor throughput: plan + optimize + execute against a
    // prebuilt catalog (dataset generation priced out).
    let catalog = Dataset::Energy.catalog(SEED).expect("catalog");
    group.bench_function("energy_aggregate_query", |b| {
        b.iter(|| {
            let plan = everest_query::plan_sql(&catalog, SUITE[2].1).expect("plans");
            let optimized = Optimizer::for_catalog(&catalog).optimize(&plan);
            everest_query::run(&catalog, &optimized).expect("executes")
        })
    });

    // The full end-to-end path including lowering, HLS synthesis of
    // every operator kernel, analysis lints and Olympus generation.
    group.bench_function("traffic_join_end_to_end", |b| {
        b.iter(|| {
            run_query(&QueryOptions {
                seed: SEED,
                dataset: "traffic".to_string(),
                sql: SUITE[0].1.to_string(),
                optimize: true,
            })
            .expect("query runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
