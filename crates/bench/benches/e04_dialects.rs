//! E4 [Fig. 5, §V-B] — The MLIR dialect stack: inventory, lowering-path
//! verification and round-trips for every flow the SDK produces, plus
//! canonicalization-pipeline cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use everest_bench::{banner, compiled_rrtmg, rule, small_dims};
use everest_ir::pass::canonicalization_pipeline;
use everest_ir::registry::Context;
use everest_sdk::basecamp::{Basecamp, CompileOptions};

fn print_series() {
    banner(
        "E4",
        "Fig. 5 / V-B",
        "EVEREST dialect stack: inventory and lowering paths",
    );
    let ctx = Context::with_all_dialects();
    println!("{:<12} {:>6}  description", "dialect", "ops");
    rule(64);
    for name in ctx.dialect_names() {
        let d = ctx.dialect(name).expect("listed");
        println!("{:<12} {:>6}  {}", d.name, d.len(), d.description);
    }

    println!("\nlowering paths exercised (each verifies + round-trips):");
    let basecamp = Basecamp::new();
    let t = Instant::now();
    let compiled = compiled_rrtmg(small_dims(), CompileOptions::default());
    println!(
        "  ekl -> teil/esn -> scf/arith/memref : {} ops ({:.1} ms)",
        compiled.module.num_ops(),
        t.elapsed().as_secs_f64() * 1000.0
    );
    let t = Instant::now();
    let coordination = basecamp
        .compile_coordination(everest_usecases::traffic::mapmatch::CONDRUST_MAP_MATCH)
        .expect("compiles");
    println!(
        "  condrust -> dfg                     : {} ops ({:.1} ms)",
        coordination.dfg_ir.num_ops(),
        t.elapsed().as_secs_f64() * 1000.0
    );
    let sys = compiled.system_ir.as_ref().expect("fpga target");
    println!(
        "  hls + platform -> olympus           : {} ops",
        sys.num_ops()
    );

    for (label, module) in [
        ("loop ir", &compiled.module),
        ("dfg ir", &coordination.dfg_ir),
        ("olympus ir", sys),
    ] {
        let text = everest_ir::print::print_module(module);
        let parsed = everest_ir::parse::parse_module(&text).expect("parses back");
        assert_eq!(everest_ir::print::print_module(&parsed), text);
        everest_ir::verify::verify_module(&ctx, &parsed).expect("verifies");
        println!(
            "  round-trip {label}: ok ({} text lines)",
            text.lines().count()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let ctx = Context::with_all_dialects();
    let compiled = compiled_rrtmg(small_dims(), CompileOptions::default());
    let text = everest_ir::print::print_module(&compiled.module);
    let mut group = c.benchmark_group("e04_dialects");
    group.sample_size(10);
    group.bench_function("verify_rrtmg_module", |b| {
        b.iter(|| everest_ir::verify::verify_module(&ctx, &compiled.module).expect("ok"))
    });
    group.bench_function("parse_rrtmg_text", |b| {
        b.iter(|| everest_ir::parse::parse_module(&text).expect("parses"))
    });
    group.bench_function("canonicalize_rrtmg", |b| {
        b.iter(|| {
            let mut m = compiled.module.clone();
            canonicalization_pipeline().run(&ctx, &mut m).expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
