//! E17 [§VI] — Request-lifecycle robustness: per-tenant retry budgets,
//! hedged dispatch, the AIMD concurrency limiter, and brownout
//! degradation tiers. Shows goodput under a transient-fault storm
//! improving with retries on, tail latency under a gray straggler
//! collapsing with hedging on, typed overload shedding from the
//! limiter, and the brownout ladder climbing as the cluster dies —
//! with request conservation holding in every configuration.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_runtime::{FaultKind, FaultPlan, FaultSpec};
use everest_sdk::serve::{run_serve, ServeOptions};
use everest_serve::{
    BatchPolicy, BrownoutConfig, HedgeConfig, KernelClass, LifecycleConfig, LimiterConfig,
    RetryConfig, ServeConfig, ServeEngine,
};

/// A storm of transient kernel errors landing while batches are in
/// flight: the retryable fault class.
fn transient_storm(nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::new(21);
    for i in 0..10 {
        plan.push(FaultSpec {
            at_us: 6_000.0 + 4_500.0 * i as f64,
            node: i % nodes,
            kind: FaultKind::TransientKernelError,
        });
    }
    plan
}

fn lifecycle_base() -> ServeConfig {
    ServeConfig {
        seed: 7,
        offered_rps: 6_000.0,
        horizon_us: 60_000.0,
        ..ServeConfig::default()
    }
}

fn print_series() {
    banner("E17", "VI", "request-lifecycle robustness under chaos");

    // Goodput under a transient-fault storm: retries off vs on. A
    // failed batch re-enqueues its requests (seeded backoff, budget
    // permitting, deadline permitting), so goodput recovers instead of
    // the failures going terminal.
    println!("retry budgets under a 10-fault transient storm (seed 7, 4 nodes, 60 ms):\n");
    println!(
        "{:>9} {:>10} {:>8} {:>10} {:>8} {:>8}",
        "retries", "completed", "failed", "shed-ddl", "retried", "denied"
    );
    rule(60);
    let baseline = ServeEngine::new(lifecycle_base())
        .with_plan(transient_storm(4))
        .run();
    let retried = ServeEngine::new(ServeConfig {
        lifecycle: LifecycleConfig {
            retry: Some(RetryConfig::default()),
            ..LifecycleConfig::default()
        },
        ..lifecycle_base()
    })
    .with_plan(transient_storm(4))
    .run();
    for (name, o) in [("off", &baseline), ("on", &retried)] {
        println!(
            "{:>9} {:>10} {:>8} {:>10} {:>8} {:>8}",
            name, o.completed, o.failed, o.shed_deadline, o.retries, o.retry_denied
        );
        assert!(o.conserved(), "retries {name}: conservation violated");
    }
    assert!(
        baseline.failed > 0,
        "the storm must fail in-flight work to measure recovery"
    );
    assert!(retried.retries > 0, "the storm must trigger retries");
    assert!(
        retried.completed > baseline.completed,
        "retry budgets must improve goodput under the storm ({} vs {})",
        retried.completed,
        baseline.completed
    );
    assert!(
        retried.failed < baseline.failed,
        "retries must recover fault-failed requests ({} vs {})",
        retried.failed,
        baseline.failed
    );

    // Hedged dispatch against a gray straggler. The health monitor is
    // blinded so the breaker never isolates the slow node: hedging is
    // the only line of defense, exactly the gray window it exists for.
    // A single latency-critical class so the quantiles read on exactly
    // the population hedging protects (analytics batches never hedge).
    let hedge_base = || ServeConfig {
        seed: 17,
        classes: vec![
            KernelClass::new("infer", 400.0, 40.0, 120.0, 5_000.0, 4_096).latency_critical(),
        ],
        batch: vec![BatchPolicy::new(8, 400.0)],
        offered_rps: 2_000.0,
        horizon_us: 80_000.0,
        health: everest_runtime::HealthConfig {
            min_samples: usize::MAX,
            ..everest_runtime::HealthConfig::default()
        },
        ..ServeConfig::default()
    };
    let slow_node = || {
        FaultPlan::new(17).with_fault(FaultSpec {
            at_us: 5_000.0,
            node: 2,
            kind: FaultKind::SlowNode {
                factor: 8.0,
                duration_us: 70_000.0,
            },
        })
    };
    let unhedged = ServeEngine::new(hedge_base()).with_plan(slow_node()).run();
    let hedged = ServeEngine::new(ServeConfig {
        lifecycle: LifecycleConfig {
            hedge: Some(HedgeConfig::default()),
            ..LifecycleConfig::default()
        },
        ..hedge_base()
    })
    .with_plan(slow_node())
    .run();
    println!("\nhedged dispatch vs an 8x gray straggler (breaker blinded, 2000 rps):\n");
    for (name, o) in [("unhedged", &unhedged), ("hedged", &hedged)] {
        println!(
            "  {:<9}: p50 {:>8.1} us, p99 {:>9.1} us, {} hedges ({} wins, {} cancelled)",
            name,
            o.latency_quantile(0.50).unwrap_or(0.0),
            o.latency_quantile(0.99).unwrap_or(0.0),
            o.hedges,
            o.hedge_wins,
            o.hedge_cancelled
        );
        assert!(o.conserved(), "{name}: conservation violated");
    }
    assert!(hedged.hedges > 0, "the straggler must trigger hedges");
    assert!(
        hedged.hedge_wins > 0,
        "duplicates must win against an 8x straggler"
    );
    let (p99_off, p99_on) = (
        unhedged.latency_quantile(0.99).unwrap_or(0.0),
        hedged.latency_quantile(0.99).unwrap_or(0.0),
    );
    assert!(
        p99_on < p99_off,
        "hedging must cut the gray-straggler tail ({p99_on:.1} vs {p99_off:.1} us)"
    );

    // The AIMD limiter under deep overload: the door is pulled in and
    // the refusals are typed Overloaded, distinct from QueueFull.
    let overloaded = ServeEngine::new(ServeConfig {
        offered_rps: 30_000.0,
        horizon_us: 80_000.0,
        lifecycle: LifecycleConfig {
            limiter: Some(LimiterConfig::default()),
            ..LifecycleConfig::default()
        },
        ..ServeConfig::default()
    })
    .run();
    println!(
        "\nAIMD limiter at 3x overload: completed {}, shed {} overloaded / {} queue-full, p99 {:.1} us",
        overloaded.completed,
        overloaded.shed_overloaded,
        overloaded.shed_queue_full,
        overloaded.latency_quantile(0.99).unwrap_or(0.0)
    );
    assert!(overloaded.conserved(), "limiter: conservation violated");
    assert!(
        overloaded.shed_overloaded > 0,
        "deep overload must trip the limiter's door cap"
    );
    assert!(
        overloaded.completed > 0,
        "the limiter throttles, not starves"
    );

    // The brownout ladder: crash 3 of 4 nodes and the controller walks
    // tier 0 -> 3, shrinking batch ceilings, disabling hedging, and
    // finally shedding the lowest-weight tenant.
    let mut crash_plan = FaultPlan::new(23);
    for node in 0..3 {
        crash_plan.push(FaultSpec {
            at_us: 10_000.0,
            node,
            kind: FaultKind::NodeCrash,
        });
    }
    let browned = ServeEngine::new(ServeConfig {
        lifecycle: LifecycleConfig {
            brownout: Some(BrownoutConfig::default()),
            ..LifecycleConfig::default()
        },
        ..lifecycle_base()
    })
    .with_plan(crash_plan)
    .run();
    println!(
        "\nbrownout with 3 of 4 nodes crashed: {} transitions, peak tier {}, {} brownout sheds",
        browned.brownout_transitions, browned.brownout_peak_tier, browned.shed_brownout
    );
    assert!(browned.conserved(), "brownout: conservation violated");
    assert_eq!(browned.brownout_peak_tier, 3, "3 of 4 nodes down is tier 3");
    assert!(
        browned.shed_brownout > 0,
        "tier 3 must shed the lowest-weight tenant"
    );
    assert!(
        browned.completed > 0,
        "the surviving node must keep serving through the brownout"
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e17_lifecycle");
    group.sample_size(10);
    group.bench_function("serve_campaign_lifecycle_chaos", |b| {
        b.iter(|| {
            run_serve(&ServeOptions {
                chaos: 6,
                retries: true,
                hedge: true,
                limiter: true,
                brownout: true,
                ..ServeOptions::default()
            })
        })
    });
    group.bench_function("serve_campaign_retries_only_chaos", |b| {
        b.iter(|| {
            run_serve(&ServeOptions {
                chaos: 6,
                retries: true,
                ..ServeOptions::default()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
