//! E18 [§VI] — Partition-tolerant cluster membership and deterministic
//! shard failover. Shows the SWIM-style gossip detector confirming a
//! symmetrically cut minority, leases failing over to survivors with a
//! bumped fencing epoch (orphaned in-flight work re-enqueued, never
//! double-executed), an even split shedding typed `partitioned_away`
//! refusals until the degraded escape hatch opens, and the whole
//! campaign — chaos stacked on partitions — replaying byte-identically
//! from the same seed with request conservation intact.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_runtime::{FaultKind, FaultPlan, FaultSpec};
use everest_sdk::serve::{run_serve, ServeOptions};
use everest_serve::{ClusterConfig, ServeConfig, ServeEngine};

fn partition_base(seed: u64) -> ServeConfig {
    ServeConfig {
        seed,
        offered_rps: 6_000.0,
        horizon_us: 60_000.0,
        cluster: Some(ClusterConfig::default()),
        ..ServeConfig::default()
    }
}

/// One symmetric cut: `group` (bitmask) loses contact with the rest of
/// the cluster at `at_us` and heals `duration_us` later.
fn sym_cut(seed: u64, group: u64, at_us: f64, duration_us: f64) -> FaultPlan {
    FaultPlan::new(seed).with_fault(FaultSpec {
        at_us,
        node: 0,
        kind: FaultKind::PartitionSym { group, duration_us },
    })
}

fn print_series() {
    banner(
        "E18",
        "VI",
        "partition-tolerant membership and shard failover",
    );

    // A minority cut on the default 4-node cluster: node 0 is sliced
    // off for 30 ms. The majority keeps quorum, so the detector walks
    // suspect -> confirmed, every shard leased to node 0 fails over
    // with a bumped fencing epoch, and node 0's in-flight batches are
    // fenced — their requests re-enqueued on survivors, each served
    // exactly once.
    println!("minority partition (node 0 cut 10-40 ms, seed 7, 4 nodes, 60 ms):\n");
    let baseline = ServeEngine::new(partition_base(7)).run();
    let cut = ServeEngine::new(partition_base(7))
        .with_plan(sym_cut(7, 0x1, 10_000.0, 30_000.0))
        .run();
    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>10} {:>8} {:>8}",
        "scenario", "completed", "confirms", "failover", "epoch", "orphans", "fenced"
    );
    rule(72);
    for (name, o) in [("healthy", &baseline), ("cut", &cut)] {
        println!(
            "{:>10} {:>10} {:>9} {:>9} {:>10} {:>8} {:>8}",
            name,
            o.completed,
            o.confirms,
            o.failovers,
            o.cluster_epoch,
            o.partition_orphans,
            o.fenced_batches
        );
        assert!(o.conserved(), "{name}: conservation violated");
    }
    assert_eq!(
        baseline.confirms, 0,
        "a healthy cluster must never confirm a death"
    );
    assert_eq!(
        baseline.shed_partitioned, 0,
        "a healthy cluster must never shed partitioned"
    );
    assert!(cut.confirms > 0, "the cut minority must be confirmed dead");
    assert!(cut.failovers > 0, "confirmed deaths must fail shards over");
    assert!(
        cut.cluster_epoch > 0,
        "failover must bump the fencing epoch"
    );
    assert_eq!(
        cut.batches.iter().filter(|b| b.fenced).count() as u64,
        cut.fenced_batches,
        "fenced-batch accounting must match the batch trace"
    );
    assert!(
        cut.completed > 0,
        "the majority must keep serving through the cut"
    );

    // An even 2-2 split: neither side holds a strict majority, so
    // leases lapse and arrivals for unowned shards are refused with the
    // typed `partitioned_away` shed — until the no-quorum grace expires
    // and the largest component proceeds degraded, re-granting lapsed
    // leases under fresh fencing epochs.
    let split = ServeEngine::new(ServeConfig {
        horizon_us: 120_000.0,
        ..partition_base(11)
    })
    .with_plan(sym_cut(11, 0x3, 10_000.0, 40_000.0))
    .run();
    println!(
        "\neven 2-2 split (40 ms, no quorum anywhere): {} shed partitioned, {} degraded grants, epoch {}",
        split.shed_partitioned, split.degraded_grants, split.cluster_epoch
    );
    assert!(split.conserved(), "split: conservation violated");
    assert!(
        split.shed_partitioned > 0,
        "a quorumless cluster must shed typed, not serve on lapsed leases"
    );
    assert!(
        split.degraded_grants > 0,
        "the grace window must open the degraded escape hatch"
    );
    assert!(
        split.completed > 0,
        "degraded mode must restore service before heal"
    );

    // The full E18 campaign — seeded partition/heal cycles stacked on
    // crash/gray chaos with every lifecycle feature on — must replay
    // byte-for-byte: the trace `basecamp serve --partition-plan` emits
    // is what CI diffs across runs.
    let options = ServeOptions {
        chaos: 4,
        partition: 3,
        retries: true,
        hedge: true,
        limiter: true,
        brownout: true,
        horizon_ms: 80.0,
        ..ServeOptions::default()
    };
    let a = run_serve(&options);
    let b = run_serve(&options);
    assert_eq!(
        a.trace_json(),
        b.trace_json(),
        "partition campaign must replay byte-identically"
    );
    assert!(a.outcome.conserved(), "campaign: conservation violated");
    println!(
        "\nfull campaign (3 cycles + 4 faults, all lifecycle on): {} gossip rounds, {} failovers, epoch {}, replay byte-identical",
        a.outcome.gossip_rounds, a.outcome.failovers, a.outcome.cluster_epoch
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e18_partition");
    group.sample_size(10);
    group.bench_function("serve_campaign_partition_chaos", |b| {
        b.iter(|| {
            run_serve(&ServeOptions {
                chaos: 4,
                partition: 3,
                retries: true,
                brownout: true,
                ..ServeOptions::default()
            })
        })
    });
    group.bench_function("serve_campaign_partition_only", |b| {
        b.iter(|| {
            run_serve(&ServeOptions {
                partition: 3,
                ..ServeOptions::default()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
