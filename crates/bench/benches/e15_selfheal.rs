//! E15 [§VI] — Closed-loop self-healing: the health monitor, circuit
//! breakers and checkpoint/restart under gray-failure campaigns.
//! Sweeps the gray intensity to show the blind-vs-healed makespan gap,
//! proves healing wins on campaigns whose damage hits the critical
//! path, and measures what restarting from the last checkpoint saves
//! over re-executing the whole campaign.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_runtime::cluster::Cluster;
use everest_runtime::scheduler::{HealPolicy, Policy, RecoveryConfig, Scheduler};
use everest_runtime::task::{TaskGraph, TaskSpec};
use everest_runtime::FaultPlan;
use everest_sdk::heal::{run_heal, HealOptions};

/// A wide fork-join: one seed task, `width` independent bodies, one
/// sink. The shape every straggler hurts and every migration helps.
fn fork_join(width: usize, body_us: f64) -> TaskGraph {
    let mut graph = TaskGraph::new();
    let seed = graph.add(TaskSpec::new("seed", 100.0)).unwrap();
    let bodies: Vec<_> = (0..width)
        .map(|i| {
            graph
                .add(TaskSpec::new(&format!("body{i}"), body_us).after([seed]))
                .unwrap()
        })
        .collect();
    graph
        .add(TaskSpec::new("sink", 100.0).after(bodies))
        .unwrap();
    graph
}

fn print_series() {
    banner("E15", "VI", "closed-loop self-healing under gray failures");

    // Makespan with healing off vs on as the campaign intensifies.
    // Sparse strong degradations are where the loop wins; under dense
    // gray noise the whole-horizon breakers over-isolate (most of the
    // cluster convicted at once) and healing can lose to the blind
    // scheduler's own load balancing — the operating envelope
    // docs/RESILIENCE.md describes.
    println!("gray-intensity sweep (seed 42, 4 nodes, 28 tasks):\n");
    println!(
        "{:>6} {:>11} {:>11} {:>8} {:>9} {:>11} {:>12}",
        "gray", "blind us", "healed us", "healed%", "verdicts", "migrations", "checkpoints"
    );
    rule(74);
    for gray_faults in [1usize, 2, 4, 6, 8] {
        let report = run_heal(&HealOptions {
            gray_faults,
            ..HealOptions::default()
        });
        let h = &report.healed.result.heal;
        println!(
            "{:>6} {:>11.1} {:>11.1} {:>7.1}% {:>9} {:>11} {:>12}",
            gray_faults,
            report.unhealed.makespan_us,
            report.healed.result.makespan_us,
            report.healed_fraction_pct(),
            h.verdicts.len(),
            h.migrations,
            h.checkpoints_taken
        );
        assert_eq!(
            report.healed.result.entries.len(),
            28,
            "every task must still complete"
        );
        assert!(report.resume_matched, "checkpoint resume diverged");
    }

    // Campaigns whose gray damage lands on the critical path: healing
    // must strictly win, not just tie.
    println!("\nhealing on/off (campaigns whose damage bites):\n");
    println!(
        "{:>6} {:>11} {:>11} {:>11} {:>8}",
        "seed", "clean us", "blind us", "healed us", "healed%"
    );
    rule(52);
    for seed in [2u64, 3, 42] {
        let report = run_heal(&HealOptions {
            seed,
            ..HealOptions::default()
        });
        println!(
            "{:>6} {:>11.1} {:>11.1} {:>11.1} {:>7.1}%",
            seed,
            report.clean_makespan_us,
            report.unhealed.makespan_us,
            report.healed.result.makespan_us,
            report.healed_fraction_pct()
        );
        assert!(
            report.healed.result.makespan_us < report.unhealed.makespan_us,
            "seed {seed}: healing must strictly beat the blind run"
        );
    }

    // Checkpoint/restart: what resuming from the last checkpoint saves
    // over re-executing the campaign from scratch.
    let graph = fork_join(96, 1_000.0);
    let cluster = Cluster::everest(2, 2, 4);
    let scheduler = Scheduler::new(cluster, Policy::Heft);
    let plan = FaultPlan::random_gray_campaign(42, 4, 90_000.0, 4);
    let config = RecoveryConfig::default();
    let policy = HealPolicy::default();
    let outcome = scheduler.run_self_healing(&graph, &plan, &config, &policy);
    let last = outcome
        .checkpoints
        .last()
        .expect("the campaign must checkpoint");
    let reps = 30;
    let t0 = Instant::now();
    for _ in 0..reps {
        let full = scheduler.run_self_healing(&graph, &plan, &config, &policy);
        assert_eq!(full.result.entries, outcome.result.entries);
    }
    let full_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    let t1 = Instant::now();
    for _ in 0..reps {
        let resumed = scheduler.resume_self_healing(&graph, &plan, &config, &policy, last);
        assert_eq!(resumed.entries, outcome.result.entries);
        assert_eq!(resumed.makespan_us, outcome.result.makespan_us);
    }
    let resume_us = t1.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!(
        "\ncheckpoint/restart (fork-join 98 tasks, last checkpoint at task {}):",
        last.completed_tasks
    );
    println!("  full re-execution : {full_us:>9.1} us wall");
    println!(
        "  resume from ckpt  : {resume_us:>9.1} us wall ({:.1}x faster, byte-identical result)",
        full_us / resume_us
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e15_selfheal");
    group.sample_size(10);
    group.bench_function("heal_campaign_seed42", |b| {
        b.iter(|| run_heal(&HealOptions::default()))
    });
    let graph = fork_join(96, 1_000.0);
    let scheduler = Scheduler::new(Cluster::everest(2, 2, 4), Policy::Heft);
    let plan = FaultPlan::random_gray_campaign(42, 4, 90_000.0, 4);
    let config = RecoveryConfig::default();
    let policy = HealPolicy::default();
    let outcome = scheduler.run_self_healing(&graph, &plan, &config, &policy);
    let last = outcome.checkpoints.last().unwrap().clone();
    group.bench_function("resume_from_last_checkpoint", |b| {
        b.iter(|| scheduler.resume_self_healing(&graph, &plan, &config, &policy, &last))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
