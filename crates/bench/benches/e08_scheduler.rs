//! E8 [§VI-A] — The resource manager: dependency-respecting placement,
//! load balancing, transfer-aware scheduling and failure rescheduling on
//! a 200-task workflow.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_runtime::{Cluster, Failure, Policy, Scheduler, TaskGraph, TaskSpec};

/// A 200-task ensemble-like workflow: 20 chains of 10 tasks with mixed
/// durations, cross-links and data volumes.
fn workflow() -> TaskGraph {
    let mut graph = TaskGraph::new();
    let src = graph
        .add(TaskSpec::new("ingest", 500.0).with_output_bytes(8 << 20))
        .expect("ok");
    let mut heads = Vec::new();
    for chain in 0..20 {
        let mut prev = src;
        for step in 0..10 {
            let us = if step % 3 == 0 { 8_000.0 } else { 1_500.0 };
            let mut spec = TaskSpec::new(&format!("c{chain}s{step}"), us)
                .after([prev])
                .with_output_bytes(1 << 18);
            if step == 4 {
                spec = spec.with_fpga(us / 20.0);
            }
            prev = graph.add(spec).expect("ok");
        }
        heads.push(prev);
    }
    graph
        .add(TaskSpec::new("merge", 2_000.0).after(heads))
        .expect("ok");
    graph
}

fn print_series() {
    banner(
        "E8",
        "VI-A",
        "resource manager: scheduling, balancing, recovery",
    );
    let graph = workflow();
    println!(
        "workflow: {} tasks (20 chains x 10 + ingest + merge)\n",
        graph.len()
    );
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>11}",
        "nodes", "policy", "makespan", "transfers", "imbalance"
    );
    rule(62);
    for nodes in [2usize, 4, 8, 16] {
        for (label, policy) in [("rr", Policy::RoundRobin), ("heft", Policy::Heft)] {
            let cluster = Cluster::everest(nodes - 1, 1, 4);
            let result = Scheduler::new(cluster, policy).run(&graph);
            println!(
                "{:>6} {:>12} {:>11.1} ms {:>11.1} ms {:>11.3}",
                nodes,
                label,
                result.makespan_us / 1000.0,
                result.transfer_us / 1000.0,
                result.load_imbalance()
            );
        }
    }

    println!("\nfailure rescheduling (4 nodes, heft; the busiest node dies):");
    let cluster = Cluster::everest(3, 1, 4);
    let scheduler = Scheduler::new(cluster, Policy::Heft);
    let clean = scheduler.run(&graph);
    // kill the node carrying the most work
    let busiest = clean
        .node_busy_us
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(n, _)| n)
        .expect("nodes exist");
    for frac in [0.25, 0.5, 0.75] {
        let failed = scheduler.run_with_failure(
            &graph,
            Some(Failure {
                node: busiest,
                at_us: clean.makespan_us * frac,
            }),
        );
        println!(
            "  node {busiest} dies at {:>3.0}% of makespan: {:>7.1} ms (+{:>4.1}%), {} tasks recovered",
            frac * 100.0,
            failed.makespan_us / 1000.0,
            100.0 * (failed.makespan_us - clean.makespan_us) / clean.makespan_us,
            failed.recovered_tasks
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let graph = workflow();
    let mut group = c.benchmark_group("e08_scheduler");
    group.sample_size(20);
    group.bench_function("heft_200_tasks_8_nodes", |b| {
        let scheduler = Scheduler::new(Cluster::everest(7, 1, 4), Policy::Heft);
        b.iter(|| scheduler.run(&graph))
    });
    group.bench_function("recovery_200_tasks", |b| {
        let scheduler = Scheduler::new(Cluster::everest(7, 1, 4), Policy::Heft);
        let clean = scheduler.run(&graph);
        b.iter(|| {
            scheduler.run_with_failure(
                &graph,
                Some(Failure {
                    node: 0,
                    at_us: clean.makespan_us * 0.5,
                }),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
