//! E11 [§VIII traffic] — PTDR on the Alveo u55c model vs the CPU
//! baseline: Monte Carlo samples sweep, route-length sweep, and the
//! virtualization-layer test the prototype ran.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use everest_bench::{banner, rule};
use everest_platform::device::FpgaDevice;
use everest_platform::xrt::XrtDevice;
use everest_runtime::{IoMode, PhysicalNode};
use everest_usecases::traffic::{build_route, monte_carlo, ptdr, RoadNetwork};

fn print_series() {
    banner(
        "E11",
        "VIII traffic",
        "PTDR: CPU Monte Carlo vs Alveo u55c model",
    );
    let net = RoadNetwork::grid(14, 14, 100.0);
    let route = build_route(&net, 0, 50);
    println!(
        "route: {} segments, departing 08:00\n",
        route.segments.len()
    );
    println!(
        "{:>9} {:>12} {:>14} {:>10} {:>10}",
        "samples", "cpu", "u55c kernel", "speedup", "p95 (min)"
    );
    rule(60);
    for samples in [1_000usize, 10_000, 100_000] {
        let t = Instant::now();
        let dist = monte_carlo(&net, &route, 8.0, samples, 42);
        let cpu_ms = t.elapsed().as_secs_f64() * 1000.0;
        let mut session = XrtDevice::open(FpgaDevice::alveo_u55c());
        session.load_bitstream("ptdr");
        let fpga_us = session
            .run_kernel("ptdr", ptdr::fpga_cycles(&route, samples))
            .expect("runs");
        println!(
            "{:>9} {:>9.1} ms {:>11.3} ms {:>9.0}x {:>10.1}",
            samples,
            cpu_ms,
            fpga_us / 1000.0,
            cpu_ms * 1000.0 / fpga_us,
            dist.quantile(0.95)
        );
    }

    println!("\nroute-length sweep (10k samples):");
    println!("{:>10} {:>12} {:>14}", "segments", "cpu", "u55c kernel");
    rule(38);
    for hops in [10usize, 30, 100] {
        let route = build_route(&net, 0, hops);
        let t = Instant::now();
        let _ = monte_carlo(&net, &route, 8.0, 10_000, 7);
        let cpu_ms = t.elapsed().as_secs_f64() * 1000.0;
        let mut session = XrtDevice::open(FpgaDevice::alveo_u55c());
        session.load_bitstream("ptdr");
        let fpga_us = session
            .run_kernel("ptdr", ptdr::fpga_cycles(&route, 10_000))
            .expect("runs");
        println!(
            "{:>10} {:>9.1} ms {:>11.3} ms",
            hops,
            cpu_ms,
            fpga_us / 1000.0
        );
    }

    // The §VIII sentence: "We also tested this component with the
    // virtualization layer."
    println!("\nthrough the virtualization layer (VF passthrough):");
    let node = PhysicalNode::new("fpga0", 16, FpgaDevice::alveo_u55c(), 2);
    let vm = node.start_vm(4, IoMode::VfPassthrough);
    node.plug_vf(vm).expect("vf");
    let mut session = node.open_accelerator(vm).expect("opens");
    session.load_bitstream("ptdr");
    let native_cycles = ptdr::fpga_cycles(&route, 10_000);
    let t_vm = session.run_kernel("ptdr", native_cycles).expect("runs");
    let mut bare = XrtDevice::open(FpgaDevice::alveo_u55c());
    bare.load_bitstream("ptdr");
    let t_bare = bare.run_kernel("ptdr", native_cycles).expect("runs");
    println!(
        "  bare metal {:.3} ms vs in-VM {:.3} ms ({:+.2}%)",
        t_bare / 1000.0,
        t_vm / 1000.0,
        100.0 * (t_vm - t_bare) / t_bare
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let net = RoadNetwork::grid(14, 14, 100.0);
    let route = build_route(&net, 0, 50);
    let mut group = c.benchmark_group("e11_ptdr");
    group.sample_size(10);
    group.bench_function("cpu_monte_carlo_10k", |b| {
        b.iter(|| monte_carlo(&net, &route, 8.0, 10_000, 42))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
