//! E12 [§II-B, §VIII energy] — Renewable-energy prediction: Kernel Ridge
//! backtesting, market error (MAE) vs WRF runs per day — the capability
//! claim of the accelerated-WRF prototype.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_usecases::energy::{backtest, generate_history, sweep_runs_per_day, WindFarm};

fn print_series() {
    banner(
        "E12",
        "II-B / VIII energy",
        "wind-power forecast error vs WRF runs per day",
    );
    let farm = WindFarm::default();
    let history = generate_history(&farm, 45, 42);
    let capacity = farm.rated_mw * farm.turbines as f64;
    println!(
        "farm: {} x {:.0} MW, capacity {:.0} MW; 45-day synthetic year, train 30 days\n",
        farm.turbines, farm.rated_mw, capacity
    );
    println!(
        "{:>13} {:>11} {:>12} {:>14}",
        "WRF runs/day", "MAE (MW)", "% capacity", "vs 1 run/day"
    );
    rule(54);
    let results = sweep_runs_per_day(&farm, &history, 30, &[1, 2, 4, 8, 24]);
    let base = results[0].mae_mw;
    for r in &results {
        println!(
            "{:>13} {:>11.3} {:>11.1}% {:>13.1}%",
            r.runs_per_day,
            r.mae_mw,
            100.0 * r.mae_mw / capacity,
            100.0 * (1.0 - r.mae_mw / base)
        );
    }
    assert!(
        results.last().expect("non-empty").mae_mw < base,
        "the paper's more-runs-help claim must hold"
    );
    println!("\n(accelerated WRF makes the higher refresh rates affordable:");
    println!(" 'increasing the number of WRF runs ... is a crucial advantage')");
}

fn bench(c: &mut Criterion) {
    print_series();
    let farm = WindFarm::default();
    let history = generate_history(&farm, 20, 7);
    let mut group = c.benchmark_group("e12_energy");
    group.sample_size(10);
    group.bench_function("kernel_ridge_backtest", |b| {
        b.iter(|| backtest(&farm, &history, 14, 24))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
