//! E16 [§VI] — Multi-tenant request serving: token-bucket admission,
//! weighted-fair queueing and dynamic batching in front of the
//! virtualized runtime. Sweeps offered load to show the saturation
//! curve (throughput, tail latency, shed rate), shows weighted
//! fairness holding under overload, measures what batching buys over
//! serving singletons, and keeps the accounting conserved under chaos.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_sdk::serve::{run_serve, ServeOptions};
use everest_serve::{BatchPolicy, ServeConfig, ServeEngine};

fn print_series() {
    banner("E16", "VI", "multi-tenant serving under offered-load sweep");

    // The saturation curve: offered load as a multiple of nominal
    // cluster capacity. Shed rate must grow monotonically — admission
    // control degrades service predictably instead of collapsing.
    println!("offered-load sweep (seed 42, 4 nodes, 3 tenants, 200 ms horizon):\n");
    println!(
        "{:>6} {:>9} {:>12} {:>10} {:>10} {:>8} {:>9}",
        "load", "offered", "through rps", "p50 us", "p99 us", "shed%", "slo-viol"
    );
    rule(70);
    let mut prev_shed = 0.0_f64;
    for load in [0.5, 1.0, 2.0, 4.0] {
        let report = run_serve(&ServeOptions {
            load,
            ..ServeOptions::default()
        });
        let o = &report.outcome;
        println!(
            "{:>6.1} {:>9} {:>12.1} {:>10.1} {:>10.1} {:>7.1}% {:>9}",
            load,
            o.offered,
            o.throughput_rps(),
            o.latency_quantile(0.50).unwrap_or(0.0),
            o.latency_quantile(0.99).unwrap_or(0.0),
            o.shed_rate() * 100.0,
            o.slo_violations
        );
        assert!(o.conserved(), "load {load}: conservation violated");
        assert!(
            prev_shed <= o.shed_rate() + 1e-9,
            "load {load}: shed rate must grow monotonically with offered load \
             ({prev_shed:.4} -> {:.4})",
            o.shed_rate()
        );
        prev_shed = o.shed_rate();
    }
    assert!(
        prev_shed > 0.2,
        "4x overload must shed a substantial fraction, got {prev_shed:.4}"
    );

    // Weighted fairness under overload: completions track the 4:2:1
    // weights, and no tenant starves.
    let overloaded = run_serve(&ServeOptions {
        load: 4.0,
        ..ServeOptions::default()
    });
    println!("\nweighted fairness at 4x overload (gold w=4, silver w=2, bronze w=1):\n");
    println!(
        "{:>8} {:>7} {:>9} {:>10} {:>10} {:>7}",
        "tenant", "weight", "offered", "admitted", "completed", "share%"
    );
    rule(56);
    let total_completed: u64 = overloaded.outcome.tenants.iter().map(|t| t.completed).sum();
    for tenant in &overloaded.outcome.tenants {
        println!(
            "{:>8} {:>7.0} {:>9} {:>10} {:>10} {:>6.1}%",
            tenant.name,
            tenant.weight,
            tenant.offered,
            tenant.admitted,
            tenant.completed,
            tenant.completed as f64 / total_completed as f64 * 100.0
        );
        assert!(
            tenant.completed > 0,
            "tenant {} starved under overload",
            tenant.name
        );
    }
    let gold = overloaded.outcome.tenants[0].completed;
    let bronze = overloaded.outcome.tenants[2].completed;
    assert!(
        gold > bronze,
        "the 4x-weight tenant must complete more than the 1x tenant ({gold} vs {bronze})"
    );

    // What dynamic batching buys: the same offered stream served with
    // batching disabled (ceiling 1) vs the autotuned operating point.
    let base = ServeConfig {
        offered_rps: 8_000.0,
        ..ServeConfig::default()
    };
    let singleton = ServeEngine::new(ServeConfig {
        batch: vec![BatchPolicy::new(1, 0.0), BatchPolicy::new(1, 0.0)],
        autotune: false,
        ..base.clone()
    })
    .run();
    let batched = ServeEngine::new(base).run();
    println!("\ndynamic batching vs singleton dispatch (8000 rps offered):\n");
    for (name, o) in [("singleton", &singleton), ("batched", &batched)] {
        println!(
            "  {:<9}: completed {:>5}, shed {:>5}, p99 {:>9.1} us, {} batches",
            name,
            o.completed,
            o.shed_total(),
            o.latency_quantile(0.99).unwrap_or(0.0),
            o.batches.len()
        );
        assert!(o.conserved(), "{name}: conservation violated");
    }
    assert!(
        batched.completed >= singleton.completed,
        "batching must not lose throughput ({} vs {})",
        batched.completed,
        singleton.completed
    );

    // Chaos: random faults mid-campaign. The accounting stays
    // conserved and the cluster keeps serving.
    let chaotic = run_serve(&ServeOptions {
        chaos: 6,
        ..ServeOptions::default()
    });
    println!(
        "\nchaos campaign (6 faults): completed {}, failed {}, breaker opens {}, probes {}",
        chaotic.outcome.completed,
        chaotic.outcome.failed,
        chaotic.outcome.breaker_opens,
        chaotic.outcome.probes
    );
    assert!(chaotic.outcome.conserved(), "chaos: conservation violated");
    assert!(
        chaotic.outcome.completed > 0,
        "the cluster must keep serving under chaos"
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e16_serving");
    group.sample_size(10);
    group.bench_function("serve_campaign_nominal", |b| {
        b.iter(|| run_serve(&ServeOptions::default()))
    });
    group.bench_function("serve_campaign_4x_overload", |b| {
        b.iter(|| {
            run_serve(&ServeOptions {
                load: 4.0,
                ..ServeOptions::default()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
