//! E1 [Fig. 2, §IV] — End-to-end SDK flow through `basecamp`:
//! per-stage compile-time breakdown (frontend → IR → HLS → Olympus) for
//! both target platforms, plus a criterion measurement of the full flow.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use everest_bench::{banner, compiled_rrtmg, rule, small_dims};
use everest_sdk::basecamp::{Basecamp, CompileOptions, Target};

fn print_series() {
    banner("E1", "Fig. 2 / IV", "end-to-end SDK flow through basecamp");
    let source = everest_ekl::rrtmg::major_absorber_source(small_dims());
    println!(
        "kernel: RRTMG major absorber ({} EKL source lines)",
        source.lines().count()
    );
    println!("{:<22} {:>14} {:>14}", "stage", "alveo_u55c", "cloudfpga");
    rule(54);

    let mut stage_times = [Vec::new(), Vec::new()];
    for (col, target) in [Target::AlveoU55c, Target::CloudFpga].iter().enumerate() {
        // frontend
        let t = Instant::now();
        let kernel = everest_ekl::parser::parse(&source).expect("parses");
        let program = everest_ekl::check::check(&kernel).expect("checks");
        stage_times[col].push(t.elapsed());
        // lowering + verify
        let t = Instant::now();
        let module = everest_ekl::lower::lower_to_loops(&program).expect("lowers");
        let ctx = everest_ir::registry::Context::with_all_dialects();
        everest_ir::verify::verify_module(&ctx, &module).expect("verifies");
        stage_times[col].push(t.elapsed());
        // HLS
        let t = Instant::now();
        let report =
            everest_hls::synthesize(&module, &program.name, everest_hls::HlsOptions::default())
                .expect("synthesizes");
        stage_times[col].push(t.elapsed());
        // Olympus
        let t = Instant::now();
        let device = target.device().expect("fpga target");
        let spec = everest_olympus::KernelSpec::from_report(report, 0.7);
        let _arch = everest_olympus::explore(&spec, &device, 64).expect("explores");
        stage_times[col].push(t.elapsed());
    }
    for (row, stage) in [
        "frontend (EKL)",
        "lowering + verify",
        "HLS synthesis",
        "olympus DSE",
    ]
    .iter()
    .enumerate()
    {
        println!(
            "{:<22} {:>11.2} ms {:>11.2} ms",
            stage,
            stage_times[0][row].as_secs_f64() * 1000.0,
            stage_times[1][row].as_secs_f64() * 1000.0
        );
    }

    let compiled = compiled_rrtmg(small_dims(), CompileOptions::default());
    println!("\nartifacts produced:");
    println!("  loop IR:        {} ops", compiled.module.num_ops());
    println!(
        "  HLS:            {} cycles, {:.1} us",
        compiled.hls.cycles, compiled.hls.time_us
    );
    let arch = compiled.architecture.as_ref().expect("fpga target");
    println!(
        "  system:         {} replicas, pack {} B, per-call {:.2} us",
        arch.config.replication,
        arch.config.pack_bytes,
        compiled.fpga_time_us.expect("fpga target")
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let source = everest_ekl::rrtmg::major_absorber_source(small_dims());
    let basecamp = Basecamp::new();
    let mut group = c.benchmark_group("e01_sdk_flow");
    group.sample_size(10);
    group.bench_function("compile_rrtmg_u55c", |b| {
        b.iter(|| {
            basecamp
                .compile_kernel(&source, CompileOptions::default())
                .expect("compiles")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
