//! E14 [§VI] — Resilience: the runtime scheduler under seeded fault
//! campaigns. Sweeps the fault count to show graceful degradation
//! (makespan grows, work still completes), then proves the replay
//! guarantee: the same seed yields byte-identical campaign traces.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_sdk::chaos::{run_chaos, ChaosOptions};

fn print_series() {
    banner("E14", "VI", "deterministic fault injection and recovery");

    // Makespan and recovery accounting as the campaign intensifies.
    println!("fault sweep (seed 42, 4 nodes, 24 tasks):\n");
    println!(
        "{:>7} {:>13} {:>9} {:>8} {:>9} {:>12}",
        "faults", "makespan us", "slowdown", "retries", "degraded", "quarantined"
    );
    rule(64);
    for faults in [0usize, 2, 4, 6, 8, 12] {
        let report = run_chaos(&ChaosOptions {
            faults,
            ..ChaosOptions::default()
        });
        let r = &report.result.recovery;
        println!(
            "{:>7} {:>13.1} {:>8.1}% {:>8} {:>9} {:>12}",
            faults,
            report.result.makespan_us,
            (report.result.makespan_us / report.clean_makespan_us - 1.0) * 100.0,
            r.retries,
            r.degraded_to_cpu,
            r.quarantined_nodes.len()
        );
        assert!(
            report.result.makespan_us >= report.clean_makespan_us,
            "faults must never speed the schedule up"
        );
    }

    // The replay guarantee the chaos CLI and CI job rely on: the whole
    // campaign — workload, plan, jitter, placement — replays to the
    // same bytes.
    println!("\nreplay determinism (byte-identical seeded traces):");
    let seeds: Vec<u64> = (0..10).map(|k| 100 + k * 7919).collect();
    for &seed in &seeds {
        let opts = ChaosOptions {
            seed,
            faults: 8,
            ..ChaosOptions::default()
        };
        let first = run_chaos(&opts).trace_json();
        let second = run_chaos(&opts).trace_json();
        assert_eq!(first, second, "seed {seed}: replay diverged");
    }
    println!(
        "  {}/{} seeds replayed byte-identically",
        seeds.len(),
        seeds.len()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e14_resilience");
    group.sample_size(10);
    group.bench_function("campaign_seed42_6faults", |b| {
        b.iter(|| run_chaos(&ChaosOptions::default()))
    });
    group.bench_function("campaign_seed42_clean", |b| {
        b.iter(|| {
            run_chaos(&ChaosOptions {
                faults: 0,
                ..ChaosOptions::default()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
