//! E5 [Fig. 6, §VI-B] — SR-IOV virtualization: VF passthrough is
//! near-native while emulated I/O pays per-operation exits; dynamic VF
//! hot-plug mitigates SR-IOV's static configuration.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_platform::device::FpgaDevice;
use everest_platform::xrt::{Direction, XrtDevice};
use everest_runtime::{IoMode, PhysicalNode};

/// Runs a 50-iteration offload loop; returns virtual µs (excluding
/// bitstream programming).
fn offload_loop(session: &mut XrtDevice, kernel_cycles: u64, bytes: u64) -> f64 {
    session.load_bitstream("bench");
    let bo = session.alloc_bo(bytes, 0).expect("fits");
    let t0 = session.now_us();
    for _ in 0..50 {
        session
            .sync_bo(bo.handle, Direction::HostToDevice)
            .expect("ok");
        session.run_kernel("k", kernel_cycles).expect("ok");
        session
            .sync_bo(bo.handle, Direction::DeviceToHost)
            .expect("ok");
    }
    session.now_us() - t0
}

fn print_series() {
    banner(
        "E5",
        "Fig. 6 / VI-B",
        "SR-IOV virtualization overhead and VF hot-plug",
    );
    let node = PhysicalNode::new("host0", 32, FpgaDevice::alveo_u55c(), 4);
    let vm_pt = node.start_vm(8, IoMode::VfPassthrough);
    node.plug_vf(vm_pt).expect("vf available");
    let vm_em = node.start_vm(8, IoMode::Emulated);

    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "buffer", "native", "passthrough", "emulated", "pt ovh", "emu ovh"
    );
    rule(84);
    for (bytes, cycles) in [
        (4u64 << 10, 3_000u64),
        (1 << 20, 30_000),
        (64 << 20, 300_000),
    ] {
        let mut native = XrtDevice::open(FpgaDevice::alveo_u55c());
        let t_native = offload_loop(&mut native, cycles, bytes);
        let mut pt = node.open_accelerator(vm_pt).expect("vf plugged");
        let t_pt = offload_loop(&mut pt, cycles, bytes);
        let mut em = node.open_accelerator(vm_em).expect("emulated path");
        let t_em = offload_loop(&mut em, cycles, bytes);
        println!(
            "{:>9} KiB {:>11.1} us {:>11.1} us {:>11.1} us {:>11.2}% {:>11.2}%",
            bytes >> 10,
            t_native,
            t_pt,
            t_em,
            100.0 * (t_pt - t_native) / t_native,
            100.0 * (t_em - t_native) / t_native,
        );
    }

    println!("\nVF lifecycle (management plane):");
    let before = node.management_time_us();
    let vf = node.plug_vf(vm_pt).expect("second vf");
    let plug = node.management_time_us() - before;
    let before = node.management_time_us();
    node.unplug_vf(vm_pt, vf).expect("unplug");
    let unplug = node.management_time_us() - before;
    println!("  hot-plug:   {:.0} ms", plug / 1000.0);
    println!("  hot-unplug: {:.0} ms", unplug / 1000.0);
    let status = node.status();
    println!(
        "  libvirt status: {} VMs, {}/{} VFs free, {} cores free",
        status.vms, status.free_vfs, status.total_vfs, status.free_cores
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e05_sriov");
    group.sample_size(10);
    group.bench_function("offload_loop_native_sim", |b| {
        b.iter(|| {
            let mut session = XrtDevice::open(FpgaDevice::alveo_u55c());
            offload_loop(&mut session, 30_000, 1 << 20)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
