//! E10 [§VII] — AutoML anomaly detection: TPE model selection vs random
//! search across trial budgets (mean best F1 over seeds), and the
//! deployed detection node's quality.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_anomaly::dataset::Dataset;
use everest_anomaly::service::{select_model, DetectionNode, Strategy};
use everest_anomaly::synthetic::{f1_score, generate, StreamConfig};
use everest_bench::{banner, rule};

fn split(seed: u64) -> (Dataset, Dataset, Vec<bool>) {
    let stream = generate(StreamConfig::default(), seed);
    let half = stream.data.len() / 2;
    let train = Dataset::from_rows(
        stream.data.rows[..half]
            .iter()
            .zip(&stream.labels[..half])
            .filter(|(_, &l)| !l)
            .map(|(r, _)| r.clone())
            .collect(),
    );
    let validation = Dataset::from_rows(stream.data.rows[half..].to_vec());
    (train, validation, stream.labels[half..].to_vec())
}

fn mean_best_f1(strategy: Strategy, trials: usize, seeds: &[u64]) -> f64 {
    seeds
        .iter()
        .map(|&s| {
            let (train, validation, labels) = split(s);
            select_model(&train, &validation, &labels, trials, strategy, s ^ 0xBEEF).f1
        })
        .sum::<f64>()
        / seeds.len() as f64
}

fn print_series() {
    banner("E10", "VII", "AutoML model selection: TPE vs random search");
    let seeds = [3u64, 5, 7, 11];
    println!("mean best validation F1 over {} seeds:\n", seeds.len());
    println!("{:>8} {:>10} {:>10}", "trials", "random", "tpe");
    rule(32);
    for trials in [8usize, 16, 32, 64] {
        let random = mean_best_f1(Strategy::Random, trials, &seeds);
        let tpe = mean_best_f1(Strategy::Tpe, trials, &seeds);
        println!("{trials:>8} {random:>10.3} {tpe:>10.3}");
    }

    println!("\ndeployed detection node (seed 3, TPE, 40 trials):");
    let (train, validation, labels) = split(3);
    let selected = select_model(&train, &validation, &labels, 40, Strategy::Tpe, 99);
    println!(
        "  winner: {} (validation F1 {:.3})",
        selected
            .params
            .get("family")
            .and_then(|v| v.as_str())
            .unwrap_or("?"),
        selected.f1
    );
    let mut node = DetectionNode::new(selected, 512, 99);
    let report = node.detect(&validation);
    let mut predictions = vec![false; validation.len()];
    for &i in &report.anomalous_indexes {
        predictions[i] = true;
    }
    let (precision, recall, f1) = f1_score(&labels, &predictions);
    println!(
        "  detection report: {} flagged of {} (P {:.2} / R {:.2} / F1 {:.2})",
        report.anomalous_indexes.len(),
        report.scanned,
        precision,
        recall,
        f1
    );
    println!(
        "  JSON output bytes: {}",
        DetectionNode::to_json(&report).expect("serializes").len()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let (train, validation, labels) = split(3);
    let mut group = c.benchmark_group("e10_anomaly");
    group.sample_size(10);
    group.bench_function("tpe_select_10_trials", |b| {
        b.iter(|| select_model(&train, &validation, &labels, 10, Strategy::Tpe, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
