//! E13 [§II-C, §VIII air] — Air-quality ensembles: decision skill vs
//! ensemble size across the paper's three ensemble strategies, and the
//! time-to-forecast budget with and without FPGA offload of the
//! radiation kernel.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_platform::device::FpgaDevice;
use everest_usecases::airquality::{evaluate_policy, forecast_site, Receptor, Stack};
use everest_usecases::weather::{run_ensemble, EnsembleStrategy};

/// Worst-receptor exceedance probability for an `members`-member
/// ensemble (members are a prefix of the reference ensemble, so the
/// estimates converge with size).
fn worst_probability(stack: &Stack, receptors: &[Receptor], members: usize, seed: u64) -> f64 {
    let (forecasts, _) = forecast_site(
        stack,
        receptors,
        EnsembleStrategy::GlobalForecasts,
        members,
        24,
        0.4,
        seed,
    );
    forecasts
        .iter()
        .map(|f| f.exceedance_probability)
        .fold(0.0, f64::max)
}

fn site() -> (Stack, Vec<Receptor>) {
    (
        Stack {
            height_m: 45.0,
            rate_gs: 260.0,
        },
        vec![
            Receptor {
                east_m: 1400.0,
                north_m: 100.0,
                limit: 40.0,
            },
            Receptor {
                east_m: -800.0,
                north_m: 700.0,
                limit: 40.0,
            },
        ],
    )
}

fn print_series() {
    banner(
        "E13",
        "II-C / VIII air",
        "ensemble air-quality decision skill",
    );
    let (stack, receptors) = site();
    // Ensemble size vs estimate quality: probability error against a
    // 64-member reference, averaged over 8 independent days; plus the
    // fraction of days where the small ensemble makes the same
    // reduce/operate decision as the reference.
    println!("exceedance-probability convergence (reference: 64 members):\n");
    println!(
        "{:>9} {:>14} {:>18}",
        "members", "mean |dP|", "decision agreement"
    );
    rule(44);
    let days: Vec<u64> = (0..8).map(|d| 3000 + d * 977).collect();
    let reference: Vec<f64> = days
        .iter()
        .map(|&d| worst_probability(&stack, &receptors, 64, d))
        .collect();
    for members in [2usize, 4, 8, 16, 32] {
        let mut err = 0.0;
        let mut agree = 0usize;
        for (k, &d) in days.iter().enumerate() {
            let p = worst_probability(&stack, &receptors, members, d);
            err += (p - reference[k]).abs();
            if (p >= 0.4) == (reference[k] >= 0.4) {
                agree += 1;
            }
        }
        println!(
            "{:>9} {:>14.3} {:>17.0}%",
            members,
            err / days.len() as f64,
            100.0 * agree as f64 / days.len() as f64
        );
    }

    println!("\ndecision policy vs perfect knowledge (8 members, 12 days):");
    let (hit, fa, cost) = evaluate_policy(&stack, &receptors, 8, 12, 0.4, 5.0, 77);
    println!(
        "  hit rate {:.0}%, false alarms {:.0}%, total cost {:.1}",
        hit * 100.0,
        fa * 100.0,
        cost
    );

    println!("\nensemble strategies (8 members, 24 h):");
    for (label, strategy) in [
        ("global forecasts", EnsembleStrategy::GlobalForecasts),
        ("physics modules", EnsembleStrategy::PhysicsModules),
        ("field perturbations", EnsembleStrategy::FieldPerturbations),
    ] {
        let (forecasts, decision) = forecast_site(&stack, &receptors, strategy, 8, 24, 0.4, 2024);
        let worst = forecasts
            .iter()
            .map(|f| f.exceedance_probability)
            .fold(0.0, f64::max);
        println!(
            "  {:<20} worst P(exceed) {:>5.1}%  decision: {:?}",
            label,
            worst * 100.0,
            decision
        );
    }

    // Time-to-forecast: the morning planning deadline (§II-C).
    println!("\ntime-to-forecast (16 members x 48 h, radiation share 30%):");
    let (_, cycles) = run_ensemble(EnsembleStrategy::FieldPerturbations, 2, 6, 1);
    let cycles_per_member_hour = cycles as f64 / 12.0;
    let total_radiation_cycles = cycles_per_member_hour * 16.0 * 48.0;
    // CPU: radiation at 50 Mcycle-equivalents/s; FPGA at 300 MHz pipelined.
    let radiation_cpu_s = total_radiation_cycles / 50e6 * 3600.0; // scaled WRF-like cost
    let device = FpgaDevice::alveo_u55c();
    let radiation_fpga_s = total_radiation_cycles / (device.kernel_clock_mhz * 1e6) * 1500.0;
    let rest_s = radiation_cpu_s * 7.0 / 3.0; // the other 70% of WRF
    println!(
        "  CPU only:       {:>7.1} min (radiation {:>6.1} min + rest {:>6.1} min)",
        (radiation_cpu_s + rest_s) / 60.0,
        radiation_cpu_s / 60.0,
        rest_s / 60.0
    );
    println!(
        "  FPGA offload:   {:>7.1} min (radiation {:>6.2} min + rest {:>6.1} min)",
        (radiation_fpga_s + rest_s) / 60.0,
        radiation_fpga_s / 60.0,
        rest_s / 60.0
    );
    println!(
        "  speedup on offloaded fraction: {:.0}x; end-to-end: {:.2}x (Amdahl)",
        radiation_cpu_s / radiation_fpga_s,
        (radiation_cpu_s + rest_s) / (radiation_fpga_s + rest_s)
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let (stack, receptors) = site();
    let mut group = c.benchmark_group("e13_airquality");
    group.sample_size(10);
    group.bench_function("ensemble8_forecast_12h", |b| {
        b.iter(|| {
            forecast_site(
                &stack,
                &receptors,
                EnsembleStrategy::FieldPerturbations,
                8,
                12,
                0.4,
                2024,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
