//! E3 [Fig. 4, §V-A.2] — ConDRust determinism and scaling: the
//! map-matching pipeline at increasing replication, with bit-identical
//! outputs across all configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

use everest_bench::{banner, rule};
use everest_condrust::exec::{run_parallel, run_sequential};
use everest_condrust::graph::DataflowGraph;
use everest_condrust::lang::parse_function;
use everest_condrust::value::Value;
use everest_usecases::traffic::mapmatch::{
    condrust_registry, sample_value, MatchConfig, CONDRUST_MAP_MATCH,
};
use everest_usecases::traffic::{generate_trajectories, FcdConfig, RoadNetwork};

fn workload(n_points: usize) -> (DataflowGraph, everest_condrust::Registry, Vec<Value>) {
    let net = Arc::new(RoadNetwork::grid(20, 20, 100.0));
    let hops = (n_points / 2).max(4);
    let trajectories = generate_trajectories(
        &net,
        FcdConfig {
            hops,
            ..FcdConfig::default()
        },
        1,
        42,
    );
    let items: Vec<Value> = trajectories[0]
        .samples
        .iter()
        .take(n_points)
        .map(sample_value)
        .collect();
    let f = parse_function(CONDRUST_MAP_MATCH).expect("fig. 4 parses");
    let graph = DataflowGraph::from_function(&f).expect("graph extracts");
    let registry = condrust_registry(net, MatchConfig::default());
    (graph, registry, items)
}

fn print_series() {
    banner(
        "E3",
        "Fig. 4 / V-A.2",
        "ConDRust deterministic parallel map matching",
    );
    let (graph, registry, items) = workload(2000);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("pipeline: source -> candidates (replicable) -> hmm state thread -> sink");
    println!(
        "input: {} GPS samples; host exposes {cores} core(s) — speedup is\n\
         bounded by min(cores, replication); the determinism column is the\n\
         paper's guarantee and must hold at every configuration\n",
        items.len()
    );
    let t = Instant::now();
    let reference = run_sequential(&graph, &registry, &items).expect("runs");
    let seq_ms = t.elapsed().as_secs_f64() * 1000.0;
    println!(
        "{:>12} {:>12} {:>10} {:>14}",
        "replication", "time", "speedup", "deterministic"
    );
    rule(52);
    println!(
        "{:>12} {:>9.1} ms {:>10} {:>14}",
        "sequential", seq_ms, "1.0x", "reference"
    );
    for replication in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let out = run_parallel(&graph, &registry, &items, replication).expect("runs");
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        println!(
            "{:>12} {:>9.1} ms {:>9.1}x {:>14}",
            replication,
            ms,
            seq_ms / ms,
            if out == reference { "yes" } else { "NO!" }
        );
        assert_eq!(out, reference, "determinism violated");
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let (graph, registry, items) = workload(500);
    let mut group = c.benchmark_group("e03_condrust");
    group.sample_size(10);
    group.bench_function("sequential_500", |b| {
        b.iter(|| run_sequential(&graph, &registry, &items).expect("runs"))
    });
    group.bench_function("parallel4_500", |b| {
        b.iter(|| run_parallel(&graph, &registry, &items, 4).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
