//! E6 [§VIII highlight] — Custom data formats: "custom data formats can
//! significantly speed up the computation, trading off resource
//! requirements and accuracy". The RRTMG kernel is resynthesized under
//! base2 fixed-point and posit formats; accuracy is measured by
//! quantizing the kernel's inputs bit-accurately and comparing against
//! the f64 result.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule, small_dims};
use everest_hls::{synthesize, HlsOptions, NumericFormat};
use everest_ir::base2::{Fixed, Posit};
use everest_ir::{FixedFormat, PositFormat};

fn quantize(value: f64, format: NumericFormat) -> f64 {
    match format {
        NumericFormat::F64 => value,
        NumericFormat::F32 => value as f32 as f64,
        NumericFormat::Fixed(f) => Fixed::from_f64(value, f).to_f64(),
        NumericFormat::Posit(p) => Posit::from_f64(value, p).to_f64(),
    }
}

/// Max relative tau error when the kernel's real-valued inputs are
/// carried in the given format.
fn accuracy_loss(format: NumericFormat) -> f64 {
    let dims = small_dims();
    let program = everest_ekl::rrtmg::major_absorber_program(dims);
    let inputs = everest_ekl::rrtmg::synthetic_inputs(dims);
    let reference =
        everest_ekl::interp::evaluate(&program, &everest_ekl::rrtmg::input_map(&inputs))
            .expect("f64 reference")["tau_abs"]
            .data
            .clone();

    let mut quantized = inputs.clone();
    for tensor in [
        &mut quantized.press,
        &mut quantized.r_mix,
        &mut quantized.f_major,
        &mut quantized.k_major,
    ] {
        for v in &mut tensor.data {
            *v = quantize(*v, format);
        }
    }
    let got = everest_ekl::interp::evaluate(&program, &everest_ekl::rrtmg::input_map(&quantized))
        .expect("quantized run")["tau_abs"]
        .data
        .clone();
    got.iter()
        .zip(&reference)
        .map(|(g, w)| (g - w).abs() / w.abs().max(1e-30))
        .fold(0.0f64, f64::max)
}

fn print_series() {
    banner(
        "E6",
        "VIII",
        "custom data formats: speed / resources / accuracy",
    );
    let dims = small_dims();
    let program = everest_ekl::rrtmg::major_absorber_program(dims);
    let module = everest_ekl::lower::lower_to_loops(&program).expect("lowers");

    let formats: Vec<(&str, NumericFormat)> = vec![
        ("f64", NumericFormat::F64),
        ("f32", NumericFormat::F32),
        (
            "fixed<s15.16>",
            NumericFormat::Fixed(FixedFormat::signed(15, 16)),
        ),
        (
            "fixed<s7.8>",
            NumericFormat::Fixed(FixedFormat::signed(7, 8)),
        ),
        ("posit<32,2>", NumericFormat::Posit(PositFormat::new(32, 2))),
        ("posit<16,1>", NumericFormat::Posit(PositFormat::new(16, 1))),
    ];
    println!(
        "{:<14} {:>10} {:>9} {:>8} {:>9} {:>8} {:>12}",
        "format", "cycles", "speedup", "DSP", "LUT", "BRAM", "max rel err"
    );
    rule(76);
    let mut base_cycles = 0u64;
    for (name, format) in &formats {
        let report = synthesize(
            &module,
            "major_absorber",
            HlsOptions {
                format: *format,
                ..HlsOptions::default()
            },
        )
        .expect("synthesizes");
        if base_cycles == 0 {
            base_cycles = report.cycles;
        }
        let err = accuracy_loss(*format);
        println!(
            "{:<14} {:>10} {:>8.2}x {:>8} {:>9} {:>8} {:>12.2e}",
            name,
            report.cycles,
            base_cycles as f64 / report.cycles as f64,
            report.area.dsps,
            report.area.luts,
            report.area.brams,
            err
        );
    }
    println!("\n(narrower formats cut cycles and DSPs; the accuracy column shows");
    println!(" the price — the trade-off of the paper's technical highlight)");
}

fn bench(c: &mut Criterion) {
    print_series();
    let program = everest_ekl::rrtmg::major_absorber_program(small_dims());
    let module = everest_ekl::lower::lower_to_loops(&program).expect("lowers");
    let mut group = c.benchmark_group("e06_formats");
    group.sample_size(10);
    for (label, format) in [
        ("f64", NumericFormat::F64),
        ("fixed16", NumericFormat::Fixed(FixedFormat::signed(7, 8))),
    ] {
        group.bench_function(format!("synthesize_{label}"), |b| {
            b.iter(|| {
                synthesize(
                    &module,
                    "major_absorber",
                    HlsOptions {
                        format,
                        ..HlsOptions::default()
                    },
                )
                .expect("synthesizes")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
