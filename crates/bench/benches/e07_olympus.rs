//! E7 [§V-C, refs 16/24/25] — Olympus ablation: each data-movement
//! optimization (packing, lanes, replication, double buffering, PLM
//! sharing) toggled on a memory-bound kernel on the u280 HBM system.

use criterion::{criterion_group, criterion_main, Criterion};

use everest_bench::{banner, rule};
use everest_hls::{HlsReport, Resources};
use everest_olympus::{estimate_makespan, generate, KernelSpec, SystemConfig};
use everest_platform::device::FpgaDevice;

/// A memory-bound streaming kernel: little compute, lots of traffic.
fn streaming_kernel() -> KernelSpec {
    KernelSpec::from_report(
        HlsReport {
            kernel: "stream".into(),
            cycles: 40_000,
            time_us: 133.0,
            area: Resources {
                luts: 30_000,
                ffs: 45_000,
                dsps: 128,
                brams: 48,
            },
            fmax_mhz: 300.0,
            units: Default::default(),
            loops: Vec::new(),
            bytes_per_call: 16 << 20,
        },
        0.6,
    )
}

fn configs() -> Vec<(&'static str, SystemConfig)> {
    let base = SystemConfig {
        replication: 1,
        lanes_per_replica: 1,
        pack_bytes: 64,
        double_buffer: false,
        plm_share: 1.0,
    };
    vec![
        ("baseline (64B, 1 lane, 1x)", base),
        (
            "+ packing (4 KiB bursts)",
            SystemConfig {
                pack_bytes: 4096,
                ..base
            },
        ),
        (
            "+ lanes (4 per replica)",
            SystemConfig {
                pack_bytes: 4096,
                lanes_per_replica: 4,
                ..base
            },
        ),
        (
            "+ replication (4x)",
            SystemConfig {
                pack_bytes: 4096,
                lanes_per_replica: 4,
                replication: 4,
                ..base
            },
        ),
        (
            "+ double buffering",
            SystemConfig {
                pack_bytes: 4096,
                lanes_per_replica: 4,
                replication: 4,
                double_buffer: true,
                ..base
            },
        ),
        (
            "+ PLM sharing (0.6)",
            SystemConfig {
                pack_bytes: 4096,
                lanes_per_replica: 4,
                replication: 4,
                double_buffer: true,
                plm_share: 0.6,
            },
        ),
    ]
}

fn print_series() {
    banner(
        "E7",
        "V-C [16][24][25]",
        "Olympus memory-architecture ablation (u280, 64-item batch)",
    );
    let device = FpgaDevice::alveo_u280();
    let kernel = streaming_kernel();
    println!(
        "{:<28} {:>12} {:>9} {:>9} {:>8}",
        "configuration", "makespan", "speedup", "mem util", "BRAM"
    );
    rule(72);
    let mut base = 0.0;
    for (label, config) in configs() {
        let arch = generate(kernel.clone(), &device, config).expect("fits");
        let m = estimate_makespan(&arch, &device, 64);
        if base == 0.0 {
            base = m.total_us;
        }
        println!(
            "{:<28} {:>9.0} us {:>8.2}x {:>8.1}% {:>8}",
            label,
            m.total_us,
            base / m.total_us,
            100.0 * m.memory_utilization,
            arch.resources.brams
        );
    }
    println!("\n(the cumulative stack reproduces the high-bandwidth architectures");
    println!(" of refs [24][25]: packing fixes burst efficiency, lanes scale");
    println!(" channels, replication scales compute, buffering overlaps phases)");
}

fn bench(c: &mut Criterion) {
    print_series();
    let device = FpgaDevice::alveo_u280();
    let kernel = streaming_kernel();
    let mut group = c.benchmark_group("e07_olympus");
    group.sample_size(20);
    group.bench_function("design_space_exploration", |b| {
        b.iter(|| everest_olympus::explore(&kernel, &device, 64).expect("explores"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
