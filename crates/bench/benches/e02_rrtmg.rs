//! E2 [Fig. 3, §V-A.1] — RRTMG major absorber: the 13-line EKL kernel vs
//! the ~200-line Fortran-shaped loop nest, correctness and throughput
//! across g-point counts, plus the u55c system-model estimate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use everest_bench::{banner, compiled_rrtmg, dims_with_gpt, rule};
use everest_ekl::interp::evaluate;
use everest_ekl::rrtmg::{
    input_map, major_absorber_program, major_absorber_reference, major_absorber_source,
    synthetic_inputs,
};
use everest_sdk::basecamp::CompileOptions;

fn print_series() {
    banner(
        "E2",
        "Fig. 3 / V-A.1",
        "EKL RRTMG kernel vs reference loop nest",
    );
    let src = major_absorber_source(dims_with_gpt(16));
    println!(
        "expressiveness: {} EKL lines replace the ~200-line Fortran loop nest",
        src.lines().filter(|l| !l.trim().is_empty()).count()
    );
    println!(
        "\n{:>6} {:>14} {:>14} {:>12} {:>14}",
        "ngpt", "ekl interp", "reference", "max rel err", "u55c model"
    );
    rule(66);
    for ngpt in [8, 16, 32, 64] {
        let dims = dims_with_gpt(ngpt);
        let program = major_absorber_program(dims);
        let inputs = synthetic_inputs(dims);
        let map = input_map(&inputs);

        let t = Instant::now();
        let outputs = evaluate(&program, &map).expect("evaluates");
        let interp_ms = t.elapsed().as_secs_f64() * 1000.0;

        let t = Instant::now();
        let reference = major_absorber_reference(dims, &inputs);
        let ref_ms = t.elapsed().as_secs_f64() * 1000.0;

        let got = &outputs["tau_abs"].data;
        let max_rel = got
            .iter()
            .zip(&reference)
            .map(|(g, w)| (g - w).abs() / w.abs().max(1e-30))
            .fold(0.0f64, f64::max);

        let compiled = compiled_rrtmg(dims, CompileOptions::default());
        let fpga_ms = compiled.fpga_time_us.expect("fpga") / 1000.0;
        println!(
            "{:>6} {:>11.2} ms {:>11.3} ms {:>12.2e} {:>11.4} ms",
            ngpt, interp_ms, ref_ms, max_rel, fpga_ms
        );
    }
    println!("\n(the EKL interpreter is a semantics oracle, not a production path;");
    println!(" the compiled u55c model shows the deployed kernel's per-call time)");
}

fn bench(c: &mut Criterion) {
    print_series();
    let dims = dims_with_gpt(16);
    let program = major_absorber_program(dims);
    let inputs = synthetic_inputs(dims);
    let map = input_map(&inputs);
    let mut group = c.benchmark_group("e02_rrtmg");
    group.sample_size(10);
    group.bench_function("ekl_interp_ngpt16", |b| {
        b.iter(|| evaluate(&program, &map).expect("evaluates"))
    });
    group.bench_function("reference_ngpt16", |b| {
        b.iter(|| major_absorber_reference(dims, &inputs))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
