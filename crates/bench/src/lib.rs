//! Shared helpers for the EVEREST experiment harness (E1–E13).
//!
//! The paper (DATE 2024) is a toolchain overview without numeric tables;
//! every figure and every §VIII claim is reproduced as an experiment
//! here. Each bench target prints the paper-shaped series once, then
//! criterion-measures the representative computation. EXPERIMENTS.md
//! records claim-vs-measured for all of them.

use everest_ekl::rrtmg::RrtmgDims;
use everest_sdk::basecamp::{Basecamp, CompileOptions, CompiledKernel};

/// Small RRTMG dimensions used across experiments (fast, same structure
/// as the full kernel).
pub fn small_dims() -> RrtmgDims {
    RrtmgDims {
        nlay: 16,
        ngpt: 16,
        ntemp: 8,
        npres: 16,
        neta: 6,
        nflav: 2,
    }
}

/// RRTMG dimensions scaled by a g-point count.
pub fn dims_with_gpt(ngpt: usize) -> RrtmgDims {
    RrtmgDims {
        ngpt,
        ..small_dims()
    }
}

/// Compiles the RRTMG kernel with default options.
///
/// # Panics
///
/// Panics when compilation fails (a harness bug).
pub fn compiled_rrtmg(dims: RrtmgDims, options: CompileOptions) -> CompiledKernel {
    let source = everest_ekl::rrtmg::major_absorber_source(dims);
    Basecamp::new()
        .compile_kernel(&source, options)
        .expect("rrtmg compiles")
}

/// Prints the experiment banner.
pub fn banner(id: &str, anchor: &str, title: &str) {
    println!("\n================================================================");
    println!("{id} [{anchor}] {title}");
    println!("================================================================");
}

/// Prints a table rule.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints the telemetry accumulated in the global registry as an
/// indented span tree with metric tables, then clears the registry so
/// the next experiment starts from zero. Call at the end of a bench
/// target to see where its wall-clock went.
pub fn print_telemetry_summary() {
    let registry = everest_telemetry::global();
    println!("{}", registry.to_text());
    registry.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrtmg_helper_compiles() {
        let k = compiled_rrtmg(
            RrtmgDims {
                nlay: 4,
                ngpt: 2,
                ntemp: 4,
                npres: 8,
                neta: 3,
                nflav: 2,
            },
            CompileOptions::default(),
        );
        assert!(k.hls.cycles > 0);
    }
}
