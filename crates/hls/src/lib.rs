//! # everest-hls
//!
//! A high-level synthesis engine over `everest-ir` loop-level IR — the
//! role Vitis HLS and Bambu play inside the EVEREST SDK (paper §IV): it
//! turns compiled kernels into accelerator models with cycle counts,
//! initiation intervals and FPGA resource estimates.
//!
//! Components:
//!
//! * [`resources`] — functional-unit cost library (f32/f64/fixed/posit);
//! * [`cdfg`] — control/data-flow graph with memory dependences;
//! * [`schedule`] — ASAP/ALAP and resource-constrained list scheduling,
//!   plus functional-unit binding;
//! * [`transform`] — verified loop unrolling;
//! * [`engine`] — the synthesis driver: loop pipelining with II search
//!   (resource MII vs recurrence MII), nested-loop latency roll-up,
//!   area estimation and [`engine::HlsReport`].
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use everest_ekl::{check::check, lower::lower_to_loops, parser::parse};
//! use everest_hls::engine::{synthesize, HlsOptions};
//!
//! let program = check(&parse(
//!     "kernel scale {
//!        index i : 0..128
//!        input a : [i]
//!        let y[i] = 2.0 * a[i]
//!        output y
//!      }",
//! )?)?;
//! let module = lower_to_loops(&program)?;
//! let report = synthesize(&module, "scale", HlsOptions::default())?;
//! assert!(report.cycles > 128); // at least one cycle per element
//! assert!(report.area.luts > 0);
//! # Ok(())
//! # }
//! ```

pub mod cdfg;
pub mod engine;
pub mod resources;
pub mod schedule;
pub mod transform;

pub use engine::{synthesize, synthesize_many, HlsOptions, HlsReport, LoopReport};
pub use resources::{CostLibrary, NumericFormat, Resources};
