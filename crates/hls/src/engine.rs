//! The HLS engine: turns a loop-level IR function into a synthesized
//! accelerator model with latency, initiation intervals and resource
//! usage — the role Vitis HLS / Bambu play in the EVEREST SDK (§IV).

use std::collections::HashMap;

use everest_ir::attr::Attribute;
use everest_ir::module::{Module, ValueDef};
use everest_ir::types::Type;
use everest_ir::{IrError, IrResult, OpId, ValueId};

use crate::cdfg::BlockCdfg;
use crate::resources::{CostLibrary, NumericFormat, Resources};
use crate::schedule::{bind_units, list_schedule, Constraints, NodeCosts};
use crate::transform::{is_innermost, trip_count, unroll_innermost};

/// Synthesis options.
#[derive(Debug, Clone, Copy)]
pub struct HlsOptions {
    /// Numeric format float arithmetic is mapped to.
    pub format: NumericFormat,
    /// Pipeline innermost loops (modulo scheduling).
    pub pipeline: bool,
    /// Unroll factor applied to innermost loops before scheduling.
    pub unroll: u32,
    /// Array partitioning factor: multiplies memory ports per buffer.
    pub partition: u32,
    /// Target clock period in nanoseconds.
    pub clock_ns: f64,
    /// Optional DSP issue limit per cycle.
    pub dsp_limit: Option<u32>,
    /// Run loop-invariant code motion before scheduling (hoists
    /// constants and invariant arithmetic out of pipelined bodies).
    pub licm: bool,
}

impl Default for HlsOptions {
    fn default() -> Self {
        HlsOptions {
            format: NumericFormat::F64,
            pipeline: true,
            unroll: 1,
            partition: 1,
            clock_ns: 3.33,
            dsp_limit: None,
            licm: false,
        }
    }
}

/// Report for one loop in the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// Trip count (0 if unknown).
    pub trip_count: u64,
    /// Body schedule length in cycles.
    pub body_cycles: u64,
    /// Whether the loop was pipelined.
    pub pipelined: bool,
    /// Achieved initiation interval (pipelined loops only).
    pub ii: u64,
    /// Total cycles for the whole loop.
    pub total_cycles: u64,
}

/// The synthesis result.
#[derive(Debug, Clone, PartialEq)]
pub struct HlsReport {
    /// Kernel (function) name.
    pub kernel: String,
    /// Total latency in cycles.
    pub cycles: u64,
    /// Latency in microseconds at the target clock.
    pub time_us: f64,
    /// Estimated resource usage after binding.
    pub area: Resources,
    /// Clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Functional units per operation kind.
    pub units: HashMap<String, u64>,
    /// Per-loop details, outermost first.
    pub loops: Vec<LoopReport>,
    /// Bytes moved per kernel invocation (sum of argument buffer sizes).
    pub bytes_per_call: u64,
}

impl HlsReport {
    /// Throughput in invocations per second.
    pub fn calls_per_second(&self) -> f64 {
        if self.time_us == 0.0 {
            f64::INFINITY
        } else {
            1e6 / self.time_us
        }
    }

    /// Renders a vendor-style synthesis report (the artifact Vitis HLS /
    /// Bambu users read).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== Synthesis report: {} ==", self.kernel);
        let _ = writeln!(
            out,
            "latency     : {} cycles ({:.2} us @ {:.0} MHz)",
            self.cycles, self.time_us, self.fmax_mhz
        );
        let _ = writeln!(
            out,
            "resources   : {} LUT | {} FF | {} DSP | {} BRAM",
            self.area.luts, self.area.ffs, self.area.dsps, self.area.brams
        );
        let _ = writeln!(out, "interface   : {} bytes per call", self.bytes_per_call);
        if !self.loops.is_empty() {
            let _ = writeln!(out, "loops:");
            let _ = writeln!(
                out,
                "  {:<6} {:>6} {:>10} {:>6} {:>10} {:>10}",
                "depth", "trip", "body", "II", "pipelined", "total"
            );
            for l in &self.loops {
                let _ = writeln!(
                    out,
                    "  {:<6} {:>6} {:>10} {:>6} {:>10} {:>10}",
                    l.depth,
                    l.trip_count,
                    l.body_cycles,
                    l.ii,
                    if l.pipelined { "yes" } else { "no" },
                    l.total_cycles
                );
            }
        }
        if !self.units.is_empty() {
            let mut units: Vec<_> = self.units.iter().collect();
            units.sort();
            let _ = writeln!(out, "functional units:");
            for (kind, count) in units {
                let _ = writeln!(out, "  {kind:<24} x{count}");
            }
        }
        out
    }
}

/// Synthesizes `func` from `module` under the given options.
///
/// The input module is not modified; unrolling happens on a private
/// clone.
///
/// # Errors
///
/// Returns [`IrError`] if the function is missing or malformed.
pub fn synthesize(module: &Module, func: &str, options: HlsOptions) -> IrResult<HlsReport> {
    let telemetry_span = everest_telemetry::span("hls.synthesize");
    telemetry_span.arg("kernel", func);
    let mut module = module.clone();
    if options.unroll > 1 {
        let _unroll = everest_telemetry::span("hls.unroll");
        unroll_innermost(&mut module, func, options.unroll)?;
    }
    if options.licm {
        use everest_ir::pass::Pass as _;
        let _licm = everest_telemetry::span("hls.licm");
        let ctx = everest_ir::registry::Context::with_all_dialects();
        everest_ir::pass::LoopInvariantCodeMotion.run(&ctx, &mut module)?;
    }
    let func_op = module
        .lookup_symbol(func)
        .ok_or_else(|| IrError::InvalidId(format!("no function '{func}'")))?;
    let operation = module
        .op(func_op)
        .ok_or_else(|| IrError::InvalidId("function erased".into()))?;
    let region = *operation
        .regions
        .first()
        .ok_or_else(|| IrError::Malformed("function has no body".into()))?;
    let entry = module.region(region).blocks[0];

    let lib = CostLibrary {
        clock_ns: options.clock_ns,
        plm_ports_per_bank: 2 * options.partition.max(1),
    };
    let mut synth = Synthesizer {
        module: &module,
        lib,
        options,
        loops: Vec::new(),
        units: HashMap::new(),
        bram: 0,
    };
    let cycles = {
        let _schedule = everest_telemetry::span("hls.schedule");
        synth.schedule_block(entry, 0)?
    };

    // Area: shared functional units (max concurrency per kind across the
    // design) plus PLM BRAMs.
    let mut area = Resources::default();
    for (kind, &count) in &synth.units {
        let unit = synth.lib.op_cost(kind, None, options.format).area;
        area = area.add(unit.scale(count));
    }
    area.brams += synth.bram;

    // Bytes per call: argument buffers.
    let fty = operation
        .attr("function_type")
        .and_then(Attribute::as_type)
        .ok_or_else(|| IrError::Malformed("function without type".into()))?;
    let mut bytes = 0u64;
    if let Type::Function { inputs, .. } = fty {
        for ty in inputs {
            if let (Some(n), Some(elem)) = (ty.num_elements(), ty.elem()) {
                bytes += n * elem.bit_width().unwrap_or(64) as u64 / 8;
            }
        }
    }

    let time_us = cycles as f64 * options.clock_ns / 1000.0;
    telemetry_span.record_cycles(cycles);
    telemetry_span
        .arg("luts", area.luts)
        .arg("brams", area.brams);
    everest_telemetry::counter_add("hls.kernels_synthesized", 1);
    everest_telemetry::histogram_record("hls.cycles", cycles as f64);
    Ok(HlsReport {
        kernel: func.to_string(),
        cycles,
        time_us,
        area,
        fmax_mhz: synth.lib.fmax_mhz(),
        units: synth.units,
        loops: synth.loops,
        bytes_per_call: bytes,
    })
}

/// Synthesizes several functions of `module` on up to `threads` worker
/// threads, returning one report per function in input order.
///
/// Per-function synthesis never mutates the shared module (unrolling
/// happens on private clones), so functions are embarrassingly
/// parallel: the batch splits into contiguous chunks, one per worker,
/// and the reports are joined back by index. The result is identical
/// for any thread count — the property the replay-equality suite
/// checks. `threads <= 1` (or a single function) runs inline with no
/// threads spawned.
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use everest_ekl::{check::check, lower::lower_to_loops, parser::parse};
/// use everest_hls::engine::{synthesize_many, HlsOptions};
///
/// let program = check(&parse(
///     "kernel scale {
///        index i : 0..128
///        input a : [i]
///        let y[i] = 2.0 * a[i]
///        output y
///      }",
/// )?)?;
/// let module = lower_to_loops(&program)?;
/// let reports = synthesize_many(&module, &["scale"], HlsOptions::default(), 4)?;
/// assert_eq!(reports[0].kernel, "scale");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns the error of the failing function with the lowest index;
/// other chunks still run to completion.
///
/// # Panics
///
/// Propagates panics from synthesis workers.
pub fn synthesize_many(
    module: &Module,
    funcs: &[&str],
    options: HlsOptions,
    threads: usize,
) -> IrResult<Vec<HlsReport>> {
    let threads = threads.clamp(1, funcs.len().max(1));
    if threads <= 1 {
        return funcs
            .iter()
            .map(|f| synthesize(module, f, options))
            .collect();
    }
    let chunk_len = funcs.len().div_ceil(threads);
    let mut results: Vec<IrResult<HlsReport>> = Vec::with_capacity(funcs.len());
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for chunk in funcs.chunks(chunk_len) {
            workers.push(scope.spawn(move || {
                chunk
                    .iter()
                    .map(|f| synthesize(module, f, options))
                    .collect::<Vec<_>>()
            }));
        }
        // Contiguous chunks joined in spawn order restore input order.
        for worker in workers {
            results.extend(worker.join().expect("synthesis worker panicked"));
        }
    });
    results.into_iter().collect()
}

struct Synthesizer<'m> {
    module: &'m Module,
    lib: CostLibrary,
    options: HlsOptions,
    loops: Vec<LoopReport>,
    units: HashMap<String, u64>,
    bram: u64,
}

impl<'m> Synthesizer<'m> {
    /// Schedules one block; returns its total cycle count.
    fn schedule_block(&mut self, block: everest_ir::BlockId, depth: usize) -> IrResult<u64> {
        let cdfg = BlockCdfg::build(self.module, block);
        let mut latency = Vec::with_capacity(cdfg.nodes.len());
        let mut memory_buffer = Vec::with_capacity(cdfg.nodes.len());
        let mut uses_dsp = Vec::with_capacity(cdfg.nodes.len());

        for node in &cdfg.nodes {
            let operation = self.module.op(node.op).expect("live");
            let (lat, buffer, dsp) = match node.name.as_str() {
                "scf.for" => (self.loop_latency(node.op, depth)?, None, false),
                "scf.if" => {
                    let mut branch_max = 0;
                    for &r in &operation.regions {
                        if let Some(&b) = self.module.region(r).blocks.first() {
                            branch_max = branch_max.max(self.schedule_block(b, depth)?);
                        }
                    }
                    (branch_max + 1, None, false)
                }
                "memref.load" => {
                    let cost = self.node_cost(node.op);
                    (cost, Some(buffer_of(operation.operands[0])), false)
                }
                "memref.store" => {
                    let cost = self.node_cost(node.op);
                    (cost, Some(buffer_of(operation.operands[1])), false)
                }
                "memref.alloc" => {
                    let ty = self.module.value_type(operation.results[0]);
                    self.bram += CostLibrary::bram_cost(ty);
                    (0, None, false)
                }
                "memref.copy" => {
                    // Burst copy: one element per cycle after setup.
                    let n = self
                        .module
                        .value_type(operation.operands[0])
                        .num_elements()
                        .unwrap_or(1);
                    (n + 2, Some(buffer_of(operation.operands[1])), false)
                }
                _ => {
                    let cost = self.lib.op_cost(
                        &node.name,
                        operation
                            .results
                            .first()
                            .map(|&r| self.module.value_type(r)),
                        self.options.format,
                    );
                    (cost.latency as u64, None, cost.area.dsps > 0)
                }
            };
            latency.push(lat);
            memory_buffer.push(buffer);
            uses_dsp.push(dsp);
        }
        let costs = NodeCosts {
            latency,
            memory_buffer,
            uses_dsp,
        };
        let constraints = Constraints {
            ports_per_buffer: self.lib.plm_ports_per_bank,
            dsp_issues_per_cycle: self.options.dsp_limit,
        };
        let schedule = list_schedule(&cdfg, &costs, constraints);
        // Merge functional-unit requirements (max across blocks: units are
        // shared between mutually exclusive program points).
        for (kind, count) in bind_units(&cdfg, &costs, &schedule) {
            let entry = self.units.entry(kind).or_insert(0);
            *entry = (*entry).max(count);
        }
        Ok(schedule.length)
    }

    /// Total latency of a loop, recording a [`LoopReport`].
    fn loop_latency(&mut self, for_op: OpId, depth: usize) -> IrResult<u64> {
        let operation = self.module.op(for_op).expect("live");
        let region = operation.regions[0];
        let body = self.module.region(region).blocks[0];
        let trip = trip_count(self.module, for_op).unwrap_or(0);
        let body_cycles = self.schedule_block(body, depth + 1)?;

        let innermost = is_innermost(self.module, for_op);
        let (total, pipelined, ii) = if innermost && self.options.pipeline && trip > 0 {
            let ii = self.initiation_interval(body, body_cycles);
            (body_cycles + (trip - 1) * ii, true, ii)
        } else if trip > 0 {
            (trip * (body_cycles + 1) + 1, false, body_cycles + 1)
        } else {
            (body_cycles + 2, false, body_cycles + 1)
        };
        self.loops.push(LoopReport {
            depth,
            trip_count: trip,
            body_cycles,
            pipelined,
            ii,
            total_cycles: total,
        });
        Ok(total)
    }

    /// Initiation interval: max(resource MII, recurrence MII).
    fn initiation_interval(&self, body: everest_ir::BlockId, body_cycles: u64) -> u64 {
        let cdfg = BlockCdfg::build(self.module, body);
        // Resource MII: accesses per buffer / ports.
        let mut per_buffer: HashMap<ValueId, u64> = HashMap::new();
        for node in &cdfg.nodes {
            let operation = self.module.op(node.op).expect("live");
            match node.name.as_str() {
                "memref.load" => {
                    *per_buffer
                        .entry(buffer_of(operation.operands[0]))
                        .or_insert(0) += 1;
                }
                "memref.store" => {
                    *per_buffer
                        .entry(buffer_of(operation.operands[1]))
                        .or_insert(0) += 1;
                }
                _ => {}
            }
        }
        let ports = self.lib.plm_ports_per_bank as u64;
        let res_mii = per_buffer
            .values()
            .map(|&n| n.div_ceil(ports))
            .max()
            .unwrap_or(1)
            .max(1);

        // Recurrence MII: loop-carried dependence through a buffer that is
        // both loaded and stored in the body (e.g. accumulator cells): the
        // path from the load to the store must complete before the next
        // iteration's load.
        let mut rec_mii = 1u64;
        let mut loaded: HashMap<ValueId, Vec<usize>> = HashMap::new();
        let mut stored: HashMap<ValueId, Vec<usize>> = HashMap::new();
        for (i, node) in cdfg.nodes.iter().enumerate() {
            let operation = self.module.op(node.op).expect("live");
            match node.name.as_str() {
                "memref.load" => loaded
                    .entry(buffer_of(operation.operands[0]))
                    .or_default()
                    .push(i),
                "memref.store" => stored
                    .entry(buffer_of(operation.operands[1]))
                    .or_default()
                    .push(i),
                _ => {}
            }
        }
        // Approximate the recurrence length with the ASAP distance between
        // the load and the store plus the store latency.
        let mut latencies = Vec::with_capacity(cdfg.nodes.len());
        for node in &cdfg.nodes {
            latencies.push(self.node_cost(node.op));
        }
        let costs = NodeCosts {
            latency: latencies,
            memory_buffer: vec![None; cdfg.nodes.len()],
            uses_dsp: vec![false; cdfg.nodes.len()],
        };
        let asap = crate::schedule::asap(&cdfg, &costs);
        for (buffer, loads) in &loaded {
            if let Some(stores) = stored.get(buffer) {
                for &l in loads {
                    for &s in stores {
                        if asap.start[s] >= asap.start[l] {
                            let span = asap.start[s] + costs.latency[s] - asap.start[l];
                            rec_mii = rec_mii.max(span);
                        }
                    }
                }
            }
        }
        res_mii.max(rec_mii).min(body_cycles.max(1))
    }

    /// Latency of a leaf op.
    fn node_cost(&self, op: OpId) -> u64 {
        let operation = self.module.op(op).expect("live");
        if !operation.regions.is_empty() {
            // Nested region ops inside an II computation: use body length 1.
            return 1;
        }
        self.lib
            .op_cost(
                &operation.name,
                operation
                    .results
                    .first()
                    .map(|&r| self.module.value_type(r)),
                self.options.format,
            )
            .latency as u64
    }
}

/// Buffer identity for port constraints: the SSA value of the memref.
fn buffer_of(v: ValueId) -> ValueId {
    v
}

/// Convenience: a `ValueDef`-based root lookup may be added later; today
/// buffers are identified by their defining SSA value.
#[allow(dead_code)]
fn root(module: &Module, v: ValueId) -> ValueId {
    match module.value(v).def {
        ValueDef::OpResult { .. } | ValueDef::BlockArg { .. } => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ekl::{check::check, lower::lower_to_loops, parser::parse};

    fn axpy_module() -> Module {
        let program = check(
            &parse(
                "kernel axpy {
                   index i : 0..256
                   input a : [i]
                   input x : [i]
                   let y[i] = 2.0 * a[i] + x[i]
                   output y
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        lower_to_loops(&program).unwrap()
    }

    fn dot_module() -> Module {
        let program = check(
            &parse(
                "kernel dot {
                   index i : 0..256
                   input a : [i]
                   input b : [i]
                   let d = sum(i)(a[i] * b[i])
                   output d
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        lower_to_loops(&program).unwrap()
    }

    #[test]
    fn synthesize_many_is_identical_for_any_thread_count() {
        let m = axpy_module();
        let funcs = ["axpy"; 5];
        let sequential = synthesize_many(&m, &funcs, HlsOptions::default(), 1).unwrap();
        assert_eq!(sequential.len(), funcs.len());
        for threads in [2, 4, 8] {
            let threaded = synthesize_many(&m, &funcs, HlsOptions::default(), threads).unwrap();
            assert_eq!(threaded, sequential, "thread count {threads} diverged");
        }
    }

    #[test]
    fn synthesize_many_reports_error_of_lowest_failing_function() {
        let m = axpy_module();
        let funcs = ["axpy", "nosuch_a", "axpy", "nosuch_b"];
        for threads in [1, 2, 4] {
            let err = synthesize_many(&m, &funcs, HlsOptions::default(), threads).unwrap_err();
            assert!(
                err.to_string().contains("nosuch_a"),
                "threads={threads} surfaced the wrong function: {err}"
            );
        }
    }

    #[test]
    fn pipelining_improves_elementwise_latency() {
        let m = axpy_module();
        let pipelined = synthesize(&m, "axpy", HlsOptions::default()).unwrap();
        let sequential = synthesize(
            &m,
            "axpy",
            HlsOptions {
                pipeline: false,
                ..HlsOptions::default()
            },
        )
        .unwrap();
        assert!(
            pipelined.cycles * 3 < sequential.cycles,
            "pipelining should win big: {} vs {}",
            pipelined.cycles,
            sequential.cycles
        );
        // elementwise loop reaches II close to 1 with enough ports
        let inner = pipelined.loops.iter().find(|l| l.pipelined).unwrap();
        assert!(inner.ii <= 2, "got II {}", inner.ii);
    }

    #[test]
    fn reduction_has_recurrence_limited_ii() {
        let m = dot_module();
        let report = synthesize(&m, "dot", HlsOptions::default()).unwrap();
        let inner = report.loops.iter().find(|l| l.pipelined).unwrap();
        // The accumulator recurrence (load+addf+mul path+store) prevents II=1
        // in f64.
        assert!(
            inner.ii >= 8,
            "f64 accumulation cannot reach II 1, got {}",
            inner.ii
        );
    }

    #[test]
    fn fixed_point_shrinks_recurrence_and_latency() {
        let m = dot_module();
        let double = synthesize(&m, "dot", HlsOptions::default()).unwrap();
        let fixed = synthesize(
            &m,
            "dot",
            HlsOptions {
                format: NumericFormat::Fixed(everest_ir::FixedFormat::signed(15, 16)),
                ..HlsOptions::default()
            },
        )
        .unwrap();
        assert!(
            fixed.cycles < double.cycles / 2,
            "fixed point should slash the reduction latency: {} vs {}",
            fixed.cycles,
            double.cycles
        );
        assert!(fixed.area.dsps <= double.area.dsps);
    }

    #[test]
    fn unrolling_trades_area_for_cycles() {
        let m = axpy_module();
        let base = synthesize(
            &m,
            "axpy",
            HlsOptions {
                partition: 4,
                unroll: 1,
                ..HlsOptions::default()
            },
        )
        .unwrap();
        let unrolled = synthesize(
            &m,
            "axpy",
            HlsOptions {
                partition: 4,
                unroll: 4,
                ..HlsOptions::default()
            },
        )
        .unwrap();
        assert!(
            unrolled.cycles < base.cycles,
            "unroll+partition should cut cycles: {} vs {}",
            unrolled.cycles,
            base.cycles
        );
        assert!(
            unrolled.area.luts > base.area.luts,
            "unrolling must cost area: {} vs {}",
            unrolled.area.luts,
            base.area.luts
        );
    }

    #[test]
    fn report_carries_time_and_bytes() {
        let m = axpy_module();
        let report = synthesize(&m, "axpy", HlsOptions::default()).unwrap();
        assert!(report.time_us > 0.0);
        assert!((report.fmax_mhz - 300.0).abs() < 1.0);
        // two input buffers of 256 f64 plus the output buffer
        assert_eq!(report.bytes_per_call, 3 * 256 * 8);
        assert!(report.calls_per_second() > 0.0);
    }

    #[test]
    fn licm_reduces_cycles() {
        let m = axpy_module();
        let base = synthesize(&m, "axpy", HlsOptions::default()).unwrap();
        let hoisted = synthesize(
            &m,
            "axpy",
            HlsOptions {
                licm: true,
                ..HlsOptions::default()
            },
        )
        .unwrap();
        assert!(
            hoisted.cycles <= base.cycles,
            "LICM must not regress: {} vs {}",
            hoisted.cycles,
            base.cycles
        );
        // the non-pipelined case benefits most: the hoisted constant no
        // longer occupies body schedule slots
        let base_seq = synthesize(
            &m,
            "axpy",
            HlsOptions {
                pipeline: false,
                ..HlsOptions::default()
            },
        )
        .unwrap();
        let licm_seq = synthesize(
            &m,
            "axpy",
            HlsOptions {
                pipeline: false,
                licm: true,
                ..HlsOptions::default()
            },
        )
        .unwrap();
        assert!(licm_seq.cycles <= base_seq.cycles);
    }

    #[test]
    fn missing_function_errors() {
        let m = Module::new();
        assert!(synthesize(&m, "ghost", HlsOptions::default()).is_err());
    }

    #[test]
    fn text_report_contains_all_sections() {
        let m = axpy_module();
        let report = synthesize(&m, "axpy", HlsOptions::default()).unwrap();
        let text = report.to_text();
        assert!(text.contains("Synthesis report: axpy"));
        assert!(text.contains("latency"));
        assert!(text.contains("resources"));
        assert!(text.contains("loops:"));
        assert!(text.contains("functional units:"));
        assert!(text.contains("arith.addf"));
    }

    #[test]
    fn dsp_limit_slows_multiplier_heavy_code() {
        let program = check(
            &parse(
                "kernel mulheavy {
                   index i : 0..64
                   input a : [i]
                   let y[i] = a[i] * a[i] * a[i] * a[i] * a[i]
                   output y
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        let m = lower_to_loops(&program).unwrap();
        let free = synthesize(
            &m,
            "mulheavy",
            HlsOptions {
                unroll: 8,
                partition: 8,
                dsp_limit: None,
                ..HlsOptions::default()
            },
        )
        .unwrap();
        let limited = synthesize(
            &m,
            "mulheavy",
            HlsOptions {
                unroll: 8,
                partition: 8,
                dsp_limit: Some(1),
                ..HlsOptions::default()
            },
        )
        .unwrap();
        assert!(
            limited.cycles >= free.cycles,
            "dsp limit cannot make it faster: {} vs {}",
            limited.cycles,
            free.cycles
        );
    }
}
