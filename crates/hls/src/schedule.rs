//! Operation scheduling: ASAP, ALAP and resource-constrained list
//! scheduling, plus functional-unit binding estimation.

use std::collections::HashMap;

use everest_ir::ValueId;

use crate::cdfg::BlockCdfg;

/// Per-node scheduling inputs.
#[derive(Debug, Clone)]
pub struct NodeCosts {
    /// Latency in cycles of each CDFG node (0 allowed for free ops).
    pub latency: Vec<u64>,
    /// For memory ops, the buffer they access (port constraints apply).
    pub memory_buffer: Vec<Option<ValueId>>,
    /// Whether the node consumes a DSP-issue slot.
    pub uses_dsp: Vec<bool>,
}

/// Scheduling constraints.
#[derive(Debug, Clone, Copy)]
pub struct Constraints {
    /// Concurrent accesses allowed per buffer per cycle.
    pub ports_per_buffer: u32,
    /// Maximum DSP-consuming issues per cycle (`None` = unlimited).
    pub dsp_issues_per_cycle: Option<u32>,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            ports_per_buffer: 2,
            dsp_issues_per_cycle: None,
        }
    }
}

/// A computed schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Start cycle of each node.
    pub start: Vec<u64>,
    /// Total cycles (max finish time).
    pub length: u64,
}

/// As-soon-as-possible schedule (dependences only).
pub fn asap(cdfg: &BlockCdfg, costs: &NodeCosts) -> Schedule {
    let mut start = vec![0u64; cdfg.nodes.len()];
    let mut length = 0;
    for (i, node) in cdfg.nodes.iter().enumerate() {
        let mut earliest = 0;
        for &(p, _) in &node.preds {
            earliest = earliest.max(start[p] + costs.latency[p]);
        }
        start[i] = earliest;
        length = length.max(earliest + costs.latency[i]);
    }
    Schedule { start, length }
}

/// As-late-as-possible schedule for a given deadline.
pub fn alap(cdfg: &BlockCdfg, costs: &NodeCosts, deadline: u64) -> Schedule {
    let succs = cdfg.successors();
    let n = cdfg.nodes.len();
    let mut start = vec![0u64; n];
    for i in (0..n).rev() {
        let mut latest = deadline.saturating_sub(costs.latency[i]);
        for &s in &succs[i] {
            latest = latest.min(start[s].saturating_sub(costs.latency[i]));
        }
        start[i] = latest;
    }
    Schedule {
        start,
        length: deadline,
    }
}

/// Resource-constrained list scheduling.
///
/// Priority is ALAP slack (critical ops first). Port and DSP constraints
/// limit issues per cycle; latency-0 ops are free and issue with their
/// dependences in the same cycle.
pub fn list_schedule(cdfg: &BlockCdfg, costs: &NodeCosts, constraints: Constraints) -> Schedule {
    let n = cdfg.nodes.len();
    if n == 0 {
        return Schedule {
            start: Vec::new(),
            length: 0,
        };
    }
    let unconstrained = asap(cdfg, costs);
    let alap_sched = alap(cdfg, costs, unconstrained.length);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (alap_sched.start[i], i));

    let mut start = vec![u64::MAX; n];
    let mut scheduled = vec![false; n];
    // (cycle, buffer) -> used ports ; cycle -> dsp issues
    let mut port_use: HashMap<(u64, ValueId), u32> = HashMap::new();
    let mut dsp_use: HashMap<u64, u32> = HashMap::new();
    let mut remaining = n;
    let mut length = 0;

    while remaining > 0 {
        let mut progressed = false;
        for &i in &order {
            if scheduled[i] {
                continue;
            }
            // earliest start by dependences
            let mut earliest = 0;
            let mut ready = true;
            for &(p, _) in &cdfg.nodes[i].preds {
                if !scheduled[p] {
                    ready = false;
                    break;
                }
                earliest = earliest.max(start[p] + costs.latency[p]);
            }
            if !ready {
                continue;
            }
            // find the first cycle satisfying resource constraints
            let mut t = earliest;
            loop {
                let mut ok = true;
                if let Some(buffer) = costs.memory_buffer[i] {
                    let used = port_use.get(&(t, buffer)).copied().unwrap_or(0);
                    if used >= constraints.ports_per_buffer {
                        ok = false;
                    }
                }
                if ok && costs.uses_dsp[i] {
                    if let Some(limit) = constraints.dsp_issues_per_cycle {
                        if dsp_use.get(&t).copied().unwrap_or(0) >= limit {
                            ok = false;
                        }
                    }
                }
                if ok {
                    break;
                }
                t += 1;
            }
            start[i] = t;
            scheduled[i] = true;
            remaining -= 1;
            progressed = true;
            if let Some(buffer) = costs.memory_buffer[i] {
                *port_use.entry((t, buffer)).or_insert(0) += 1;
            }
            if costs.uses_dsp[i] {
                *dsp_use.entry(t).or_insert(0) += 1;
            }
            length = length.max(t + costs.latency[i]);
        }
        assert!(progressed, "list scheduling must make progress (cycle?)");
    }
    Schedule { start, length }
}

/// Estimates the number of functional units needed per operation kind:
/// the maximum number of simultaneously executing instances.
pub fn bind_units(
    cdfg: &BlockCdfg,
    costs: &NodeCosts,
    schedule: &Schedule,
) -> HashMap<String, u64> {
    // Sweep events: +1 at start, -1 at end per kind. Keyed on the
    // interned name while sweeping (no clone per node); rendered to
    // `String` only once per kind for the stable public result.
    let mut events: HashMap<everest_ir::Symbol, Vec<(u64, i64)>> = HashMap::new();
    for (i, node) in cdfg.nodes.iter().enumerate() {
        if costs.latency[i] == 0 {
            continue;
        }
        let e = events.entry(node.name).or_default();
        e.push((schedule.start[i], 1));
        e.push((schedule.start[i] + costs.latency[i], -1));
    }
    let mut result = HashMap::new();
    for (kind, mut evs) in events {
        evs.sort();
        let mut current = 0i64;
        let mut peak = 0i64;
        for (_, delta) in evs {
            current += delta;
            peak = peak.max(current);
        }
        result.insert(kind.to_string(), peak as u64);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::dialects::core::{alloc, binary, const_f64};
    use everest_ir::module::Module;
    use everest_ir::types::{MemorySpace, Type};

    /// Builds: 4 independent loads from one buffer feeding an add tree.
    fn load_tree(module: &mut Module) -> (everest_ir::BlockId, ValueId) {
        let top = module.top_block();
        let buf = alloc(module, top, Type::memref(&[8], Type::F64, MemorySpace::Plm));
        let mut leaves = Vec::new();
        for k in 0..4 {
            let i = everest_ir::dialects::core::const_index(module, top, k);
            let l = module
                .build_op("memref.load", [buf, i], [Type::F64])
                .append_to(top);
            leaves.push(everest_ir::module::single_result(module, l));
        }
        let a = binary(module, top, "arith.addf", leaves[0], leaves[1]);
        let b = binary(module, top, "arith.addf", leaves[2], leaves[3]);
        let _r = binary(module, top, "arith.addf", a, b);
        (top, buf)
    }

    fn costs_for(module: &Module, cdfg: &BlockCdfg) -> NodeCosts {
        let lib = crate::resources::CostLibrary::default();
        let mut latency = Vec::new();
        let mut memory_buffer = Vec::new();
        let mut uses_dsp = Vec::new();
        for node in &cdfg.nodes {
            let op = module.op(node.op).unwrap();
            let cost = lib.op_cost(
                &node.name,
                op.results.first().map(|&r| module.value_type(r)),
                crate::resources::NumericFormat::F64,
            );
            latency.push(cost.latency as u64);
            memory_buffer.push(match node.name.as_str() {
                "memref.load" => Some(op.operands[0]),
                "memref.store" => Some(op.operands[1]),
                _ => None,
            });
            uses_dsp.push(cost.area.dsps > 0);
        }
        NodeCosts {
            latency,
            memory_buffer,
            uses_dsp,
        }
    }

    #[test]
    fn asap_respects_dependences() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = const_f64(&mut m, top, 1.0);
        let b = const_f64(&mut m, top, 2.0);
        let s = binary(&mut m, top, "arith.addf", a, b);
        let _p = binary(&mut m, top, "arith.mulf", s, s);
        let cdfg = BlockCdfg::build(&m, top);
        let costs = costs_for(&m, &cdfg);
        let sched = asap(&cdfg, &costs);
        // constants at 0, add at 0 (constants are latency 0), mul at 7
        assert_eq!(sched.start[2], 0);
        assert_eq!(sched.start[3], 7);
        assert_eq!(sched.length, 15);
    }

    #[test]
    fn alap_pushes_ops_late() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = const_f64(&mut m, top, 1.0);
        let b = const_f64(&mut m, top, 2.0);
        let _s = binary(&mut m, top, "arith.addf", a, b);
        let cdfg = BlockCdfg::build(&m, top);
        let costs = costs_for(&m, &cdfg);
        let sched = alap(&cdfg, &costs, 20);
        assert_eq!(sched.start[2], 13); // 20 - 7
    }

    #[test]
    fn port_constraints_serialize_loads() {
        let mut m = Module::new();
        let (top, _buf) = load_tree(&mut m);
        let cdfg = BlockCdfg::build(&m, top);
        let costs = costs_for(&m, &cdfg);

        let unconstrained = list_schedule(
            &cdfg,
            &costs,
            Constraints {
                ports_per_buffer: 4,
                dsp_issues_per_cycle: None,
            },
        );
        let constrained = list_schedule(
            &cdfg,
            &costs,
            Constraints {
                ports_per_buffer: 1,
                dsp_issues_per_cycle: None,
            },
        );
        assert!(
            constrained.length > unconstrained.length,
            "1 port ({}) must be slower than 4 ports ({})",
            constrained.length,
            unconstrained.length
        );
    }

    #[test]
    fn list_schedule_never_violates_dependences() {
        let mut m = Module::new();
        let (top, _buf) = load_tree(&mut m);
        let cdfg = BlockCdfg::build(&m, top);
        let costs = costs_for(&m, &cdfg);
        let sched = list_schedule(&cdfg, &costs, Constraints::default());
        for (i, node) in cdfg.nodes.iter().enumerate() {
            for &(p, _) in &node.preds {
                assert!(
                    sched.start[i] >= sched.start[p] + costs.latency[p],
                    "node {i} starts before its dependence {p} finishes"
                );
            }
        }
    }

    #[test]
    fn binding_counts_peak_concurrency() {
        let mut m = Module::new();
        let (top, _buf) = load_tree(&mut m);
        let cdfg = BlockCdfg::build(&m, top);
        let costs = costs_for(&m, &cdfg);
        let sched = asap(&cdfg, &costs);
        let units = bind_units(&cdfg, &costs, &sched);
        // the two first-level adds run concurrently; the third is serial
        assert_eq!(units.get("arith.addf").copied(), Some(2));
    }

    #[test]
    fn empty_block_schedules_to_zero() {
        let m = Module::new();
        let cdfg = BlockCdfg::build(&m, m.top_block());
        let costs = NodeCosts {
            latency: vec![],
            memory_buffer: vec![],
            uses_dsp: vec![],
        };
        let sched = list_schedule(&cdfg, &costs, Constraints::default());
        assert_eq!(sched.length, 0);
    }
}
