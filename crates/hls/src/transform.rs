//! HLS code transformations on loop-level IR: loop unrolling.
//!
//! Unrolling is the optimization the paper cites as the "standard
//! pattern" hardware experts apply by hand (§I); here it is a verified
//! IR-to-IR transform — the unrolled module is checked against the
//! original by interpretation in the test suite.

use everest_ir::attr::Attribute;
use everest_ir::module::{single_result, Module, ValueDef};
use everest_ir::types::Type;
use everest_ir::{IrError, IrResult, OpId, ValueId};

/// Returns the constant integer feeding `value`, if any.
fn const_operand(module: &Module, value: ValueId) -> Option<i64> {
    match module.value(value).def {
        ValueDef::OpResult { op, .. } => {
            let operation = module.op(op)?;
            if operation.name == "arith.constant" {
                operation.attr("value").and_then(Attribute::as_int)
            } else {
                None
            }
        }
        ValueDef::BlockArg { .. } => None,
    }
}

/// Trip count of an `scf.for` with constant bounds.
pub fn trip_count(module: &Module, for_op: OpId) -> Option<u64> {
    let operation = module.op(for_op)?;
    if operation.name != "scf.for" {
        return None;
    }
    let lb = const_operand(module, operation.operands[0])?;
    let ub = const_operand(module, operation.operands[1])?;
    let step = const_operand(module, operation.operands[2])?;
    if step <= 0 || ub < lb {
        return None;
    }
    Some(((ub - lb) as u64).div_ceil(step as u64))
}

/// Whether a loop body contains no nested loops.
pub fn is_innermost(module: &Module, for_op: OpId) -> bool {
    module
        .walk_nested(for_op)
        .iter()
        .all(|&op| module.op(op).is_none_or(|o| o.name != "scf.for"))
}

/// Unrolls every innermost loop in `func` by `factor`.
///
/// Only loops with constant bounds whose trip count is divisible by the
/// factor and whose bodies carry no iteration arguments are transformed;
/// others are left untouched. Returns the number of loops unrolled.
///
/// # Errors
///
/// Returns [`IrError`] if the function does not exist.
pub fn unroll_innermost(module: &mut Module, func: &str, factor: u32) -> IrResult<usize> {
    if factor <= 1 {
        return Ok(0);
    }
    let func_op = module
        .lookup_symbol(func)
        .ok_or_else(|| IrError::InvalidId(format!("no function '{func}'")))?;
    let loops: Vec<OpId> = module
        .walk_nested(func_op)
        .into_iter()
        .filter(|&op| {
            module.op(op).is_some_and(|o| o.name == "scf.for")
                && is_innermost(module, op)
                && module
                    .op(op)
                    .is_some_and(|o| o.operands.len() == 3 && o.results.is_empty())
        })
        .collect();

    let mut unrolled = 0;
    for for_op in loops {
        let Some(trip) = trip_count(module, for_op) else {
            continue;
        };
        if trip % factor as u64 != 0 || trip == 0 {
            continue;
        }
        unroll_one(module, for_op, factor)?;
        unrolled += 1;
    }
    Ok(unrolled)
}

fn unroll_one(module: &mut Module, for_op: OpId, factor: u32) -> IrResult<()> {
    let operation = module
        .op(for_op)
        .ok_or_else(|| IrError::InvalidId("loop erased".into()))?;
    let old_step_value = operation.operands[2];
    let step = const_operand(module, old_step_value)
        .ok_or_else(|| IrError::Malformed("non-constant step".into()))?;
    let region = operation.regions[0];
    let body = module.region(region).blocks[0];
    let iv = module.block(body).args[0];

    // New step constant placed right before the loop.
    let new_step_op = module
        .build_op("arith.constant", [], [Type::Index])
        .attr("value", Attribute::Int(step * factor as i64))
        .detached();
    module.insert_op_before(for_op, new_step_op);
    let new_step = single_result(module, new_step_op);
    module.op_mut(for_op).expect("loop is live").operands[2] = new_step;

    // Original body ops, minus the terminator.
    let body_ops: Vec<OpId> = module.block(body).ops.clone();
    let (&terminator, originals) = body_ops
        .split_last()
        .ok_or_else(|| IrError::Malformed("loop body has no terminator".into()))?;

    for k in 1..factor {
        // iv_k = iv + k*step
        let offset_op = module
            .build_op("arith.constant", [], [Type::Index])
            .attr("value", Attribute::Int(k as i64 * step))
            .detached();
        module.insert_op_before(terminator, offset_op);
        let offset = single_result(module, offset_op);
        let iv_k_op = module
            .build_op("arith.addi", [iv, offset], [Type::Index])
            .detached();
        module.insert_op_before(terminator, iv_k_op);
        let iv_k = single_result(module, iv_k_op);

        // Clone each original op, remapping iv and intra-body results.
        let mut remap: std::collections::HashMap<ValueId, ValueId> =
            std::collections::HashMap::new();
        remap.insert(iv, iv_k);
        for &op in originals {
            let original = module
                .op(op)
                .ok_or_else(|| IrError::InvalidId("body op erased".into()))?
                .clone();
            let operands: Vec<ValueId> = original
                .operands
                .iter()
                .map(|v| remap.get(v).copied().unwrap_or(*v))
                .collect();
            let result_types: Vec<Type> = original
                .results
                .iter()
                .map(|&r| module.value_type(r).clone())
                .collect();
            if !original.regions.is_empty() {
                return Err(IrError::Malformed(
                    "cannot unroll a loop containing region ops".into(),
                ));
            }
            let clone = module.create_op(
                original.name,
                operands,
                result_types,
                original.attributes.clone(),
                0,
            );
            module.insert_op_before(terminator, clone);
            let new_results = module.op(clone).expect("just created").results.clone();
            for (old, new) in original.results.iter().zip(new_results) {
                remap.insert(*old, new);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::dialects::core::{binary, build_for, build_func, const_index};
    use everest_ir::interp::{Buffer, Interpreter, Value};
    use everest_ir::registry::Context;
    use everest_ir::verify::verify_module;

    /// Builds `fn scale(a: memref<16xf64>) { for i in 0..16 { a[i] *= 2 } }`.
    fn scale_module() -> Module {
        let mut m = Module::new();
        let top = m.top_block();
        let ty = Type::memref(&[16], Type::F64, everest_ir::MemorySpace::Device);
        let (_f, entry) = build_func(&mut m, top, "scale", &[ty], &[]);
        let a = m.block(entry).args[0];
        let lb = const_index(&mut m, entry, 0);
        let ub = const_index(&mut m, entry, 16);
        let step = const_index(&mut m, entry, 1);
        let (_l, body) = build_for(&mut m, entry, lb, ub, step);
        let iv = m.block(body).args[0];
        let load = m
            .build_op("memref.load", [a, iv], [Type::F64])
            .append_to(body);
        let lv = single_result(&m, load);
        let two = everest_ir::dialects::core::const_f64(&mut m, body, 2.0);
        let doubled = binary(&mut m, body, "arith.mulf", lv, two);
        m.build_op("memref.store", [doubled, a, iv], [])
            .append_to(body);
        m.build_op("scf.yield", [], []).append_to(body);
        m.build_op("func.return", [], []).append_to(entry);
        m
    }

    fn run_scale(m: &Module) -> Vec<f64> {
        let mut interp = Interpreter::new();
        let data: Vec<f64> = (0..16).map(|v| v as f64).collect();
        let buf = interp.alloc_buffer(Buffer::from_data(&[16], data));
        interp
            .run_function(m, "scale", std::slice::from_ref(&buf))
            .unwrap();
        let Value::Buffer(h) = buf else {
            unreachable!()
        };
        interp.buffer(h).data.clone()
    }

    #[test]
    fn unrolled_module_computes_identical_results() {
        let reference = run_scale(&scale_module());
        for factor in [2, 4, 8, 16] {
            let mut m = scale_module();
            let n = unroll_innermost(&mut m, "scale", factor).unwrap();
            assert_eq!(n, 1, "one loop unrolled at factor {factor}");
            verify_module(&Context::with_all_dialects(), &m).unwrap();
            assert_eq!(
                run_scale(&m),
                reference,
                "unroll by {factor} must preserve semantics"
            );
        }
    }

    #[test]
    fn unroll_reduces_iterations_and_grows_body() {
        let mut m = scale_module();
        let loop_op = m.find_op("scf.for").unwrap();
        let body_before = {
            let region = m.op(loop_op).unwrap().regions[0];
            let body = m.region(region).blocks[0];
            m.block(body).ops.len()
        };
        unroll_innermost(&mut m, "scale", 4).unwrap();
        assert_eq!(trip_count(&m, loop_op), Some(4)); // 16 / 4
        let region = m.op(loop_op).unwrap().regions[0];
        let body = m.region(region).blocks[0];
        assert!(m.block(body).ops.len() > 3 * body_before);
    }

    #[test]
    fn non_divisible_factor_is_skipped() {
        let mut m = scale_module();
        let n = unroll_innermost(&mut m, "scale", 3).unwrap();
        assert_eq!(n, 0, "16 % 3 != 0, loop must be left untouched");
        assert_eq!(run_scale(&m), run_scale(&scale_module()));
    }

    #[test]
    fn factor_one_is_a_noop() {
        let mut m = scale_module();
        assert_eq!(unroll_innermost(&mut m, "scale", 1).unwrap(), 0);
    }

    #[test]
    fn trip_count_computation() {
        let m = scale_module();
        let loop_op = m.find_op("scf.for").unwrap();
        assert_eq!(trip_count(&m, loop_op), Some(16));
        assert!(is_innermost(&m, loop_op));
    }

    #[test]
    fn missing_function_errors() {
        let mut m = Module::new();
        assert!(unroll_innermost(&mut m, "ghost", 2).is_err());
    }
}
