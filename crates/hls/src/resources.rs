//! Functional-unit cost library.
//!
//! Latency and area figures follow the shape of Vitis HLS / Bambu
//! characterizations on UltraScale+ parts: double-precision floating
//! point is deeply pipelined and DSP-hungry; narrow fixed-point collapses
//! to single-cycle LUT logic; posits sit in between (decode/encode adds
//! LUT cost but keeps DSP usage at the multiplier core). Absolute numbers
//! are calibrated to be *relatively* faithful — the experiments compare
//! configurations, not vendor reports.

use everest_ir::types::{FixedFormat, PositFormat, Type};

/// The numeric format a kernel's floating-point arithmetic is mapped to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericFormat {
    /// IEEE binary32.
    F32,
    /// IEEE binary64.
    F64,
    /// Fixed point.
    Fixed(FixedFormat),
    /// Posit.
    Posit(PositFormat),
}

impl NumericFormat {
    /// Storage width in bits.
    pub fn width(&self) -> u32 {
        match self {
            NumericFormat::F32 => 32,
            NumericFormat::F64 => 64,
            NumericFormat::Fixed(f) => f.width(),
            NumericFormat::Posit(p) => p.width,
        }
    }
}

/// FPGA resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP slices.
    pub dsps: u64,
    /// 18 Kb BRAM halves.
    pub brams: u64,
}

// Component-wise resource sums are not ring arithmetic; `add` stays an
// inherent method.
#[allow(clippy::should_implement_trait)]
impl Resources {
    /// Component-wise sum.
    pub fn add(self, other: Resources) -> Resources {
        Resources {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            dsps: self.dsps + other.dsps,
            brams: self.brams + other.brams,
        }
    }

    /// Component-wise scaling.
    pub fn scale(self, k: u64) -> Resources {
        Resources {
            luts: self.luts * k,
            ffs: self.ffs * k,
            dsps: self.dsps * k,
            brams: self.brams * k,
        }
    }

    /// Whether this fits within a budget.
    pub fn fits_in(&self, budget: &Resources) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.dsps <= budget.dsps
            && self.brams <= budget.brams
    }
}

/// Cost of one operation instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Cycles from operand issue to result.
    pub latency: u32,
    /// Cycles between successive issues to the same unit (1 = fully
    /// pipelined).
    pub initiation_interval: u32,
    /// Area of one functional unit.
    pub area: Resources,
}

impl OpCost {
    fn new(latency: u32, ii: u32, luts: u64, ffs: u64, dsps: u64) -> Self {
        OpCost {
            latency,
            initiation_interval: ii,
            area: Resources {
                luts,
                ffs,
                dsps,
                brams: 0,
            },
        }
    }
}

/// The cost library: maps ops (under a numeric format) to costs.
#[derive(Debug, Clone)]
pub struct CostLibrary {
    /// Target clock period in nanoseconds.
    pub clock_ns: f64,
    /// Read/write ports per PLM bank.
    pub plm_ports_per_bank: u32,
}

impl Default for CostLibrary {
    fn default() -> Self {
        CostLibrary {
            clock_ns: 3.33, // 300 MHz, typical for Alveo HLS kernels
            plm_ports_per_bank: 2,
        }
    }
}

impl CostLibrary {
    /// Cost of a floating/fixed arithmetic op in the given format.
    pub fn arith_cost(&self, op: &str, format: NumericFormat) -> OpCost {
        match format {
            NumericFormat::F64 => match op {
                "addf" | "subf" | "maxf" | "minf" => OpCost::new(7, 1, 800, 1200, 3),
                "mulf" => OpCost::new(8, 1, 300, 800, 11),
                "divf" => OpCost::new(30, 16, 3000, 3500, 0),
                "sqrt" => OpCost::new(28, 14, 2800, 3200, 0),
                "exp" | "log" => OpCost::new(24, 4, 4000, 4500, 26),
                "negf" | "absf" => OpCost::new(1, 1, 70, 70, 0),
                "cmpf" => OpCost::new(2, 1, 120, 100, 0),
                _ => OpCost::new(1, 1, 64, 64, 0),
            },
            NumericFormat::F32 => match op {
                "addf" | "subf" | "maxf" | "minf" => OpCost::new(5, 1, 400, 600, 2),
                "mulf" => OpCost::new(4, 1, 150, 300, 3),
                "divf" => OpCost::new(16, 8, 800, 900, 0),
                "sqrt" => OpCost::new(14, 7, 600, 700, 0),
                "exp" | "log" => OpCost::new(16, 2, 1800, 2000, 7),
                "negf" | "absf" => OpCost::new(1, 1, 40, 40, 0),
                "cmpf" => OpCost::new(1, 1, 66, 60, 0),
                _ => OpCost::new(1, 1, 32, 32, 0),
            },
            NumericFormat::Fixed(f) => {
                let w = f.width() as u64;
                match op {
                    "addf" | "subf" | "maxf" | "minf" | "negf" | "absf" | "cmpf" => {
                        OpCost::new(1, 1, w, w, 0)
                    }
                    "mulf" => {
                        // one DSP per 18x27 tile
                        let dsps = w.div_ceil(18).max(1);
                        OpCost::new(2, 1, w / 2, w, dsps)
                    }
                    "divf" => OpCost::new((f.width() / 2).max(4), 2, 8 * w, 6 * w, 0),
                    "sqrt" => OpCost::new((f.width() / 2).max(4), 2, 6 * w, 5 * w, 0),
                    "exp" | "log" => OpCost::new(6, 1, 20 * w, 10 * w, 1), // LUT-table based
                    _ => OpCost::new(1, 1, w, w, 0),
                }
            }
            NumericFormat::Posit(p) => {
                let w = p.width as u64;
                // decode + core + encode: more LUTs than fixed, fewer DSPs
                // than ieee double.
                match op {
                    "addf" | "subf" | "maxf" | "minf" => OpCost::new(4, 1, 12 * w, 8 * w, 0),
                    "mulf" => {
                        let dsps = w.div_ceil(18).max(1);
                        OpCost::new(5, 1, 10 * w, 8 * w, dsps)
                    }
                    "divf" => OpCost::new(p.width.max(8), 4, 24 * w, 16 * w, 0),
                    "sqrt" => OpCost::new(p.width.max(8), 4, 20 * w, 14 * w, 0),
                    "exp" | "log" => OpCost::new(10, 2, 30 * w, 16 * w, 1),
                    "negf" | "absf" | "cmpf" => OpCost::new(1, 1, 2 * w, w, 0),
                    _ => OpCost::new(1, 1, 2 * w, w, 0),
                }
            }
        }
    }

    /// Cost of an op given its fully qualified name and result type.
    ///
    /// `format` overrides the float format for `arith` float ops (the
    /// custom-data-format experiments re-map f64 kernels to base2 types).
    pub fn op_cost(&self, name: &str, result_ty: Option<&Type>, format: NumericFormat) -> OpCost {
        let (dialect, op) = name.split_once('.').unwrap_or(("", name));
        match (dialect, op) {
            ("arith", "constant") => OpCost::new(0, 1, 0, 0, 0),
            (
                "arith",
                "addf" | "subf" | "mulf" | "divf" | "maxf" | "minf" | "negf" | "absf" | "sqrt"
                | "exp" | "log" | "cmpf",
            ) => self.arith_cost(op, format),
            ("arith", "addi" | "subi" | "andi" | "ori" | "xori" | "cmpi" | "index_cast") => {
                OpCost::new(1, 1, 64, 64, 0)
            }
            ("arith", "muli") => OpCost::new(2, 1, 100, 100, 2),
            ("arith", "divsi" | "remsi") => OpCost::new(18, 4, 1200, 1000, 0),
            ("arith", "select") => OpCost::new(1, 1, 64, 64, 0),
            ("arith", "sitofp" | "fptosi" | "extf" | "truncf") => OpCost::new(3, 1, 200, 250, 0),
            ("base2", "quantize" | "dequantize" | "convert") => OpCost::new(2, 1, 150, 150, 0),
            ("base2", "add" | "sub") => self.arith_cost("addf", format),
            ("base2", "mul") => self.arith_cost("mulf", format),
            ("base2", "div") => self.arith_cost("divf", format),
            ("memref", "load") => OpCost::new(2, 1, 30, 40, 0),
            ("memref", "store") => OpCost::new(1, 1, 20, 20, 0),
            ("memref", "alloc") => {
                // PLM storage: BRAM count from capacity.
                let brams = result_ty.map_or(0, Self::bram_cost);
                OpCost {
                    latency: 0,
                    initiation_interval: 1,
                    area: Resources {
                        luts: 0,
                        ffs: 0,
                        dsps: 0,
                        brams,
                    },
                }
            }
            ("memref", "copy") => OpCost::new(1, 1, 50, 50, 0),
            ("scf", _) | ("func", _) | ("builtin", _) => OpCost::new(0, 1, 0, 0, 0),
            ("bit", _) | ("cyclic", _) | ("ub", _) => OpCost::new(1, 1, 32, 32, 0),
            _ => OpCost::new(1, 1, 64, 64, 0),
        }
    }

    /// 18 Kb BRAM halves needed to store a shaped type.
    pub fn bram_cost(ty: &Type) -> u64 {
        let Some(elements) = ty.num_elements() else {
            return 0;
        };
        let width = ty.elem().and_then(Type::bit_width).unwrap_or(64) as u64;
        let bits = elements * width;
        bits.div_ceil(18 * 1024).max(1)
    }

    /// Achievable clock frequency in MHz.
    pub fn fmax_mhz(&self) -> f64 {
        1000.0 / self.clock_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_ops_are_expensive_fixed_ops_cheap() {
        let lib = CostLibrary::default();
        let f64_mul = lib.arith_cost("mulf", NumericFormat::F64);
        let fx16_mul = lib.arith_cost("mulf", NumericFormat::Fixed(FixedFormat::signed(7, 8)));
        assert!(f64_mul.latency > fx16_mul.latency);
        assert!(f64_mul.area.dsps > fx16_mul.area.dsps);
        let fx_add = lib.arith_cost("addf", NumericFormat::Fixed(FixedFormat::signed(7, 8)));
        assert_eq!(fx_add.latency, 1);
        assert_eq!(fx_add.area.dsps, 0);
    }

    #[test]
    fn posit_sits_between_fixed_and_double_in_luts() {
        let lib = CostLibrary::default();
        let fixed = lib
            .arith_cost("addf", NumericFormat::Fixed(FixedFormat::signed(15, 16)))
            .area
            .luts;
        let posit = lib
            .arith_cost("addf", NumericFormat::Posit(PositFormat::new(32, 2)))
            .area
            .luts;
        let double = lib.arith_cost("addf", NumericFormat::F64).area.luts;
        assert!(fixed < posit, "fixed {fixed} < posit {posit}");
        assert!(posit < double, "posit {posit} < double {double}");
    }

    #[test]
    fn bram_cost_scales_with_capacity() {
        let small = Type::memref(&[128], Type::F32, everest_ir::MemorySpace::Plm);
        let large = Type::memref(&[16384], Type::F64, everest_ir::MemorySpace::Plm);
        assert_eq!(CostLibrary::bram_cost(&small), 1);
        assert!(CostLibrary::bram_cost(&large) > 32);
    }

    #[test]
    fn resources_arithmetic() {
        let a = Resources {
            luts: 10,
            ffs: 20,
            dsps: 1,
            brams: 2,
        };
        let b = a.add(a).scale(2);
        assert_eq!(b.luts, 40);
        assert_eq!(b.dsps, 4);
        assert!(a.fits_in(&b));
        assert!(!b.fits_in(&a));
    }

    #[test]
    fn division_is_not_fully_pipelined_in_double() {
        let lib = CostLibrary::default();
        let div = lib.arith_cost("divf", NumericFormat::F64);
        assert!(div.initiation_interval > 1);
    }

    #[test]
    fn op_cost_dispatches_by_dialect() {
        let lib = CostLibrary::default();
        assert_eq!(
            lib.op_cost("arith.constant", None, NumericFormat::F64)
                .latency,
            0
        );
        assert!(lib.op_cost("arith.divsi", None, NumericFormat::F64).latency > 10);
        assert_eq!(
            lib.op_cost("memref.load", None, NumericFormat::F64).latency,
            2
        );
        let alloc_ty = Type::memref(&[1024], Type::F64, everest_ir::MemorySpace::Plm);
        let alloc = lib.op_cost("memref.alloc", Some(&alloc_ty), NumericFormat::F64);
        assert!(alloc.area.brams >= 4);
    }
}
