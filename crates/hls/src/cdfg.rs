//! Control/data-flow graph construction from loop-level IR.
//!
//! For each block the CDFG captures, per operation: SSA data dependences,
//! memory dependences (conservative: stores order against loads and
//! stores on the same buffer), and nesting (loop ops are macro-nodes
//! whose cost is computed recursively by the scheduler).

use std::collections::HashMap;

use everest_ir::module::{Module, ValueDef};
use everest_ir::{BlockId, OpId, ValueId};

/// A dependence edge kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// SSA value flow.
    Data,
    /// Memory ordering (store→load, store→store, load→store on one
    /// buffer).
    Memory,
}

/// A node in a block-level dependence graph.
#[derive(Debug, Clone)]
pub struct CdfgNode {
    /// The IR operation.
    pub op: OpId,
    /// Fully qualified op name (cached, interned — `Copy`, no clone).
    pub name: everest_ir::Symbol,
    /// Predecessors: `(node index, kind)`.
    pub preds: Vec<(usize, DepKind)>,
}

/// The dependence graph of one block.
#[derive(Debug, Clone)]
pub struct BlockCdfg {
    /// The block.
    pub block: BlockId,
    /// Nodes in program order (a valid topological order).
    pub nodes: Vec<CdfgNode>,
}

impl BlockCdfg {
    /// Builds the dependence graph of a block.
    pub fn build(module: &Module, block: BlockId) -> BlockCdfg {
        let ops = module.block(block).ops.clone();
        let index_of: HashMap<OpId, usize> =
            ops.iter().enumerate().map(|(i, &op)| (op, i)).collect();

        // Root buffer a value refers to (walk through nothing for now —
        // buffers are produced by allocs or block args).
        let buffer_root = |v: ValueId| -> ValueId { v };

        let mut nodes: Vec<CdfgNode> = Vec::with_capacity(ops.len());
        // buffer -> (last store node, loads since that store)
        let mut last_store: HashMap<ValueId, usize> = HashMap::new();
        let mut loads_since: HashMap<ValueId, Vec<usize>> = HashMap::new();

        for (i, &op) in ops.iter().enumerate() {
            let operation = module.op(op).expect("live op");
            let mut preds: Vec<(usize, DepKind)> = Vec::new();
            for &operand in &operation.operands {
                if let ValueDef::OpResult { op: def, .. } = module.value(operand).def {
                    if let Some(&j) = index_of.get(&def) {
                        if !preds.contains(&(j, DepKind::Data)) {
                            preds.push((j, DepKind::Data));
                        }
                    }
                }
            }
            match operation.name.as_str() {
                "memref.load" => {
                    let buf = buffer_root(operation.operands[0]);
                    if let Some(&s) = last_store.get(&buf) {
                        if !preds.contains(&(s, DepKind::Memory)) {
                            preds.push((s, DepKind::Memory));
                        }
                    }
                    loads_since.entry(buf).or_default().push(i);
                }
                "memref.store" => {
                    let buf = buffer_root(operation.operands[1]);
                    if let Some(&s) = last_store.get(&buf) {
                        preds.push((s, DepKind::Memory));
                    }
                    for &l in loads_since.get(&buf).map(Vec::as_slice).unwrap_or(&[]) {
                        if !preds.contains(&(l, DepKind::Memory)) {
                            preds.push((l, DepKind::Memory));
                        }
                    }
                    last_store.insert(buf, i);
                    loads_since.insert(buf, Vec::new());
                }
                "memref.copy" => {
                    // copy reads operand 0, writes operand 1
                    let src = buffer_root(operation.operands[0]);
                    let dst = buffer_root(operation.operands[1]);
                    if let Some(&s) = last_store.get(&src) {
                        preds.push((s, DepKind::Memory));
                    }
                    if let Some(&s) = last_store.get(&dst) {
                        if !preds.contains(&(s, DepKind::Memory)) {
                            preds.push((s, DepKind::Memory));
                        }
                    }
                    last_store.insert(dst, i);
                    loads_since.insert(dst, Vec::new());
                }
                _ => {
                    // Ops with regions (loops, ifs) conservatively order
                    // against all outstanding memory state: their bodies
                    // may touch any buffer.
                    if !operation.regions.is_empty() {
                        for (&_buf, &s) in &last_store {
                            if !preds.contains(&(s, DepKind::Memory)) {
                                preds.push((s, DepKind::Memory));
                            }
                        }
                        for (buf, ls) in &loads_since {
                            let _ = buf;
                            for &l in ls {
                                if !preds.contains(&(l, DepKind::Memory)) {
                                    preds.push((l, DepKind::Memory));
                                }
                            }
                        }
                        // And everything after orders against the loop:
                        // model by marking the loop as a store to a
                        // synthetic "world" buffer.
                        let world = ValueId::from_raw(u32::MAX);
                        if let Some(&s) = last_store.get(&world) {
                            if !preds.contains(&(s, DepKind::Memory)) {
                                preds.push((s, DepKind::Memory));
                            }
                        }
                        last_store.insert(world, i);
                        // A region op invalidates load tracking.
                        loads_since.clear();
                    } else {
                        let world = ValueId::from_raw(u32::MAX);
                        if let Some(&s) = last_store.get(&world) {
                            let _ = s;
                        }
                    }
                }
            }
            nodes.push(CdfgNode {
                op,
                name: operation.name,
                preds,
            });
        }
        BlockCdfg { block, nodes }
    }

    /// Successor lists (inverse of `preds`).
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut succs = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &(p, _) in &node.preds {
                succs[p].push(i);
            }
        }
        succs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::dialects::core::{alloc, binary, const_f64, const_index};
    use everest_ir::types::{MemorySpace, Type};

    #[test]
    fn ssa_dependences_tracked() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = const_f64(&mut m, top, 1.0);
        let b = const_f64(&mut m, top, 2.0);
        let _c = binary(&mut m, top, "arith.addf", a, b);
        let g = BlockCdfg::build(&m, top);
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(
            g.nodes[2].preds,
            vec![(0, DepKind::Data), (1, DepKind::Data)]
        );
    }

    #[test]
    fn store_load_ordering_on_same_buffer() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = alloc(&mut m, top, Type::memref(&[], Type::F64, MemorySpace::Plm));
        let v = const_f64(&mut m, top, 1.0);
        m.build_op("memref.store", [v, buf], []).append_to(top); // node 2
        let load = m.build_op("memref.load", [buf], [Type::F64]).append_to(top); // node 3
        let _ = load;
        let g = BlockCdfg::build(&m, top);
        assert!(
            g.nodes[3].preds.contains(&(2, DepKind::Memory)),
            "load must order after the store: {:?}",
            g.nodes[3].preds
        );
    }

    #[test]
    fn load_store_antidependence() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = alloc(&mut m, top, Type::memref(&[], Type::F64, MemorySpace::Plm));
        let load = m.build_op("memref.load", [buf], [Type::F64]).append_to(top); // node 1
        let lv = everest_ir::module::single_result(&m, load);
        m.build_op("memref.store", [lv, buf], []).append_to(top); // node 2
        let g = BlockCdfg::build(&m, top);
        // store depends on load both via data and memory
        assert!(g.nodes[2].preds.contains(&(1, DepKind::Data)));
        assert!(g.nodes[2].preds.contains(&(1, DepKind::Memory)));
    }

    #[test]
    fn independent_buffers_do_not_order() {
        let mut m = Module::new();
        let top = m.top_block();
        let b1 = alloc(&mut m, top, Type::memref(&[], Type::F64, MemorySpace::Plm));
        let b2 = alloc(&mut m, top, Type::memref(&[], Type::F64, MemorySpace::Plm));
        let v = const_f64(&mut m, top, 1.0);
        m.build_op("memref.store", [v, b1], []).append_to(top); // 3
        let load = m.build_op("memref.load", [b2], [Type::F64]).append_to(top); // 4
        let _ = load;
        let g = BlockCdfg::build(&m, top);
        assert!(
            !g.nodes[4].preds.iter().any(|&(p, _)| p == 3),
            "loads from a different buffer must not serialize"
        );
    }

    #[test]
    fn loops_order_against_memory_and_each_other() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = alloc(&mut m, top, Type::memref(&[4], Type::F64, MemorySpace::Plm));
        let _ = buf;
        let lb = const_index(&mut m, top, 0);
        let ub = const_index(&mut m, top, 4);
        let step = const_index(&mut m, top, 1);
        let (l1, body1) = everest_ir::dialects::core::build_for(&mut m, top, lb, ub, step);
        m.build_op("scf.yield", [], []).append_to(body1);
        let (l2, body2) = everest_ir::dialects::core::build_for(&mut m, top, lb, ub, step);
        m.build_op("scf.yield", [], []).append_to(body2);
        let g = BlockCdfg::build(&m, top);
        let i1 = g.nodes.iter().position(|n| n.op == l1).unwrap();
        let i2 = g.nodes.iter().position(|n| n.op == l2).unwrap();
        assert!(
            g.nodes[i2].preds.contains(&(i1, DepKind::Memory)),
            "sibling loops must be ordered: {:?}",
            g.nodes[i2].preds
        );
    }
}
