//! Property tests over the HLS engine: scheduling invariants, unrolling
//! semantics preservation, and monotonicity of the option space.

use proptest::prelude::*;

use everest_ekl::{check::check, lower::lower_to_loops, parser::parse};
use everest_hls::engine::{synthesize, HlsOptions};
use everest_hls::transform::unroll_innermost;
use everest_ir::interp::{Buffer, Interpreter, Value};
use everest_ir::registry::Context;
use everest_ir::verify::verify_module;

/// Builds an elementwise kernel of length `n` with a random expression
/// depth.
fn kernel_source(n: u64, terms: usize) -> String {
    let mut expr = "a[i]".to_string();
    for k in 0..terms {
        let op = ["+", "*", "-"][k % 3];
        expr = format!("({expr} {op} b[i])");
    }
    format!(
        "kernel k {{
           index i : 0..{n}
           input a : [i]
           input b : [i]
           let y[i] = {expr} + 1.0
           output y
         }}"
    )
}

fn run_module(module: &everest_ir::Module, n: u64, a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut interp = Interpreter::new();
    let ab = interp.alloc_buffer(Buffer::from_data(&[n], a.to_vec()));
    let bb = interp.alloc_buffer(Buffer::from_data(&[n], b.to_vec()));
    let out = interp.alloc_buffer(Buffer::zeros(&[n]));
    interp
        .run_function(module, "k", &[ab, bb, out.clone()])
        .expect("runs");
    let Value::Buffer(h) = out else {
        unreachable!()
    };
    interp.buffer(h).data.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unrolling_preserves_semantics_for_random_kernels(
        n_pow in 2u32..7,
        terms in 0usize..5,
        factor_pow in 1u32..4,
        seed in any::<u64>(),
    ) {
        let n = 1u64 << n_pow;
        let factor = 1u32 << factor_pow;
        let source = kernel_source(n, terms);
        let program = check(&parse(&source).expect("parses")).expect("checks");
        let module = lower_to_loops(&program).expect("lowers");

        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        let a: Vec<f64> = (0..n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let reference = run_module(&module, n, &a, &b);

        let mut unrolled = module.clone();
        unroll_innermost(&mut unrolled, "k", factor).expect("unrolls");
        verify_module(&Context::with_all_dialects(), &unrolled).expect("verifies");
        let got = run_module(&unrolled, n, &a, &b);
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn pipelining_never_slows_down(
        n_pow in 3u32..8,
        terms in 0usize..4,
    ) {
        let source = kernel_source(1 << n_pow, terms);
        let program = check(&parse(&source).expect("parses")).expect("checks");
        let module = lower_to_loops(&program).expect("lowers");
        let base = synthesize(&module, "k", HlsOptions { pipeline: false, ..HlsOptions::default() })
            .expect("synthesizes");
        let piped = synthesize(&module, "k", HlsOptions { pipeline: true, ..HlsOptions::default() })
            .expect("synthesizes");
        prop_assert!(piped.cycles <= base.cycles,
            "pipelining must not regress: {} vs {}", piped.cycles, base.cycles);
    }

    #[test]
    fn more_partitioning_never_slows_down(
        n_pow in 4u32..8,
        terms in 0usize..4,
    ) {
        let source = kernel_source(1 << n_pow, terms);
        let program = check(&parse(&source).expect("parses")).expect("checks");
        let module = lower_to_loops(&program).expect("lowers");
        let p1 = synthesize(&module, "k", HlsOptions { partition: 1, ..HlsOptions::default() })
            .expect("synthesizes");
        let p4 = synthesize(&module, "k", HlsOptions { partition: 4, ..HlsOptions::default() })
            .expect("synthesizes");
        prop_assert!(p4.cycles <= p1.cycles);
    }

    #[test]
    fn area_is_positive_and_reports_consistent(
        n_pow in 3u32..7,
        terms in 1usize..5,
        unroll_pow in 0u32..3,
    ) {
        let source = kernel_source(1 << n_pow, terms);
        let program = check(&parse(&source).expect("parses")).expect("checks");
        let module = lower_to_loops(&program).expect("lowers");
        let report = synthesize(
            &module,
            "k",
            HlsOptions { unroll: 1 << unroll_pow, partition: 2, ..HlsOptions::default() },
        )
        .expect("synthesizes");
        prop_assert!(report.cycles > 0);
        prop_assert!(report.area.luts > 0);
        prop_assert!(report.area.brams > 0, "buffers must cost BRAM");
        prop_assert!((report.time_us - report.cycles as f64 * 3.33 / 1000.0).abs() < 1e-6);
        // every pipelined loop reports a positive II no larger than its body
        for l in &report.loops {
            prop_assert!(l.ii >= 1);
            if l.pipelined {
                prop_assert!(l.ii <= l.body_cycles.max(1));
            }
        }
    }
}
