//! Property-based tests over the IR core: printer/parser round-trips,
//! canonicalization idempotence, base2 numeric invariants and broadcast
//! shape algebra.

use proptest::prelude::*;

use everest_ir::base2::{Fixed, Posit};
use everest_ir::dialects::core;
use everest_ir::dialects::tensorlang::broadcast_shapes;
use everest_ir::module::Module;
use everest_ir::pass::canonicalization_pipeline;
use everest_ir::print::print_module;
use everest_ir::registry::Context;
use everest_ir::types::{FixedFormat, PositFormat, Type};
use everest_ir::verify::verify_module;

/// Builds a random but well-formed module: a DAG of float arithmetic over
/// a pool of constants, with a store keeping part of it alive.
fn random_module(consts: &[f64], ops: &[(u8, usize, usize)], keep: usize) -> Module {
    let mut m = Module::new();
    let top = m.top_block();
    let mut values: Vec<everest_ir::ValueId> = consts
        .iter()
        .map(|&c| core::const_f64(&mut m, top, c))
        .collect();
    for &(kind, a, b) in ops {
        let lhs = values[a % values.len()];
        let rhs = values[b % values.len()];
        let name = match kind % 5 {
            0 => "arith.addf",
            1 => "arith.subf",
            2 => "arith.mulf",
            3 => "arith.maxf",
            _ => "arith.minf",
        };
        values.push(core::binary(&mut m, top, name, lhs, rhs));
    }
    // Keep one value alive through an impure store.
    let kept = values[keep % values.len()];
    let buf = core::alloc(
        &mut m,
        top,
        Type::memref(&[], Type::F64, everest_ir::MemorySpace::Host),
    );
    m.build_op("memref.store", [kept, buf], []).append_to(top);
    m
}

/// Builds `func @k(%buf: memref<8xf64>)`: a random DAG of float
/// arithmetic over constants and loads from the argument buffer, with a
/// random set of stores writing results back into it. Every observable
/// effect of the function is therefore the final buffer contents.
fn random_function(
    consts: &[f64],
    ops: &[(u8, usize, usize)],
    stores: &[(usize, usize)],
) -> Module {
    let mut m = Module::new();
    let top = m.top_block();
    let buf_ty = Type::memref(&[8], Type::F64, everest_ir::MemorySpace::Host);
    let (_f, body) = core::build_func(&mut m, top, "k", &[buf_ty], &[]);
    let buf = m.block(body).args[0];
    let mut values: Vec<everest_ir::ValueId> = consts
        .iter()
        .map(|&c| core::const_f64(&mut m, body, c))
        .collect();
    // Seed the pool with loads so the DAG depends on runtime input.
    for slot in 0..2 {
        let i = core::const_index(&mut m, body, slot);
        let load = m
            .build_op("memref.load", [buf, i], [Type::F64])
            .append_to(body);
        values.push(everest_ir::module::single_result(&m, load));
    }
    for &(kind, a, b) in ops {
        let lhs = values[a % values.len()];
        let rhs = values[b % values.len()];
        let name = match kind % 5 {
            0 => "arith.addf",
            1 => "arith.subf",
            2 => "arith.mulf",
            3 => "arith.maxf",
            _ => "arith.minf",
        };
        values.push(core::binary(&mut m, body, name, lhs, rhs));
    }
    for &(v, slot) in stores {
        let val = values[v % values.len()];
        let i = core::const_index(&mut m, body, (slot % 8) as i64);
        m.build_op("memref.store", [val, buf, i], [])
            .append_to(body);
    }
    m.build_op("func.return", [], []).append_to(body);
    m
}

/// Runs `@k` on a fresh interpreter over `data`, returning the buffer
/// contents after the call.
fn run_k(module: &Module, data: &[f64]) -> Vec<f64> {
    use everest_ir::interp::{Buffer, Interpreter, Value};
    let mut interp = Interpreter::new();
    let arg = interp.alloc_buffer(Buffer::from_data(&[8], data.to_vec()));
    let Value::Buffer(handle) = arg else {
        unreachable!("alloc_buffer returns a buffer handle");
    };
    interp
        .run_function(module, "k", std::slice::from_ref(&arg))
        .expect("generated function interprets cleanly");
    interp.buffer(handle).data.clone()
}

proptest! {
    #[test]
    fn print_parse_roundtrip_is_fixed_point(
        consts in proptest::collection::vec(-100.0f64..100.0, 1..6),
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 0..12),
        keep in any::<usize>(),
    ) {
        let m = random_module(&consts, &ops, keep);
        let text = print_module(&m);
        let parsed = everest_ir::parse::parse_module(&text).expect("printed IR must parse");
        prop_assert_eq!(print_module(&parsed), text);
    }

    #[test]
    fn random_modules_verify(
        consts in proptest::collection::vec(-100.0f64..100.0, 1..6),
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 0..12),
        keep in any::<usize>(),
    ) {
        let m = random_module(&consts, &ops, keep);
        let ctx = Context::with_all_dialects();
        prop_assert!(verify_module(&ctx, &m).is_ok());
    }

    #[test]
    fn canonicalization_is_idempotent(
        consts in proptest::collection::vec(-100.0f64..100.0, 1..6),
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 0..12),
        keep in any::<usize>(),
    ) {
        let ctx = Context::with_all_dialects();
        let mut m = random_module(&consts, &ops, keep);
        canonicalization_pipeline().run(&ctx, &mut m).expect("pipeline runs");
        let once = print_module(&m);
        canonicalization_pipeline().run(&ctx, &mut m).expect("pipeline runs twice");
        prop_assert_eq!(print_module(&m), once);
    }

    #[test]
    fn canonicalization_preserves_stored_constant(
        consts in proptest::collection::vec(-8.0f64..8.0, 1..5),
        ops in proptest::collection::vec((0u8..3, any::<usize>(), any::<usize>()), 1..8),
        keep in any::<usize>(),
    ) {
        // With only add/sub/mul over constants, the stored value must fold
        // to a single constant equal to the reference evaluation.
        let mut reference: Vec<f64> = consts.clone();
        for &(kind, a, b) in &ops {
            let x = reference[a % reference.len()];
            let y = reference[b % reference.len()];
            reference.push(match kind % 5 {
                0 => x + y,
                1 => x - y,
                2 => x * y,
                3 => x.max(y),
                _ => x.min(y),
            });
        }
        let expected = reference[keep % reference.len()];

        let ctx = Context::with_all_dialects();
        let mut m = random_module(&consts, &ops, keep);
        canonicalization_pipeline().run(&ctx, &mut m).expect("pipeline runs");
        // Find the store; its operand must be a constant with the value.
        let store = m.find_op("memref.store").expect("store survives");
        let v = m.op(store).unwrap().operands[0];
        let everest_ir::module::ValueDef::OpResult { op, .. } = m.value(v).def else {
            panic!("stored value must be an op result");
        };
        let op = m.op(op).unwrap();
        prop_assert_eq!(op.name.as_str(), "arith.constant");
        let got = op.attr("value").unwrap().as_float().unwrap();
        prop_assert!((got - expected).abs() < 1e-9 || (got.is_nan() && expected.is_nan()));
    }

    #[test]
    fn fixed_quantization_error_bounded(v in -120.0f64..120.0) {
        let fmt = FixedFormat::signed(7, 8);
        let err = Fixed::quantization_error(v, fmt);
        prop_assert!(err <= fmt.resolution() / 2.0 + 1e-12,
            "error {err} exceeds half ulp for {v}");
    }

    #[test]
    fn fixed_addition_matches_real_within_ulp(a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let fmt = FixedFormat::signed(7, 8);
        let fa = Fixed::from_f64(a, fmt);
        let fb = Fixed::from_f64(b, fmt);
        let sum = fa.add(fb).to_f64();
        let real = fa.to_f64() + fb.to_f64();
        // In-range additions are exact in fixed point.
        prop_assert!((sum - real).abs() < 1e-12);
    }

    #[test]
    fn fixed_roundtrip_monotone(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let fmt = FixedFormat::signed(7, 8);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let qlo = Fixed::from_f64(lo, fmt).to_f64();
        let qhi = Fixed::from_f64(hi, fmt).to_f64();
        prop_assert!(qlo <= qhi, "quantization must be monotone");
    }

    #[test]
    fn posit_roundtrip_error_bounded_in_normal_range(v in 0.01f64..100.0) {
        let fmt = PositFormat::new(16, 1);
        let err = Posit::roundtrip_error(v, fmt);
        // posit<16,1> has >= 9 fraction bits in this range.
        prop_assert!(err < 4e-3, "posit16 error {err} too large for {v}");
    }

    #[test]
    fn posit_sign_symmetry(v in 0.001f64..1000.0) {
        let fmt = PositFormat::new(16, 1);
        let pos = Posit::from_f64(v, fmt).to_f64();
        let neg = Posit::from_f64(-v, fmt).to_f64();
        prop_assert_eq!(pos, -neg);
    }

    #[test]
    fn posit_decode_encode_is_identity_on_valid_bits(bits in 0u64..65536) {
        let fmt = PositFormat::new(16, 1);
        let p = Posit { raw: bits & 0xFFFF, format: fmt };
        if p.is_nar() {
            return Ok(());
        }
        let decoded = p.to_f64();
        let re = Posit::from_f64(decoded, fmt);
        prop_assert_eq!(re.raw, p.raw,
            "bits {:#06x} decoded to {} re-encoded to {:#06x}", p.raw, decoded, re.raw);
    }

    #[test]
    fn broadcast_is_commutative(
        a in proptest::collection::vec(1u64..5, 0..4),
        b in proptest::collection::vec(1u64..5, 0..4),
    ) {
        let sa: Vec<Option<u64>> = a.iter().map(|&d| Some(d)).collect();
        let sb: Vec<Option<u64>> = b.iter().map(|&d| Some(d)).collect();
        let ab = broadcast_shapes(&sa, &sb);
        let ba = broadcast_shapes(&sb, &sa);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "asymmetric results: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn broadcast_with_self_is_identity(
        a in proptest::collection::vec(1u64..6, 0..4),
    ) {
        let sa: Vec<Option<u64>> = a.iter().map(|&d| Some(d)).collect();
        let out = broadcast_shapes(&sa, &sa).expect("self-broadcast always works");
        prop_assert_eq!(out, sa);
    }

    #[test]
    fn threaded_batch_is_byte_identical_to_sequential(
        consts in proptest::collection::vec(-100.0f64..100.0, 1..5),
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 0..10),
        keeps in proptest::collection::vec(any::<usize>(), 1..7),
        threads in 2usize..5,
    ) {
        // The replay-equality contract: running the pipeline over a batch
        // on N worker threads must produce byte-identical modules and
        // identical stats to the 1-thread run, for any batch size and
        // thread count (including threads > batch size).
        let ctx = Context::with_all_dialects();
        let mut sequential: Vec<Module> =
            keeps.iter().map(|&k| random_module(&consts, &ops, k)).collect();
        let mut threaded: Vec<Module> =
            keeps.iter().map(|&k| random_module(&consts, &ops, k)).collect();
        let pm = canonicalization_pipeline();
        let seq_stats = pm.run_batch(&ctx, &mut sequential).expect("sequential batch runs");
        let thr_stats = pm
            .run_batch_threaded(&ctx, &mut threaded, threads)
            .expect("threaded batch runs");
        prop_assert_eq!(seq_stats, thr_stats);
        for (a, b) in sequential.iter().zip(&threaded) {
            prop_assert_eq!(print_module(a), print_module(b));
        }
    }

    #[test]
    fn canonicalization_preserves_interpreter_semantics(
        consts in proptest::collection::vec(-100.0f64..100.0, 1..5),
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 0..12),
        stores in proptest::collection::vec((any::<usize>(), any::<usize>()), 1..5),
        data in proptest::collection::vec(-100.0f64..100.0, 8..9),
    ) {
        let ctx = Context::with_all_dialects();
        let mut m = random_function(&consts, &ops, &stores);
        prop_assert!(verify_module(&ctx, &m).is_ok());
        let before = run_k(&m, &data);
        canonicalization_pipeline()
            .run(&ctx, &mut m)
            .expect("canonicalization of a verified module never fails");
        prop_assert!(verify_module(&ctx, &m).is_ok());
        let after = run_k(&m, &data);
        prop_assert_eq!(before.len(), after.len());
        for (i, (x, y)) in before.iter().zip(&after).enumerate() {
            prop_assert!(
                x == y || (x.is_nan() && y.is_nan()),
                "slot {i} diverged after canonicalization: {x} vs {y}"
            );
        }
    }
}
