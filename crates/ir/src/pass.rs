//! The pass manager and built-in canonicalization passes.
//!
//! Passes transform a [`Module`] in place. The [`PassManager`] runs a
//! pipeline, optionally verifying between passes (as the EVEREST flow
//! does between dialect lowerings), and records per-pass statistics.

use std::collections::HashMap;

use crate::attr::Attribute;
use crate::error::{IrError, IrResult};
use crate::module::Module;
use crate::registry::{Context, OpTrait};

/// Statistics reported by one pass execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Number of operations erased.
    pub ops_erased: usize,
    /// Number of operations rewritten or folded.
    pub ops_rewritten: usize,
}

impl PassStats {
    /// Returns `true` if the pass changed nothing.
    pub fn is_noop(&self) -> bool {
        self.ops_erased == 0 && self.ops_rewritten == 0
    }
}

/// A module transformation.
///
/// Passes take `&self` and are stored as `Send + Sync` trait objects so
/// one [`PassManager`] can drive several worker threads at once (see
/// [`PassManager::run_batch_threaded`]). A pass that accumulates state
/// across runs must therefore use interior mutability that is safe to
/// share (`Mutex`, atomics), not `RefCell`.
pub trait Pass {
    /// Unique pass name used in diagnostics and pipelines.
    fn name(&self) -> &str;

    /// Runs the pass.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Pass`] when the transformation cannot be applied.
    fn run(&self, ctx: &Context, module: &mut Module) -> IrResult<PassStats>;
}

/// Runs a pipeline of passes with optional inter-pass verification.
pub struct PassManager {
    passes: Vec<Box<dyn Pass + Send + Sync>>,
    verify_each: bool,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self
                    .passes
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

impl Default for PassManager {
    fn default() -> Self {
        Self::new()
    }
}

impl PassManager {
    /// Creates an empty pipeline with inter-pass verification enabled.
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            verify_each: true,
        }
    }

    /// Disables verification between passes (for benchmarking).
    pub fn without_verification(mut self) -> Self {
        self.verify_each = false;
        self
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: Box<dyn Pass + Send + Sync>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Runs the full pipeline and returns per-pass statistics in order.
    ///
    /// # Errors
    ///
    /// Stops at the first failing pass or verification error.
    pub fn run(&self, ctx: &Context, module: &mut Module) -> IrResult<Vec<(String, PassStats)>> {
        let pipeline = everest_telemetry::span("ir.pipeline");
        pipeline.arg("passes", self.passes.len());
        if self.verify_each {
            crate::verify::verify_module(ctx, module)?;
        }
        let mut all = Vec::new();
        for pass in &self.passes {
            let span = everest_telemetry::span(format!("ir.pass.{}", pass.name()));
            let stats = pass.run(ctx, module)?;
            span.arg("erased", stats.ops_erased)
                .arg("rewritten", stats.ops_rewritten);
            if self.verify_each {
                crate::verify::verify_module(ctx, module).map_err(|e| IrError::Pass {
                    pass: pass.name().to_string(),
                    message: format!("verification failed after pass: {e}"),
                })?;
            }
            all.push((pass.name().to_string(), stats));
        }
        Ok(all)
    }

    /// Runs the full pipeline over each module independently, returning
    /// per-module statistics in input order.
    ///
    /// Equivalent to calling [`PassManager::run`] on every module; the
    /// threaded variant [`PassManager::run_batch_threaded`] produces
    /// byte-identical modules and identical statistics.
    ///
    /// # Errors
    ///
    /// Returns the error of the failing module with the lowest index.
    /// Modules after a failing one may or may not have been transformed.
    pub fn run_batch(
        &self,
        ctx: &Context,
        modules: &mut [Module],
    ) -> IrResult<Vec<Vec<(String, PassStats)>>> {
        modules.iter_mut().map(|m| self.run(ctx, m)).collect()
    }

    /// Runs the full pipeline over each module on up to `threads`
    /// worker threads.
    ///
    /// Modules are independent, so the batch splits into contiguous
    /// chunks — one per worker — and results are joined back in input
    /// order. The output is deterministic regardless of thread count:
    /// each module sees exactly the pass sequence [`PassManager::run`]
    /// would apply, and the per-module results are reassembled by
    /// index, never by completion order. `threads <= 1` (or a
    /// single-module batch) degenerates to [`PassManager::run_batch`]
    /// with no threads spawned.
    ///
    /// ```
    /// use everest_ir::pass::canonicalization_pipeline;
    /// use everest_ir::registry::Context;
    /// use everest_ir::Module;
    ///
    /// let ctx = Context::with_all_dialects();
    /// let pm = canonicalization_pipeline();
    /// let mut batch = vec![Module::new(), Module::new(), Module::new()];
    /// let stats = pm.run_batch_threaded(&ctx, &mut batch, 2).unwrap();
    /// assert_eq!(stats.len(), 3);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the error of the failing module with the lowest index,
    /// matching the sequential variant. Workers finish their chunks
    /// even when another chunk fails.
    ///
    /// # Panics
    ///
    /// Propagates panics from pass implementations.
    pub fn run_batch_threaded(
        &self,
        ctx: &Context,
        modules: &mut [Module],
        threads: usize,
    ) -> IrResult<Vec<Vec<(String, PassStats)>>> {
        let threads = threads.clamp(1, modules.len().max(1));
        if threads <= 1 {
            return self.run_batch(ctx, modules);
        }
        let chunk_len = modules.len().div_ceil(threads);
        let mut results: Vec<IrResult<Vec<(String, PassStats)>>> =
            Vec::with_capacity(modules.len());
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(threads);
            for chunk in modules.chunks_mut(chunk_len) {
                workers.push(scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .map(|m| self.run(ctx, m))
                        .collect::<Vec<_>>()
                }));
            }
            // Chunks are contiguous and workers joined in spawn order,
            // so this concatenation restores input order exactly.
            for worker in workers {
                results.extend(worker.join().expect("pass worker panicked"));
            }
        });
        results.into_iter().collect()
    }
}

/// Builds the standard canonicalization pipeline: constant folding, CSE,
/// then dead-code elimination, iterated twice so folds expose dead code.
pub fn canonicalization_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(Box::new(ConstantFolding));
    pm.add(Box::new(Cse));
    pm.add(Box::new(Dce));
    pm.add(Box::new(ConstantFolding));
    pm.add(Box::new(Cse));
    pm.add(Box::new(Dce));
    pm
}

// ---------------------------------------------------------------------------
// DCE
// ---------------------------------------------------------------------------

/// Dead-code elimination: erases [`OpTrait::Pure`] ops with no used results.
///
/// Iterates to a fixed point so chains of dead ops disappear in one run.
/// Each round builds one dense use-count vector indexed by `ValueId`
/// (one pass over the live ops) and decrements it as ops are erased —
/// instead of re-scanning the whole module per candidate result, which
/// made the old liveness check quadratic in module size.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &str {
        "dce"
    }

    fn run(&self, ctx: &Context, module: &mut Module) -> IrResult<PassStats> {
        let mut stats = PassStats::default();
        loop {
            let mut erased_this_round = 0;
            let ops = module.walk_ops();
            // Use counts over every live op (attached or detached), so
            // the check agrees exactly with `Module::is_unused`.
            let mut use_counts = vec![0u32; module.num_values()];
            for (_, operation) in module.live_ops() {
                for &operand in &operation.operands {
                    use_counts[operand.index()] += 1;
                }
            }
            for op in ops.into_iter().rev() {
                let Some(operation) = module.op(op) else {
                    continue;
                };
                if !ctx.has_trait(operation.name, OpTrait::Pure) {
                    continue;
                }
                if !operation.regions.is_empty() {
                    continue;
                }
                let dead = operation.results.iter().all(|r| use_counts[r.index()] == 0);
                if dead {
                    let operands = operation.operands.clone();
                    for operand in operands {
                        use_counts[operand.index()] -= 1;
                    }
                    module.erase_op(op)?;
                    erased_this_round += 1;
                }
            }
            stats.ops_erased += erased_this_round;
            if erased_this_round == 0 {
                break;
            }
        }
        Ok(stats)
    }
}

// ---------------------------------------------------------------------------
// CSE
// ---------------------------------------------------------------------------

/// Common-subexpression elimination over pure ops within each block.
///
/// Two pure ops are equivalent when they share name, operands and
/// attributes. Commutative ops are keyed on sorted operands.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cse;

/// Structural CSE equivalence key: interned op name (`Copy`, hashed by
/// id — no per-key string clone), (possibly sorted) operands, and
/// attributes keyed through [`crate::attr::AttrKey`] so distinct
/// attributes can never collide the way rendered strings could.
type CseKey = (
    crate::intern::Symbol,
    Vec<crate::ids::ValueId>,
    Vec<(String, crate::attr::AttrKey)>,
);

impl Pass for Cse {
    fn name(&self) -> &str {
        "cse"
    }

    fn run(&self, ctx: &Context, module: &mut Module) -> IrResult<PassStats> {
        let mut stats = PassStats::default();
        // Process each block independently (no cross-block CSE: that would
        // require dominance analysis beyond single blocks).
        let all_blocks: Vec<crate::ids::BlockId> = (0..module.num_blocks() as u32)
            .map(crate::ids::BlockId::from_raw)
            .collect();
        for block in all_blocks {
            let mut seen: HashMap<CseKey, Vec<crate::ids::ValueId>> = HashMap::new();
            let ops = module.block(block).ops.clone();
            for op in ops {
                let Some(operation) = module.op(op) else {
                    continue;
                };
                let name = operation.name;
                if !ctx.has_trait(name, OpTrait::Pure) || !operation.regions.is_empty() {
                    continue;
                }
                let mut operands = operation.operands.clone();
                if ctx.has_trait(name, OpTrait::Commutative) {
                    operands.sort();
                }
                let attrs: Vec<(String, crate::attr::AttrKey)> = operation
                    .attributes
                    .iter()
                    .map(|(k, v)| (k.clone(), v.structural_key()))
                    .collect();
                let key: CseKey = (name, operands, attrs);
                let results = operation.results.clone();
                if let Some(prev_results) = seen.get(&key) {
                    let prev_results = prev_results.clone();
                    for (from, to) in results.iter().zip(&prev_results) {
                        module.replace_all_uses(*from, *to);
                    }
                    module.erase_op(op)?;
                    stats.ops_erased += 1;
                } else {
                    seen.insert(key, results);
                }
            }
        }
        Ok(stats)
    }
}

// ---------------------------------------------------------------------------
// Loop-invariant code motion
// ---------------------------------------------------------------------------

/// Hoists pure, region-free operations out of `scf.for` bodies when all
/// their operands are defined outside the loop.
///
/// The EKL lowering materializes constants and loop-invariant index
/// arithmetic inside loop bodies; hoisting them shortens the body
/// schedule the HLS engine pipelines — a classic HLS pre-pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopInvariantCodeMotion;

impl Pass for LoopInvariantCodeMotion {
    fn name(&self) -> &str {
        "licm"
    }

    fn run(&self, ctx: &Context, module: &mut Module) -> IrResult<PassStats> {
        let mut stats = PassStats::default();
        loop {
            let mut changed = false;
            for loop_op in module.walk_ops() {
                let Some(operation) = module.op(loop_op) else {
                    continue;
                };
                if operation.name != "scf.for" {
                    continue;
                }
                // Values defined inside the loop (results + block args of
                // every nested block).
                let nested = module.walk_nested(loop_op);
                let mut inside: std::collections::HashSet<crate::ids::ValueId> =
                    std::collections::HashSet::new();
                for &op in &nested {
                    if let Some(o) = module.op(op) {
                        inside.extend(o.results.iter().copied());
                    }
                }
                let region = module.op(loop_op).expect("live").regions[0];
                for &block in &module.region(region).blocks.clone() {
                    inside.extend(module.block(block).args.iter().copied());
                }
                // Hoist from the direct body block only (inner loops are
                // handled when the walk reaches them).
                let body = module.region(region).blocks[0];
                let body_ops = module.block(body).ops.clone();
                for &op in &body_ops {
                    let Some(o) = module.op(op) else { continue };
                    // Skip terminators by trait, not by position: passes may
                    // leave non-terminator ops at the end of a block, and a
                    // hoistable op there must still be considered.
                    if ctx.has_trait(o.name, OpTrait::Terminator) {
                        continue;
                    }
                    if !ctx.has_trait(o.name, OpTrait::Pure) || !o.regions.is_empty() {
                        continue;
                    }
                    if o.operands.iter().any(|v| inside.contains(v)) {
                        continue;
                    }
                    // Results leave the "inside" set: they are now defined
                    // before the loop.
                    for r in o.results.clone() {
                        inside.remove(&r);
                    }
                    module.move_op_before(op, loop_op);
                    stats.ops_rewritten += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(stats)
    }
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Folds `arith` binary/unary float ops whose operands are constants.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantFolding;

impl ConstantFolding {
    fn const_value(module: &Module, v: crate::ids::ValueId) -> Option<f64> {
        match module.value(v).def {
            crate::module::ValueDef::OpResult { op, .. } => {
                let operation = module.op(op)?;
                if operation.name == "arith.constant" {
                    operation.attr("value")?.as_float()
                } else {
                    None
                }
            }
            crate::module::ValueDef::BlockArg { .. } => None,
        }
    }

    fn fold_binary(name: &str, a: f64, b: f64) -> Option<f64> {
        Some(match name {
            "arith.addf" => a + b,
            "arith.subf" => a - b,
            "arith.mulf" => a * b,
            "arith.divf" => {
                if b == 0.0 {
                    return None;
                }
                a / b
            }
            "arith.maxf" => a.max(b),
            "arith.minf" => a.min(b),
            _ => return None,
        })
    }

    fn fold_unary(name: &str, a: f64) -> Option<f64> {
        Some(match name {
            "arith.negf" => -a,
            "arith.absf" => a.abs(),
            "arith.sqrt" => {
                if a < 0.0 {
                    return None;
                }
                a.sqrt()
            }
            "arith.exp" => a.exp(),
            "arith.log" => {
                if a <= 0.0 {
                    return None;
                }
                a.ln()
            }
            _ => return None,
        })
    }
}

impl Pass for ConstantFolding {
    fn name(&self) -> &str {
        "constant-folding"
    }

    fn run(&self, _ctx: &Context, module: &mut Module) -> IrResult<PassStats> {
        let mut stats = PassStats::default();
        loop {
            let mut changed = false;
            for op in module.walk_ops() {
                let Some(operation) = module.op(op) else {
                    continue;
                };
                let name = operation.name;
                let folded = match operation.operands.len() {
                    2 => {
                        let a = Self::const_value(module, operation.operands[0]);
                        let b = Self::const_value(module, operation.operands[1]);
                        match (a, b) {
                            (Some(a), Some(b)) => Self::fold_binary(&name, a, b),
                            _ => None,
                        }
                    }
                    1 => Self::const_value(module, operation.operands[0])
                        .and_then(|a| Self::fold_unary(&name, a)),
                    _ => None,
                };
                if let Some(value) = folded {
                    let operation = module.op(op).expect("still live");
                    let result = operation.results[0];
                    let ty = module.value_type(result).clone();
                    let constant = module
                        .build_op("arith.constant", [], [ty])
                        .attr("value", Attribute::Float(value))
                        .detached();
                    module.insert_op_before(op, constant);
                    let new_value = crate::module::single_result(module, constant);
                    module.replace_all_uses(result, new_value);
                    module.erase_op(op)?;
                    stats.ops_rewritten += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::core;
    use crate::types::Type;

    fn ctx() -> Context {
        Context::with_all_dialects()
    }

    #[test]
    fn dce_removes_unused_pure_chain() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let b = core::const_f64(&mut m, top, 2.0);
        let s = core::binary(&mut m, top, "arith.addf", a, b);
        let _dead = core::binary(&mut m, top, "arith.mulf", s, s);
        assert_eq!(m.num_ops(), 4);
        let stats = Dce.run(&ctx(), &mut m).unwrap();
        // Everything is dead: mul unused -> add unused -> constants unused.
        assert_eq!(stats.ops_erased, 4);
        assert_eq!(m.num_ops(), 0);
    }

    #[test]
    fn dce_keeps_impure_ops() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = core::alloc(
            &mut m,
            top,
            Type::memref(&[4], Type::F64, crate::types::MemorySpace::Host),
        );
        let _ = buf;
        let before = m.num_ops();
        Dce.run(&ctx(), &mut m).unwrap();
        assert_eq!(m.num_ops(), before, "memref.alloc is not pure");
    }

    #[test]
    fn cse_merges_identical_constants() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let b = core::const_f64(&mut m, top, 1.0);
        let s = core::binary(&mut m, top, "arith.addf", a, b);
        // keep s alive through an impure user
        let buf = core::alloc(
            &mut m,
            top,
            Type::memref(&[], Type::F64, crate::types::MemorySpace::Host),
        );
        m.build_op("memref.store", [s, buf], []).append_to(top);
        let stats = Cse.run(&ctx(), &mut m).unwrap();
        assert_eq!(stats.ops_erased, 1, "one duplicate constant merged");
        // The add now uses the same value twice.
        let add = m.find_op("arith.addf").unwrap();
        let ops = &m.op(add).unwrap().operands;
        assert_eq!(ops[0], ops[1]);
    }

    #[test]
    fn cse_respects_commutativity() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let b = core::const_f64(&mut m, top, 2.0);
        let s1 = core::binary(&mut m, top, "arith.addf", a, b);
        let s2 = core::binary(&mut m, top, "arith.addf", b, a);
        let p = core::binary(&mut m, top, "arith.mulf", s1, s2);
        let buf = core::alloc(
            &mut m,
            top,
            Type::memref(&[], Type::F64, crate::types::MemorySpace::Host),
        );
        m.build_op("memref.store", [p, buf], []).append_to(top);
        let stats = Cse.run(&ctx(), &mut m).unwrap();
        assert_eq!(stats.ops_erased, 1, "addf(a,b) == addf(b,a)");

        // subf is NOT commutative: must not merge.
        let mut m2 = Module::new();
        let top2 = m2.top_block();
        let a2 = core::const_f64(&mut m2, top2, 1.0);
        let b2 = core::const_f64(&mut m2, top2, 2.0);
        let d1 = core::binary(&mut m2, top2, "arith.subf", a2, b2);
        let d2 = core::binary(&mut m2, top2, "arith.subf", b2, a2);
        let p2 = core::binary(&mut m2, top2, "arith.mulf", d1, d2);
        let buf2 = core::alloc(
            &mut m2,
            top2,
            Type::memref(&[], Type::F64, crate::types::MemorySpace::Host),
        );
        m2.build_op("memref.store", [p2, buf2], []).append_to(top2);
        let stats2 = Cse.run(&ctx(), &mut m2).unwrap();
        assert_eq!(stats2.ops_erased, 0);
    }

    #[test]
    fn cse_distinguishes_attribute_payloads_that_render_alike() {
        // Int(1) and Float(1.0) both render as "1"; the structural key
        // must still keep them apart.
        let mut m = Module::new();
        let top = m.top_block();
        let int_const = m
            .build_op("arith.constant", [], [Type::F64])
            .attr("value", Attribute::Int(1))
            .append_to(top);
        let float_const = m
            .build_op("arith.constant", [], [Type::F64])
            .attr("value", Attribute::Float(1.0))
            .append_to(top);
        let a = crate::module::single_result(&m, int_const);
        let b = crate::module::single_result(&m, float_const);
        let s = core::binary(&mut m, top, "arith.addf", a, b);
        let buf = core::alloc(
            &mut m,
            top,
            Type::memref(&[], Type::F64, crate::types::MemorySpace::Host),
        );
        m.build_op("memref.store", [s, buf], []).append_to(top);
        let stats = Cse.run(&ctx(), &mut m).unwrap();
        assert_eq!(
            stats.ops_erased, 0,
            "distinct attribute kinds must not merge"
        );
    }

    #[test]
    fn licm_skips_terminators_by_trait_not_position() {
        use crate::dialects::core::{build_for, build_func, const_f64, const_index};
        let mut m = Module::new();
        let top = m.top_block();
        let ty = Type::memref(&[8], Type::F64, crate::types::MemorySpace::Device);
        let (_f, entry) = build_func(&mut m, top, "k", &[ty], &[]);
        let lb = const_index(&mut m, entry, 0);
        let ub = const_index(&mut m, entry, 8);
        let step = const_index(&mut m, entry, 1);
        let (_loop_op, body) = build_for(&mut m, entry, lb, ub, step);
        // Mid-pipeline IR: an invariant op sits *after* the terminator,
        // where the old take(len - 1) logic would never look.
        let _early = const_f64(&mut m, body, 2.0);
        m.build_op("scf.yield", [], []).append_to(body);
        let _late = const_f64(&mut m, body, 3.0);
        m.build_op("func.return", [], []).append_to(entry);

        let stats = LoopInvariantCodeMotion.run(&ctx(), &mut m).unwrap();
        assert_eq!(stats.ops_rewritten, 2, "both invariant constants hoist");
        let remaining: Vec<String> = m
            .block(body)
            .ops
            .iter()
            .map(|&o| m.op(o).unwrap().name.to_string())
            .collect();
        assert_eq!(remaining, vec!["scf.yield".to_string()]);
    }

    #[test]
    fn constant_folding_collapses_expression() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 3.0);
        let b = core::const_f64(&mut m, top, 4.0);
        let s = core::binary(&mut m, top, "arith.addf", a, b); // 7
        let p = core::binary(&mut m, top, "arith.mulf", s, s); // 49
        let buf = core::alloc(
            &mut m,
            top,
            Type::memref(&[], Type::F64, crate::types::MemorySpace::Host),
        );
        m.build_op("memref.store", [p, buf], []).append_to(top);
        let stats = ConstantFolding.run(&ctx(), &mut m).unwrap();
        assert_eq!(stats.ops_rewritten, 2);
        // The store operand now comes from a constant with value 49.
        let store = m.find_op("memref.store").unwrap();
        let v = m.op(store).unwrap().operands[0];
        let crate::module::ValueDef::OpResult { op, .. } = m.value(v).def else {
            panic!("expected op result");
        };
        assert_eq!(
            m.op(op).unwrap().attr("value").unwrap().as_float(),
            Some(49.0)
        );
    }

    #[test]
    fn folding_skips_division_by_zero() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let z = core::const_f64(&mut m, top, 0.0);
        let d = core::binary(&mut m, top, "arith.divf", a, z);
        let buf = core::alloc(
            &mut m,
            top,
            Type::memref(&[], Type::F64, crate::types::MemorySpace::Host),
        );
        m.build_op("memref.store", [d, buf], []).append_to(top);
        let stats = ConstantFolding.run(&ctx(), &mut m).unwrap();
        assert_eq!(stats.ops_rewritten, 0);
    }

    #[test]
    fn full_pipeline_runs_and_verifies() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let b = core::const_f64(&mut m, top, 1.0);
        let s = core::binary(&mut m, top, "arith.addf", a, b);
        let _dead = core::binary(&mut m, top, "arith.mulf", s, s);
        let pm = canonicalization_pipeline();
        let stats = pm.run(&ctx(), &mut m).unwrap();
        assert_eq!(stats.len(), 6);
        assert_eq!(m.num_ops(), 0, "everything folds away");
    }

    #[test]
    fn licm_hoists_loop_invariant_constants() {
        use crate::dialects::core::{build_for, build_func, const_f64, const_index};
        let mut m = Module::new();
        let top = m.top_block();
        let ty = Type::memref(&[8], Type::F64, crate::types::MemorySpace::Device);
        let (_f, entry) = build_func(&mut m, top, "k", &[ty], &[]);
        let buf = m.block(entry).args[0];
        let lb = const_index(&mut m, entry, 0);
        let ub = const_index(&mut m, entry, 8);
        let step = const_index(&mut m, entry, 1);
        let (loop_op, body) = build_for(&mut m, entry, lb, ub, step);
        let iv = m.block(body).args[0];
        // invariant: constant and product of constants
        let two = const_f64(&mut m, body, 2.0);
        let three = const_f64(&mut m, body, 3.0);
        let six = core::binary(&mut m, body, "arith.mulf", two, three);
        // variant: depends on a load of the iv
        let load = m
            .build_op("memref.load", [buf, iv], [Type::F64])
            .append_to(body);
        let lv = crate::module::single_result(&m, load);
        let prod = core::binary(&mut m, body, "arith.mulf", six, lv);
        m.build_op("memref.store", [prod, buf, iv], [])
            .append_to(body);
        m.build_op("scf.yield", [], []).append_to(body);
        m.build_op("func.return", [], []).append_to(entry);

        let before_body = m.block(body).ops.len();
        let stats = LoopInvariantCodeMotion.run(&ctx(), &mut m).unwrap();
        assert_eq!(
            stats.ops_rewritten, 3,
            "two constants + their product hoist"
        );
        assert_eq!(m.block(body).ops.len(), before_body - 3);
        crate::verify::verify_module(&ctx(), &m).unwrap();
        // Hoisted ops sit before the loop in the entry block.
        let entry_ops = m.block(entry).ops.clone();
        let loop_pos = entry_ops.iter().position(|&o| o == loop_op).unwrap();
        let hoisted: Vec<_> = entry_ops[..loop_pos]
            .iter()
            .filter(|&&o| m.op(o).unwrap().name == "arith.mulf")
            .collect();
        assert_eq!(hoisted.len(), 1);
    }

    #[test]
    fn licm_preserves_semantics() {
        use crate::dialects::core::{build_for, build_func, const_f64, const_index};
        use crate::interp::{Buffer, Interpreter, Value};
        let build = || {
            let mut m = Module::new();
            let top = m.top_block();
            let ty = Type::memref(&[8], Type::F64, crate::types::MemorySpace::Device);
            let (_f, entry) = build_func(&mut m, top, "k", &[ty], &[]);
            let buf = m.block(entry).args[0];
            let lb = const_index(&mut m, entry, 0);
            let ub = const_index(&mut m, entry, 8);
            let step = const_index(&mut m, entry, 1);
            let (_loop, body) = build_for(&mut m, entry, lb, ub, step);
            let iv = m.block(body).args[0];
            let k = const_f64(&mut m, body, 2.5);
            let load = m
                .build_op("memref.load", [buf, iv], [Type::F64])
                .append_to(body);
            let lv = crate::module::single_result(&m, load);
            let v = core::binary(&mut m, body, "arith.mulf", k, lv);
            m.build_op("memref.store", [v, buf, iv], []).append_to(body);
            m.build_op("scf.yield", [], []).append_to(body);
            m.build_op("func.return", [], []).append_to(entry);
            m
        };
        let run = |m: &Module| -> Vec<f64> {
            let mut interp = Interpreter::new();
            let data: Vec<f64> = (0..8).map(|v| v as f64).collect();
            let b = interp.alloc_buffer(Buffer::from_data(&[8], data));
            interp
                .run_function(m, "k", std::slice::from_ref(&b))
                .unwrap();
            let Value::Buffer(h) = b else { unreachable!() };
            interp.buffer(h).data.clone()
        };
        let reference = run(&build());
        let mut optimized = build();
        LoopInvariantCodeMotion.run(&ctx(), &mut optimized).unwrap();
        assert_eq!(run(&optimized), reference);
    }

    #[test]
    fn pass_manager_reports_failing_verification() {
        struct Breaker;
        impl Pass for Breaker {
            fn name(&self) -> &str {
                "breaker"
            }
            fn run(&self, _ctx: &Context, module: &mut Module) -> IrResult<PassStats> {
                let top = module.top_block();
                module.build_op("nosuch.op", [], []).append_to(top);
                Ok(PassStats::default())
            }
        }
        let mut m = Module::new();
        let mut pm = PassManager::new();
        pm.add(Box::new(Breaker));
        let err = pm.run(&ctx(), &mut m).unwrap_err();
        assert!(err.to_string().contains("breaker"));
    }

    #[test]
    fn threaded_batch_reports_error_of_lowest_failing_module() {
        // Modules 1 and 3 fail verification with distinct op names; every
        // thread count must surface module 1's error, like the
        // sequential run does.
        let build = |bad: Option<&str>| {
            let mut m = Module::new();
            let top = m.top_block();
            core::const_f64(&mut m, top, 1.0);
            if let Some(name) = bad {
                m.build_op(name, [], []).append_to(top);
            }
            m
        };
        let make_batch = || {
            vec![
                build(None),
                build(Some("nosuch.first")),
                build(None),
                build(Some("nosuch.second")),
            ]
        };
        let pm = canonicalization_pipeline();
        let sequential = pm.run_batch(&ctx(), &mut make_batch()).unwrap_err();
        assert!(sequential.to_string().contains("nosuch.first"));
        for threads in [1, 2, 3, 4, 7] {
            let err = pm
                .run_batch_threaded(&ctx(), &mut make_batch(), threads)
                .unwrap_err();
            assert!(
                err.to_string().contains("nosuch.first"),
                "threads={threads} surfaced the wrong module: {err}"
            );
        }
    }

    #[test]
    fn threaded_batch_handles_degenerate_shapes() {
        let pm = canonicalization_pipeline();
        // Empty batch, zero threads, and more threads than modules.
        assert!(pm
            .run_batch_threaded(&ctx(), &mut [], 4)
            .unwrap()
            .is_empty());
        let mut one = vec![Module::new()];
        assert_eq!(pm.run_batch_threaded(&ctx(), &mut one, 0).unwrap().len(), 1);
        let mut few = vec![Module::new(), Module::new()];
        assert_eq!(
            pm.run_batch_threaded(&ctx(), &mut few, 16).unwrap().len(),
            2
        );
    }
}
