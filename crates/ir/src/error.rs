//! Error types shared across the IR crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building, verifying, parsing or transforming IR.
///
/// The variants mirror the stages of the compilation pipeline so callers can
/// distinguish structural problems (malformed IR) from verification failures
/// (well-formed IR violating dialect rules) and pass failures.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// An arena id did not resolve to an entity in the module.
    InvalidId(String),
    /// IR construction violated a structural rule (e.g. result-count
    /// mismatch, block without terminator where one is required).
    Malformed(String),
    /// A dialect or operation name was not registered in the context.
    Unregistered(String),
    /// Verification of a registered operation failed.
    Verification {
        /// Fully qualified operation name (`dialect.op`).
        op: String,
        /// Human-readable explanation of the violated invariant.
        message: String,
    },
    /// The textual parser rejected the input.
    Parse {
        /// Line number (1-based) where the error was detected.
        line: usize,
        /// Explanation of the syntax error.
        message: String,
    },
    /// A transformation pass failed.
    Pass {
        /// Name of the failing pass.
        pass: String,
        /// Explanation of the failure.
        message: String,
    },
    /// A type-system violation (mismatched or unsupported types).
    Type(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::InvalidId(what) => write!(f, "invalid arena id: {what}"),
            IrError::Malformed(msg) => write!(f, "malformed IR: {msg}"),
            IrError::Unregistered(name) => write!(f, "unregistered dialect or op: {name}"),
            IrError::Verification { op, message } => {
                write!(f, "verification of '{op}' failed: {message}")
            }
            IrError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IrError::Pass { pass, message } => write!(f, "pass '{pass}' failed: {message}"),
            IrError::Type(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl Error for IrError {}

/// Convenience result alias used across the IR crate.
pub type IrResult<T> = Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = IrError::Verification {
            op: "teil.contract".into(),
            message: "rank mismatch".into(),
        };
        let text = err.to_string();
        assert!(text.contains("teil.contract"));
        assert!(text.contains("rank mismatch"));
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }

    #[test]
    fn parse_error_reports_line() {
        let err = IrError::Parse {
            line: 42,
            message: "expected '('".into(),
        };
        assert!(err.to_string().contains("line 42"));
    }
}
