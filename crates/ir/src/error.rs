//! Error types shared across the IR crate.

use std::error::Error;
use std::fmt;

use crate::location::OpPath;

/// Errors produced while building, verifying, parsing or transforming IR.
///
/// The variants mirror the stages of the compilation pipeline so callers can
/// distinguish structural problems (malformed IR) from verification failures
/// (well-formed IR violating dialect rules) and pass failures.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// An arena id did not resolve to an entity in the module.
    InvalidId(String),
    /// IR construction violated a structural rule (e.g. result-count
    /// mismatch, block without terminator where one is required).
    Malformed(String),
    /// A dialect or operation name was not registered in the context.
    Unregistered(String),
    /// Verification of a registered operation failed.
    Verification {
        /// Fully qualified operation name (`dialect.op`).
        op: String,
        /// Human-readable explanation of the violated invariant.
        message: String,
        /// Structural location of the op, when known. Dialect verifiers
        /// construct errors without a path (via [`IrError::verification`]);
        /// `verify_module` fills it in before surfacing the error.
        path: Option<OpPath>,
    },
    /// The textual parser rejected the input.
    Parse {
        /// Line number (1-based) where the error was detected.
        line: usize,
        /// Explanation of the syntax error.
        message: String,
    },
    /// A transformation pass failed.
    Pass {
        /// Name of the failing pass.
        pass: String,
        /// Explanation of the failure.
        message: String,
    },
    /// A type-system violation (mismatched or unsupported types).
    Type(String),
}

impl IrError {
    /// Builds a [`IrError::Verification`] without a structural path.
    ///
    /// This is the constructor dialect verifiers use: they see a single
    /// op and cannot cheaply locate it in the module, so the verifier
    /// driver attaches the path afterwards via [`IrError::with_path`].
    pub fn verification(op: impl Into<String>, message: impl Into<String>) -> IrError {
        IrError::Verification {
            op: op.into(),
            message: message.into(),
            path: None,
        }
    }

    /// Attaches a structural path to a [`IrError::Verification`] that
    /// does not already carry one; other variants pass through.
    #[must_use]
    pub fn with_path(self, new_path: OpPath) -> IrError {
        match self {
            IrError::Verification {
                op,
                message,
                path: None,
            } => IrError::Verification {
                op,
                message,
                path: Some(new_path),
            },
            other => other,
        }
    }

    /// Returns the structural path, if this error carries one.
    pub fn path(&self) -> Option<&OpPath> {
        match self {
            IrError::Verification { path, .. } => path.as_ref(),
            _ => None,
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::InvalidId(what) => write!(f, "invalid arena id: {what}"),
            IrError::Malformed(msg) => write!(f, "malformed IR: {msg}"),
            IrError::Unregistered(name) => write!(f, "unregistered dialect or op: {name}"),
            IrError::Verification { op, message, path } => {
                write!(f, "verification of '{op}' failed: {message}")?;
                if let Some(path) = path {
                    write!(f, " (at {path})")?;
                }
                Ok(())
            }
            IrError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IrError::Pass { pass, message } => write!(f, "pass '{pass}' failed: {message}"),
            IrError::Type(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl Error for IrError {}

/// Convenience result alias used across the IR crate.
pub type IrResult<T> = Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = IrError::verification("teil.contract", "rank mismatch");
        let text = err.to_string();
        assert!(text.contains("teil.contract"));
        assert!(text.contains("rank mismatch"));
        assert!(!text.contains(" (at "), "no path yet: {text}");
    }

    #[test]
    fn with_path_is_displayed_and_idempotent() {
        use crate::location::{OpPath, PathStep};
        let path = OpPath {
            steps: vec![PathStep {
                region: 0,
                block: 0,
                position: 2,
                op_name: "arith.addf".into(),
            }],
        };
        let err = IrError::verification("arith.addf", "bad").with_path(path.clone());
        assert!(err
            .to_string()
            .contains("(at region0.block0.op2(arith.addf))"));
        // Attaching again must not overwrite the original path.
        let other = OpPath::default();
        let err = err.with_path(other);
        assert_eq!(err.path(), Some(&path));
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }

    #[test]
    fn parse_error_reports_line() {
        let err = IrError::Parse {
            line: 42,
            message: "expected '('".into(),
        };
        assert!(err.to_string().contains("line 42"));
    }
}
