//! Lowering from tensor dialects (`teil`, `esn`) to loop-level IR
//! (`scf` + `arith` + `memref`).
//!
//! This is the central lowering of the EVEREST compilation flow (Fig. 5):
//! an `ekl.kernel` whose body is a DAG of tensor operations becomes a
//! `func.func` over memrefs containing explicit loop nests — the form the
//! HLS engine schedules. Conventions:
//!
//! * the kernel's `ekl.input` ops become function arguments (in order),
//!   followed by one argument per `ekl.output`;
//! * every intermediate tensor is materialized into a fresh buffer
//!   (the HLS flow later promotes these to PLMs and removes copies);
//! * `teil.constant` lowers to an alloc carrying an `init` attribute.

use std::collections::HashMap;

use crate::attr::Attribute;
use crate::dialects::core::{build_for, const_index};
use crate::dialects::tensorlang::{broadcast_shapes, parse_einsum_notation};
use crate::error::{IrError, IrResult};
use crate::ids::{BlockId, OpId, ValueId};
use crate::module::{single_result, Module};
use crate::types::{MemorySpace, Type};

/// Lowers the `ekl.kernel` named `kernel` in `src` into a fresh module
/// containing a loop-level `func.func` with the same name.
///
/// # Errors
///
/// Returns an error if the kernel is missing, uses dynamic shapes, or
/// contains an op the lowering does not support.
pub fn lower_kernel_to_loops(src: &Module, kernel: &str) -> IrResult<Module> {
    let kernel_op = src
        .lookup_symbol(kernel)
        .ok_or_else(|| IrError::InvalidId(format!("no kernel '{kernel}'")))?;
    let operation = src
        .op(kernel_op)
        .ok_or_else(|| IrError::InvalidId("kernel erased".into()))?;
    let region = *operation
        .regions
        .first()
        .ok_or_else(|| IrError::Malformed("kernel has no region".into()))?;
    let body = src.region(region).blocks[0];

    // Pass 1: collect inputs and outputs to build the signature.
    let mut input_types = Vec::new();
    let mut output_types = Vec::new();
    for &op in &src.block(body).ops {
        let o = src.op(op).expect("live");
        match o.name.as_str() {
            "ekl.input" => input_types.push(memref_of(src.value_type(o.results[0]))?),
            "ekl.output" => output_types.push(memref_of(src.value_type(o.operands[0]))?),
            _ => {}
        }
    }

    // The lowering emits a bounded number of ops per source op; size the
    // destination arenas once instead of regrowing mid-build.
    let mut dst = Module::with_capacity(4 * src.block(body).ops.len());
    let top = dst.top_block();
    let all_args: Vec<Type> = input_types.iter().chain(&output_types).cloned().collect();
    let (_f, entry) = crate::dialects::core::build_func(&mut dst, top, kernel, &all_args, &[]);

    let mut lowerer = Lowerer {
        src,
        dst,
        entry,
        map: HashMap::new(),
    };

    let mut next_input = 0usize;
    let mut next_output = input_types.len();
    for &op in &src.block(body).ops {
        let o = src.op(op).expect("live");
        match o.name.as_str() {
            "ekl.input" => {
                let arg = lowerer.dst.block(entry).args[next_input];
                next_input += 1;
                lowerer.map.insert(o.results[0], arg);
            }
            "ekl.output" => {
                let arg = lowerer.dst.block(entry).args[next_output];
                next_output += 1;
                let value = lowerer.mapped(o.operands[0])?;
                lowerer
                    .dst
                    .build_op("memref.copy", [value, arg], [])
                    .append_to(entry);
            }
            "ekl.yield" => {}
            _ => lowerer.lower_op(op)?,
        }
    }
    let mut dst = lowerer.dst;
    dst.build_op("func.return", [], []).append_to(entry);
    Ok(dst)
}

fn memref_of(ty: &Type) -> IrResult<Type> {
    let shape = static_shape(ty)?;
    let elem = ty
        .elem()
        .cloned()
        .ok_or_else(|| IrError::Type(format!("expected tensor type, got {ty}")))?;
    Ok(Type::memref(&shape, elem, MemorySpace::Device))
}

fn static_shape(ty: &Type) -> IrResult<Vec<u64>> {
    ty.shape()
        .ok_or_else(|| IrError::Type(format!("expected shaped type, got {ty}")))?
        .iter()
        .map(|d| d.ok_or_else(|| IrError::Type("dynamic shapes unsupported in lowering".into())))
        .collect()
}

struct Lowerer<'s> {
    src: &'s Module,
    dst: Module,
    entry: BlockId,
    /// tensor SSA value in `src` → memref value in `dst`.
    map: HashMap<ValueId, ValueId>,
}

impl<'s> Lowerer<'s> {
    fn mapped(&self, v: ValueId) -> IrResult<ValueId> {
        self.map
            .get(&v)
            .copied()
            .ok_or_else(|| IrError::Malformed(format!("value {v} not lowered yet")))
    }

    fn alloc_result(&mut self, src_value: ValueId) -> IrResult<ValueId> {
        let ty = memref_of(self.src.value_type(src_value))?;
        let op = self
            .dst
            .build_op("memref.alloc", [], [ty])
            .append_to(self.entry);
        let v = single_result(&self.dst, op);
        self.map.insert(src_value, v);
        Ok(v)
    }

    /// Builds a loop nest over `bounds` in `block`; returns the induction
    /// variables and the innermost body. Yields are appended afterwards by
    /// [`Lowerer::close_loop_nest`].
    fn open_loop_nest(&mut self, block: BlockId, bounds: &[u64]) -> (Vec<ValueId>, Vec<BlockId>) {
        let mut ivs = Vec::new();
        let mut bodies = Vec::new();
        let mut current = block;
        for &bound in bounds {
            let lb = const_index(&mut self.dst, current, 0);
            let ub = const_index(&mut self.dst, current, bound as i64);
            let step = const_index(&mut self.dst, current, 1);
            let (_op, body) = build_for(&mut self.dst, current, lb, ub, step);
            ivs.push(self.dst.block(body).args[0]);
            bodies.push(body);
            current = body;
        }
        (ivs, bodies)
    }

    fn close_loop_nest(&mut self, bodies: &[BlockId]) {
        for &body in bodies.iter().rev() {
            self.dst.build_op("scf.yield", [], []).append_to(body);
        }
    }

    /// Loads `memref[indices]` in `block`.
    fn load(&mut self, block: BlockId, memref: ValueId, indices: &[ValueId]) -> ValueId {
        let elem = self
            .dst
            .value_type(memref)
            .elem()
            .cloned()
            .expect("memref has element type");
        let mut operands = vec![memref];
        operands.extend_from_slice(indices);
        let op = self
            .dst
            .build_op("memref.load", operands, [elem])
            .append_to(block);
        single_result(&self.dst, op)
    }

    fn store(&mut self, block: BlockId, value: ValueId, memref: ValueId, indices: &[ValueId]) {
        let mut operands = vec![value, memref];
        operands.extend_from_slice(indices);
        self.dst
            .build_op("memref.store", operands, [])
            .append_to(block);
    }

    /// Broadcast-aware indices: maps output ivs (length = out rank) onto an
    /// input of `in_shape` aligned at the trailing dimensions.
    fn broadcast_indices(
        &mut self,
        block: BlockId,
        out_ivs: &[ValueId],
        out_shape: &[u64],
        in_shape: &[u64],
    ) -> Vec<ValueId> {
        let offset = out_shape.len() - in_shape.len();
        let mut indices = Vec::with_capacity(in_shape.len());
        for (j, &dim) in in_shape.iter().enumerate() {
            let out_dim = out_shape[offset + j];
            if dim == 1 && out_dim != 1 {
                indices.push(const_index(&mut self.dst, block, 0));
            } else {
                indices.push(out_ivs[offset + j]);
            }
        }
        indices
    }

    fn lower_op(&mut self, op: OpId) -> IrResult<()> {
        let o = self.src.op(op).expect("live").clone();
        match o.name.as_str() {
            "teil.constant" => {
                let result = self.alloc_result(o.results[0])?;
                let alloc_op = match self.dst.value(result).def {
                    crate::module::ValueDef::OpResult { op, .. } => op,
                    _ => unreachable!("alloc result is an op result"),
                };
                let attr_name = match o.attr("value") {
                    Some(Attribute::DenseF64(_)) => "init",
                    Some(Attribute::DenseI64(_)) => "init_i64",
                    _ => {
                        return Err(IrError::Type(
                            "teil.constant needs a dense value attribute".into(),
                        ))
                    }
                };
                let value = o.attr("value").cloned().expect("checked above");
                self.dst
                    .op_mut(alloc_op)
                    .expect("live")
                    .attributes
                    .insert(attr_name.to_string(), value);
                Ok(())
            }
            "teil.add" | "teil.sub" | "teil.mul" | "teil.div" | "teil.max" | "teil.min" => {
                let arith = match o.name.as_str() {
                    "teil.add" => "arith.addf",
                    "teil.sub" => "arith.subf",
                    "teil.mul" => "arith.mulf",
                    "teil.div" => "arith.divf",
                    "teil.max" => "arith.maxf",
                    _ => "arith.minf",
                };
                self.lower_elementwise_binary(&o, arith)
            }
            "teil.cmp" => {
                let a_shape = static_shape(self.src.value_type(o.operands[0]))?;
                let b_shape = static_shape(self.src.value_type(o.operands[1]))?;
                let out_shape = static_shape(self.src.value_type(o.results[0]))?;
                let _ = broadcast_shapes(
                    &a_shape.iter().map(|&d| Some(d)).collect::<Vec<_>>(),
                    &b_shape.iter().map(|&d| Some(d)).collect::<Vec<_>>(),
                )?;
                let a = self.mapped(o.operands[0])?;
                let b = self.mapped(o.operands[1])?;
                let out = self.alloc_result(o.results[0])?;
                let pred = o
                    .str_attr("predicate")
                    .ok_or_else(|| IrError::Type("cmp missing predicate".into()))?
                    .to_string();
                let (ivs, bodies) = self.open_loop_nest(self.entry, &out_shape);
                let inner = *bodies.last().unwrap_or(&self.entry);
                let ai = self.broadcast_indices(inner, &ivs, &out_shape, &a_shape);
                let bi = self.broadcast_indices(inner, &ivs, &out_shape, &b_shape);
                let av = self.load(inner, a, &ai);
                let bv = self.load(inner, b, &bi);
                let cmp = self
                    .dst
                    .build_op("arith.cmpf", [av, bv], [Type::bool()])
                    .attr("predicate", pred.as_str())
                    .append_to(inner);
                let cv = single_result(&self.dst, cmp);
                self.store(inner, cv, out, &ivs);
                self.close_loop_nest(&bodies);
                Ok(())
            }
            "teil.select" => {
                let out_shape = static_shape(self.src.value_type(o.results[0]))?;
                let c = self.mapped(o.operands[0])?;
                let a = self.mapped(o.operands[1])?;
                let b = self.mapped(o.operands[2])?;
                let c_shape = static_shape(self.src.value_type(o.operands[0]))?;
                let a_shape = static_shape(self.src.value_type(o.operands[1]))?;
                let b_shape = static_shape(self.src.value_type(o.operands[2]))?;
                let out = self.alloc_result(o.results[0])?;
                let (ivs, bodies) = self.open_loop_nest(self.entry, &out_shape);
                let inner = *bodies.last().unwrap_or(&self.entry);
                let ci = self.broadcast_indices(inner, &ivs, &out_shape, &c_shape);
                let ai = self.broadcast_indices(inner, &ivs, &out_shape, &a_shape);
                let bi = self.broadcast_indices(inner, &ivs, &out_shape, &b_shape);
                let cv = self.load(inner, c, &ci);
                let av = self.load(inner, a, &ai);
                let bv = self.load(inner, b, &bi);
                let elem = self.dst.value_type(av).clone();
                let sel = self
                    .dst
                    .build_op("arith.select", [cv, av, bv], [elem])
                    .append_to(inner);
                let sv = single_result(&self.dst, sel);
                self.store(inner, sv, out, &ivs);
                self.close_loop_nest(&bodies);
                Ok(())
            }
            "teil.transpose" => {
                let perm: Vec<usize> = o
                    .attr("perm")
                    .and_then(Attribute::as_array)
                    .ok_or_else(|| IrError::Type("transpose missing perm".into()))?
                    .iter()
                    .map(|a| a.as_int().unwrap_or(0) as usize)
                    .collect();
                let in_v = self.mapped(o.operands[0])?;
                let out_shape = static_shape(self.src.value_type(o.results[0]))?;
                let out = self.alloc_result(o.results[0])?;
                let (ivs, bodies) = self.open_loop_nest(self.entry, &out_shape);
                let inner = *bodies.last().unwrap_or(&self.entry);
                // out[i0..] = in[perm-applied]: in index at dim perm[k] = iv[k]
                let rank = perm.len();
                let mut in_indices = vec![ivs[0]; rank];
                for (k, &p) in perm.iter().enumerate() {
                    in_indices[p] = ivs[k];
                }
                let v = self.load(inner, in_v, &in_indices);
                self.store(inner, v, out, &ivs);
                self.close_loop_nest(&bodies);
                Ok(())
            }
            "teil.reshape" => {
                let in_shape = static_shape(self.src.value_type(o.operands[0]))?;
                let out_shape = static_shape(self.src.value_type(o.results[0]))?;
                let in_v = self.mapped(o.operands[0])?;
                let out = self.alloc_result(o.results[0])?;
                let (ivs, bodies) = self.open_loop_nest(self.entry, &out_shape);
                let inner = *bodies.last().unwrap_or(&self.entry);
                // linear = sum(iv_i * out_stride_i)
                let mut linear = const_index(&mut self.dst, inner, 0);
                for (k, &_dim) in out_shape.iter().enumerate() {
                    let stride: u64 = out_shape[k + 1..].iter().product();
                    let s = const_index(&mut self.dst, inner, stride as i64);
                    let mul = crate::dialects::core::binary(
                        &mut self.dst,
                        inner,
                        "arith.muli",
                        ivs[k],
                        s,
                    );
                    linear = crate::dialects::core::binary(
                        &mut self.dst,
                        inner,
                        "arith.addi",
                        linear,
                        mul,
                    );
                }
                // delinearize into input indices
                let mut in_indices = Vec::new();
                let mut rem = linear;
                for k in 0..in_shape.len() {
                    let stride: u64 = in_shape[k + 1..].iter().product();
                    let s = const_index(&mut self.dst, inner, stride as i64);
                    let q =
                        crate::dialects::core::binary(&mut self.dst, inner, "arith.divsi", rem, s);
                    in_indices.push(q);
                    rem =
                        crate::dialects::core::binary(&mut self.dst, inner, "arith.remsi", rem, s);
                }
                let v = self.load(inner, in_v, &in_indices);
                self.store(inner, v, out, &ivs);
                self.close_loop_nest(&bodies);
                Ok(())
            }
            "teil.gather" => {
                // out[iv_idx.., iv_rest..] = table[indices[iv_idx..], iv_rest..]
                let table_shape = static_shape(self.src.value_type(o.operands[0]))?;
                let idx_shape = static_shape(self.src.value_type(o.operands[1]))?;
                let out_shape = static_shape(self.src.value_type(o.results[0]))?;
                let table = self.mapped(o.operands[0])?;
                let indices = self.mapped(o.operands[1])?;
                let out = self.alloc_result(o.results[0])?;
                let expect_rank = idx_shape.len() + table_shape.len() - 1;
                if out_shape.len() != expect_rank {
                    return Err(IrError::Type(format!(
                        "gather result rank {} does not match expected {expect_rank}",
                        out_shape.len()
                    )));
                }
                let (ivs, bodies) = self.open_loop_nest(self.entry, &out_shape);
                let inner = *bodies.last().unwrap_or(&self.entry);
                let idx_ivs = &ivs[..idx_shape.len()];
                let rest_ivs = &ivs[idx_shape.len()..];
                let gathered = self.load(inner, indices, idx_ivs);
                let mut table_indices = vec![gathered];
                table_indices.extend_from_slice(rest_ivs);
                let v = self.load(inner, table, &table_indices);
                self.store(inner, v, out, &ivs);
                self.close_loop_nest(&bodies);
                Ok(())
            }
            "teil.reduce" => {
                let dims: Vec<usize> = o
                    .attr("dims")
                    .and_then(Attribute::as_array)
                    .ok_or_else(|| IrError::Type("reduce missing dims".into()))?
                    .iter()
                    .map(|a| a.as_int().unwrap_or(0) as usize)
                    .collect();
                let kind = o
                    .str_attr("kind")
                    .ok_or_else(|| IrError::Type("reduce missing kind".into()))?
                    .to_string();
                let in_shape = static_shape(self.src.value_type(o.operands[0]))?;
                let out_shape = static_shape(self.src.value_type(o.results[0]))?;
                let input = self.mapped(o.operands[0])?;
                let out = self.alloc_result(o.results[0])?;
                let kept: Vec<usize> = (0..in_shape.len()).filter(|d| !dims.contains(d)).collect();
                let red_bounds: Vec<u64> = dims.iter().map(|&d| in_shape[d]).collect();
                let count: u64 = red_bounds.iter().product();

                let (out_ivs, out_bodies) = self.open_loop_nest(self.entry, &out_shape);
                let out_inner = *out_bodies.last().unwrap_or(&self.entry);
                // rank-0 accumulator cell
                let acc_ty = Type::memref(&[], Type::F64, MemorySpace::Plm);
                let acc = crate::dialects::core::alloc(&mut self.dst, out_inner, acc_ty);
                let init = match kind.as_str() {
                    "sum" | "mean" => 0.0,
                    "max" => f64::NEG_INFINITY,
                    "min" => f64::INFINITY,
                    other => return Err(IrError::Type(format!("bad reduce kind '{other}'"))),
                };
                let init_v = crate::dialects::core::const_f64(&mut self.dst, out_inner, init);
                self.store(out_inner, init_v, acc, &[]);
                let (red_ivs, red_bodies) = self.open_loop_nest(out_inner, &red_bounds);
                let red_inner = *red_bodies.last().unwrap_or(&out_inner);
                // combined input indices
                let mut in_indices = vec![ivs_placeholder(); in_shape.len()];
                for (k, &d) in kept.iter().enumerate() {
                    in_indices[d] = out_ivs[k];
                }
                for (k, &d) in dims.iter().enumerate() {
                    in_indices[d] = red_ivs[k];
                }
                let v = self.load(red_inner, input, &in_indices);
                let cur = self.load(red_inner, acc, &[]);
                let combined = match kind.as_str() {
                    "sum" | "mean" => crate::dialects::core::binary(
                        &mut self.dst,
                        red_inner,
                        "arith.addf",
                        cur,
                        v,
                    ),
                    "max" => crate::dialects::core::binary(
                        &mut self.dst,
                        red_inner,
                        "arith.maxf",
                        cur,
                        v,
                    ),
                    _ => crate::dialects::core::binary(
                        &mut self.dst,
                        red_inner,
                        "arith.minf",
                        cur,
                        v,
                    ),
                };
                self.store(red_inner, combined, acc, &[]);
                self.close_loop_nest(&red_bodies);
                let mut final_v = self.load(out_inner, acc, &[]);
                if kind == "mean" {
                    let n =
                        crate::dialects::core::const_f64(&mut self.dst, out_inner, count as f64);
                    final_v = crate::dialects::core::binary(
                        &mut self.dst,
                        out_inner,
                        "arith.divf",
                        final_v,
                        n,
                    );
                }
                self.store(out_inner, final_v, out, &out_ivs);
                self.close_loop_nest(&out_bodies);
                Ok(())
            }
            "teil.contract" => {
                let lhs = o
                    .str_attr("lhs_indices")
                    .ok_or_else(|| IrError::Type("contract missing lhs_indices".into()))?;
                let rhs = o
                    .str_attr("rhs_indices")
                    .ok_or_else(|| IrError::Type("contract missing rhs_indices".into()))?;
                let out = o
                    .str_attr("out_indices")
                    .ok_or_else(|| IrError::Type("contract missing out_indices".into()))?;
                let notation = format!("{lhs},{rhs}->{out}");
                self.lower_einsum(&o.operands.clone(), o.results[0], &notation)
            }
            "esn.einsum" => {
                let notation = o
                    .str_attr("notation")
                    .ok_or_else(|| IrError::Type("einsum missing notation".into()))?
                    .to_string();
                self.lower_einsum(&o.operands.clone(), o.results[0], &notation)
            }
            other => Err(IrError::Type(format!(
                "teil-to-loops lowering does not support '{other}'"
            ))),
        }
    }

    fn lower_elementwise_binary(
        &mut self,
        o: &crate::module::Operation,
        arith: &str,
    ) -> IrResult<()> {
        let a_shape = static_shape(self.src.value_type(o.operands[0]))?;
        let b_shape = static_shape(self.src.value_type(o.operands[1]))?;
        let out_shape = static_shape(self.src.value_type(o.results[0]))?;
        let a = self.mapped(o.operands[0])?;
        let b = self.mapped(o.operands[1])?;
        let out = self.alloc_result(o.results[0])?;
        let (ivs, bodies) = self.open_loop_nest(self.entry, &out_shape);
        let inner = *bodies.last().unwrap_or(&self.entry);
        let ai = self.broadcast_indices(inner, &ivs, &out_shape, &a_shape);
        let bi = self.broadcast_indices(inner, &ivs, &out_shape, &b_shape);
        let av = self.load(inner, a, &ai);
        let bv = self.load(inner, b, &bi);
        let rv = crate::dialects::core::binary(&mut self.dst, inner, arith, av, bv);
        self.store(inner, rv, out, &ivs);
        self.close_loop_nest(&bodies);
        Ok(())
    }

    fn lower_einsum(
        &mut self,
        operands: &[ValueId],
        result: ValueId,
        notation: &str,
    ) -> IrResult<()> {
        let (input_ixs, out_ix) = parse_einsum_notation(notation)?;
        if input_ixs.len() != operands.len() {
            return Err(IrError::Type("einsum operand count mismatch".into()));
        }
        // Determine extents per index letter.
        let mut extent: HashMap<char, u64> = HashMap::new();
        for (ix, &operand) in input_ixs.iter().zip(operands) {
            let shape = static_shape(self.src.value_type(operand))?;
            for (c, &d) in ix.iter().zip(&shape) {
                match extent.get(c) {
                    Some(&prev) if prev != d => {
                        return Err(IrError::Type(format!(
                            "einsum index '{c}' bound to both {prev} and {d}"
                        )))
                    }
                    _ => {
                        extent.insert(*c, d);
                    }
                }
            }
        }
        let mut sum_ix: Vec<char> = Vec::new();
        for ix in &input_ixs {
            for c in ix {
                if !out_ix.contains(c) && !sum_ix.contains(c) {
                    sum_ix.push(*c);
                }
            }
        }
        let out_bounds: Vec<u64> = out_ix.iter().map(|c| extent[c]).collect();
        let sum_bounds: Vec<u64> = sum_ix.iter().map(|c| extent[c]).collect();

        let inputs: Vec<ValueId> = operands
            .iter()
            .map(|&v| self.mapped(v))
            .collect::<IrResult<_>>()?;
        let out = self.alloc_result(result)?;

        let (out_ivs, out_bodies) = self.open_loop_nest(self.entry, &out_bounds);
        let out_inner = *out_bodies.last().unwrap_or(&self.entry);
        let acc_ty = Type::memref(&[], Type::F64, MemorySpace::Plm);
        let acc = crate::dialects::core::alloc(&mut self.dst, out_inner, acc_ty);
        let zero = crate::dialects::core::const_f64(&mut self.dst, out_inner, 0.0);
        self.store(out_inner, zero, acc, &[]);

        let (sum_ivs, sum_bodies) = self.open_loop_nest(out_inner, &sum_bounds);
        let sum_inner = *sum_bodies.last().unwrap_or(&out_inner);

        let iv_of = |c: &char| -> ValueId {
            if let Some(pos) = out_ix.iter().position(|x| x == c) {
                out_ivs[pos]
            } else {
                let pos = sum_ix
                    .iter()
                    .position(|x| x == c)
                    .expect("index classified");
                sum_ivs[pos]
            }
        };

        let mut product: Option<ValueId> = None;
        for (ix, &input) in input_ixs.iter().zip(&inputs) {
            let indices: Vec<ValueId> = ix.iter().map(iv_of).collect();
            let v = self.load(sum_inner, input, &indices);
            product = Some(match product {
                None => v,
                Some(p) => {
                    crate::dialects::core::binary(&mut self.dst, sum_inner, "arith.mulf", p, v)
                }
            });
        }
        let product = product.ok_or_else(|| IrError::Type("einsum with no inputs".into()))?;
        let cur = self.load(sum_inner, acc, &[]);
        let next =
            crate::dialects::core::binary(&mut self.dst, sum_inner, "arith.addf", cur, product);
        self.store(sum_inner, next, acc, &[]);
        self.close_loop_nest(&sum_bodies);

        let final_v = self.load(out_inner, acc, &[]);
        self.store(out_inner, final_v, out, &out_ivs);
        self.close_loop_nest(&out_bodies);
        Ok(())
    }
}

fn ivs_placeholder() -> ValueId {
    ValueId::from_raw(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Buffer, Interpreter, Value};
    use crate::registry::Context;
    use crate::verify::verify_module;

    /// Builds an ekl.kernel, returns (module, kernel body block).
    fn kernel(name: &str) -> (Module, BlockId) {
        let mut m = Module::new();
        let top = m.top_block();
        let k = m
            .build_op("ekl.kernel", [], [])
            .attr("sym_name", name)
            .regions(1)
            .append_to(top);
        let region = m.op(k).unwrap().regions[0];
        let body = m.add_block(region, &[]);
        (m, body)
    }

    fn input(m: &mut Module, body: BlockId, name: &str, shape: &[u64]) -> ValueId {
        let op = m
            .build_op("ekl.input", [], [Type::tensor(shape, Type::F64)])
            .attr("name", name)
            .append_to(body);
        single_result(m, op)
    }

    fn output(m: &mut Module, body: BlockId, name: &str, value: ValueId) {
        m.build_op("ekl.output", [value], [])
            .attr("name", name)
            .append_to(body);
    }

    fn run_lowered(
        lowered: &Module,
        name: &str,
        inputs: &[Buffer],
        out_shapes: &[&[u64]],
    ) -> Vec<Vec<f64>> {
        let mut interp = Interpreter::new();
        let mut args = Vec::new();
        for b in inputs {
            args.push(interp.alloc_buffer(b.clone()));
        }
        let mut out_handles = Vec::new();
        for s in out_shapes {
            let h = interp.alloc_buffer(Buffer::zeros(s));
            out_handles.push(h.clone());
            args.push(h);
        }
        interp.run_function(lowered, name, &args).unwrap();
        out_handles
            .iter()
            .map(|h| {
                let Value::Buffer(i) = h else { unreachable!() };
                interp.buffer(*i).data.clone()
            })
            .collect()
    }

    #[test]
    fn lower_elementwise_add_with_broadcast() {
        let (mut m, body) = kernel("addk");
        let a = input(&mut m, body, "a", &[2, 3]);
        let b = input(&mut m, body, "b", &[1, 3]);
        let sum = m
            .build_op("teil.add", [a, b], [Type::tensor(&[2, 3], Type::F64)])
            .append_to(body);
        let sv = single_result(&m, sum);
        output(&mut m, body, "out", sv);
        m.build_op("ekl.yield", [], []).append_to(body);

        let lowered = lower_kernel_to_loops(&m, "addk").unwrap();
        verify_module(&Context::with_all_dialects(), &lowered).unwrap();

        let a_buf = Buffer::from_data(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b_buf = Buffer::from_data(&[1, 3], vec![10.0, 20.0, 30.0]);
        let outs = run_lowered(&lowered, "addk", &[a_buf, b_buf], &[&[2, 3]]);
        assert_eq!(outs[0], vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn lower_matmul_einsum() {
        let (mut m, body) = kernel("mm");
        let a = input(&mut m, body, "a", &[2, 3]);
        let b = input(&mut m, body, "b", &[3, 2]);
        let mm = m
            .build_op("esn.einsum", [a, b], [Type::tensor(&[2, 2], Type::F64)])
            .attr("notation", "ij,jk->ik")
            .append_to(body);
        let mv = single_result(&m, mm);
        output(&mut m, body, "c", mv);
        m.build_op("ekl.yield", [], []).append_to(body);

        let lowered = lower_kernel_to_loops(&m, "mm").unwrap();
        verify_module(&Context::with_all_dialects(), &lowered).unwrap();

        let a_buf = Buffer::from_data(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b_buf = Buffer::from_data(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let outs = run_lowered(&lowered, "mm", &[a_buf, b_buf], &[&[2, 2]]);
        // [[58, 64], [139, 154]]
        assert_eq!(outs[0], vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn lower_reduce_sum_and_mean() {
        let (mut m, body) = kernel("red");
        let a = input(&mut m, body, "a", &[2, 4]);
        let s = m
            .build_op("teil.reduce", [a], [Type::tensor(&[2], Type::F64)])
            .attr("dims", Attribute::int_array([1]))
            .attr("kind", "sum")
            .append_to(body);
        let sv = single_result(&m, s);
        let mean = m
            .build_op("teil.reduce", [a], [Type::tensor(&[2], Type::F64)])
            .attr("dims", Attribute::int_array([1]))
            .attr("kind", "mean")
            .append_to(body);
        let mv = single_result(&m, mean);
        output(&mut m, body, "sum", sv);
        output(&mut m, body, "mean", mv);
        m.build_op("ekl.yield", [], []).append_to(body);

        let lowered = lower_kernel_to_loops(&m, "red").unwrap();
        verify_module(&Context::with_all_dialects(), &lowered).unwrap();
        let a_buf = Buffer::from_data(&[2, 4], vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
        let outs = run_lowered(&lowered, "red", &[a_buf], &[&[2], &[2]]);
        assert_eq!(outs[0], vec![10.0, 100.0]);
        assert_eq!(outs[1], vec![2.5, 25.0]);
    }

    #[test]
    fn lower_gather_subscripted_subscripts() {
        // out[i] = table[idx[i]] — the paper's "subscripted subscripts".
        let (mut m, body) = kernel("gat");
        let table = input(&mut m, body, "table", &[5]);
        let blk = body;
        let idx_op = m
            .build_op("teil.constant", [], [Type::tensor(&[3], Type::Int(32))])
            .attr("value", Attribute::DenseI64(vec![4, 0, 2]))
            .append_to(blk);
        let idx = single_result(&m, idx_op);
        let g = m
            .build_op("teil.gather", [table, idx], [Type::tensor(&[3], Type::F64)])
            .attr("axis", Attribute::Int(0))
            .append_to(body);
        let gv = single_result(&m, g);
        output(&mut m, body, "out", gv);
        m.build_op("ekl.yield", [], []).append_to(body);

        let lowered = lower_kernel_to_loops(&m, "gat").unwrap();
        verify_module(&Context::with_all_dialects(), &lowered).unwrap();
        let table_buf = Buffer::from_data(&[5], vec![10.0, 11.0, 12.0, 13.0, 14.0]);
        let outs = run_lowered(&lowered, "gat", &[table_buf], &[&[3]]);
        assert_eq!(outs[0], vec![14.0, 10.0, 12.0]);
    }

    #[test]
    fn lower_select_and_cmp() {
        // out = select(a > b, a, b)  == elementwise max
        let (mut m, body) = kernel("selk");
        let a = input(&mut m, body, "a", &[4]);
        let b = input(&mut m, body, "b", &[4]);
        let cmp = m
            .build_op("teil.cmp", [a, b], [Type::tensor(&[4], Type::Int(1))])
            .attr("predicate", "gt")
            .append_to(body);
        let cv = single_result(&m, cmp);
        let sel = m
            .build_op("teil.select", [cv, a, b], [Type::tensor(&[4], Type::F64)])
            .append_to(body);
        let sv = single_result(&m, sel);
        output(&mut m, body, "out", sv);
        m.build_op("ekl.yield", [], []).append_to(body);

        let lowered = lower_kernel_to_loops(&m, "selk").unwrap();
        verify_module(&Context::with_all_dialects(), &lowered).unwrap();
        let a_buf = Buffer::from_data(&[4], vec![1.0, 5.0, 3.0, 0.0]);
        let b_buf = Buffer::from_data(&[4], vec![2.0, 4.0, 3.0, -1.0]);
        let outs = run_lowered(&lowered, "selk", &[a_buf, b_buf], &[&[4]]);
        assert_eq!(outs[0], vec![2.0, 5.0, 3.0, 0.0]);
    }

    #[test]
    fn lower_transpose_and_reshape() {
        let (mut m, body) = kernel("tr");
        let a = input(&mut m, body, "a", &[2, 3]);
        let t = m
            .build_op("teil.transpose", [a], [Type::tensor(&[3, 2], Type::F64)])
            .attr("perm", Attribute::int_array([1, 0]))
            .append_to(body);
        let tv = single_result(&m, t);
        let r = m
            .build_op("teil.reshape", [tv], [Type::tensor(&[6], Type::F64)])
            .append_to(body);
        let rv = single_result(&m, r);
        output(&mut m, body, "out", rv);
        m.build_op("ekl.yield", [], []).append_to(body);

        let lowered = lower_kernel_to_loops(&m, "tr").unwrap();
        verify_module(&Context::with_all_dialects(), &lowered).unwrap();
        let a_buf = Buffer::from_data(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let outs = run_lowered(&lowered, "tr", &[a_buf], &[&[6]]);
        // transpose: [[1,4],[2,5],[3,6]] then flatten
        assert_eq!(outs[0], vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn lowering_missing_kernel_errors() {
        let m = Module::new();
        assert!(lower_kernel_to_loops(&m, "ghost").is_err());
    }
}
