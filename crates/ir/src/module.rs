//! The IR container: modules, operations, regions, blocks and SSA values.
//!
//! The design follows MLIR's structure — operations own regions, regions
//! own blocks, blocks own operations and block arguments — but stores all
//! entities in arenas indexed by the ids from [`crate::ids`]. This keeps
//! the graph acyclic from the borrow checker's point of view and makes
//! destructive rewrites (erase, replace-all-uses) cheap and safe.

use std::collections::BTreeMap;

use crate::attr::Attribute;
use crate::error::{IrError, IrResult};
use crate::ids::{BlockId, OpId, RegionId, ValueId};
use crate::intern::Symbol;
use crate::types::Type;

/// Where an SSA value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// The `index`-th result of operation `op`.
    OpResult {
        /// Defining operation.
        op: OpId,
        /// Result position.
        index: usize,
    },
    /// The `index`-th argument of block `block`.
    BlockArg {
        /// Owning block.
        block: BlockId,
        /// Argument position.
        index: usize,
    },
}

/// Metadata for one SSA value.
#[derive(Debug, Clone)]
pub struct ValueInfo {
    /// The value's type.
    pub ty: Type,
    /// The value's definition site.
    pub def: ValueDef,
}

/// An operation: the unit of IR semantics.
///
/// `name` is the fully qualified `dialect.op` name. Structure (operands,
/// results, attributes, nested regions) is uniform across all dialects;
/// meaning is given by the dialect registry ([`crate::registry`]).
#[derive(Debug, Clone)]
pub struct Operation {
    /// Fully qualified interned name, e.g. `"arith.addf"`. A [`Symbol`]
    /// is `Copy` and compares by id, so hot paths (CSE keys, trait
    /// dispatch) never clone or hash the text.
    pub name: Symbol,
    /// SSA operands.
    pub operands: Vec<ValueId>,
    /// SSA results.
    pub results: Vec<ValueId>,
    /// Named attributes (sorted map for deterministic printing).
    pub attributes: BTreeMap<String, Attribute>,
    /// Nested regions.
    pub regions: Vec<RegionId>,
    /// The block containing this op, if attached.
    pub parent_block: Option<BlockId>,
}

impl Operation {
    /// The dialect prefix of the op name (`"arith"` for `"arith.addf"`).
    pub fn dialect(&self) -> &'static str {
        let name = self.name.as_str();
        name.split('.').next().unwrap_or(name)
    }

    /// The op suffix of the name (`"addf"` for `"arith.addf"`).
    pub fn short_name(&self) -> &'static str {
        let name = self.name.as_str();
        name.split_once('.').map(|(_, s)| s).unwrap_or(name)
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&Attribute> {
        self.attributes.get(name)
    }

    /// Looks up an integer attribute by name.
    pub fn int_attr(&self, name: &str) -> Option<i64> {
        self.attr(name).and_then(Attribute::as_int)
    }

    /// Looks up a string attribute by name.
    pub fn str_attr(&self, name: &str) -> Option<&str> {
        self.attr(name).and_then(Attribute::as_str)
    }
}

/// A region: a list of blocks nested under an operation.
#[derive(Debug, Clone)]
pub struct Region {
    /// Blocks in order; the first is the entry block.
    pub blocks: Vec<BlockId>,
    /// The operation owning this region (`None` only for the top region).
    pub parent_op: Option<OpId>,
}

/// A basic block: arguments plus an ordered list of operations.
#[derive(Debug, Clone)]
pub struct Block {
    /// Block arguments.
    pub args: Vec<ValueId>,
    /// Operations in program order.
    pub ops: Vec<OpId>,
    /// The region owning this block.
    pub parent_region: RegionId,
}

/// A module: the root IR container holding all arenas.
///
/// A fresh module contains a single top-level region with one entry block,
/// mirroring MLIR's implicit `builtin.module` body.
///
/// # Examples
///
/// ```
/// use everest_ir::module::Module;
/// use everest_ir::types::Type;
/// use everest_ir::attr::Attribute;
///
/// let mut m = Module::new();
/// let block = m.top_block();
/// let c = m
///     .build_op("arith.constant", [], [Type::F64])
///     .attr("value", Attribute::Float(1.5))
///     .append_to(block);
/// assert_eq!(m.op(c).unwrap().name, "arith.constant");
/// ```
#[derive(Debug, Clone)]
pub struct Module {
    ops: Vec<Option<Operation>>,
    regions: Vec<Region>,
    blocks: Vec<Block>,
    values: Vec<ValueInfo>,
    top: RegionId,
}

impl Default for Module {
    fn default() -> Self {
        Self::new()
    }
}

impl Module {
    /// Creates an empty module with one top-level region and entry block.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty module whose arenas are pre-sized for roughly
    /// `ops` operations. Lowerings that know their output size up front
    /// (one op per AST node, one op per dataflow edge, ...) use this to
    /// avoid arena regrowth mid-build; the hint is just a reservation,
    /// never a limit.
    pub fn with_capacity(ops: usize) -> Self {
        let mut m = Module {
            ops: Vec::with_capacity(ops),
            regions: Vec::with_capacity(1 + ops / 8),
            blocks: Vec::with_capacity(1 + ops / 8),
            // One result per op is the common shape; block args are noise.
            values: Vec::with_capacity(ops),
            top: RegionId::from_raw(0),
        };
        let top = m.alloc_region(None);
        m.top = top;
        m.add_block(top, &[]);
        m
    }

    /// The top-level region.
    pub fn top_region(&self) -> RegionId {
        self.top
    }

    /// The entry block of the top-level region.
    pub fn top_block(&self) -> BlockId {
        self.regions[self.top.index()].blocks[0]
    }

    // ---- arena accessors -------------------------------------------------

    /// Returns the operation for `id`, or `None` if it was erased.
    pub fn op(&self, id: OpId) -> Option<&Operation> {
        self.ops.get(id.index()).and_then(|o| o.as_ref())
    }

    /// Mutable access to an operation.
    pub fn op_mut(&mut self, id: OpId) -> Option<&mut Operation> {
        self.ops.get_mut(id.index()).and_then(|o| o.as_mut())
    }

    /// Returns the region for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Returns the block for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns the value info for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn value(&self, id: ValueId) -> &ValueInfo {
        &self.values[id.index()]
    }

    /// Returns the type of a value.
    pub fn value_type(&self, id: ValueId) -> &Type {
        &self.values[id.index()].ty
    }

    /// Number of live (non-erased) operations in the module.
    pub fn num_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_some()).count()
    }

    /// Iterates every live operation in the arena (attached or
    /// detached) with its id, in id order. This is the complete use
    /// universe: analyses that count operand uses over it (e.g. DCE's
    /// per-round use counts) see exactly what [`Module::is_unused`]
    /// sees, including detached ops a pass has built but not yet
    /// inserted.
    pub fn live_ops(&self) -> impl Iterator<Item = (OpId, &Operation)> {
        self.ops
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|op| (OpId::from_raw(i as u32), op)))
    }

    /// Total number of blocks ever allocated (blocks are never reclaimed).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of SSA values ever allocated (op results plus block
    /// arguments; values are never reclaimed). Dense per-value analysis
    /// state can be indexed by `ValueId::index()` up to this bound.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    // ---- construction ----------------------------------------------------

    fn alloc_region(&mut self, parent_op: Option<OpId>) -> RegionId {
        let id = RegionId::from_raw(self.regions.len() as u32);
        self.regions.push(Region {
            blocks: Vec::new(),
            parent_op,
        });
        id
    }

    /// Appends a new block with the given argument types to a region.
    pub fn add_block(&mut self, region: RegionId, arg_types: &[Type]) -> BlockId {
        let id = BlockId::from_raw(self.blocks.len() as u32);
        let args = arg_types
            .iter()
            .enumerate()
            .map(|(index, ty)| {
                self.alloc_value(ValueInfo {
                    ty: ty.clone(),
                    def: ValueDef::BlockArg { block: id, index },
                })
            })
            .collect();
        self.blocks.push(Block {
            args,
            ops: Vec::new(),
            parent_region: region,
        });
        self.regions[region.index()].blocks.push(id);
        id
    }

    fn alloc_value(&mut self, info: ValueInfo) -> ValueId {
        let id = ValueId::from_raw(self.values.len() as u32);
        self.values.push(info);
        id
    }

    /// Creates a detached operation. Prefer [`Module::build_op`].
    pub fn create_op(
        &mut self,
        name: impl Into<Symbol>,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attributes: BTreeMap<String, Attribute>,
        num_regions: usize,
    ) -> OpId {
        let id = OpId::from_raw(self.ops.len() as u32);
        // Reserve the slot first so nested allocations can't race the id.
        self.ops.push(None);
        let results = result_types
            .into_iter()
            .enumerate()
            .map(|(index, ty)| {
                self.alloc_value(ValueInfo {
                    ty,
                    def: ValueDef::OpResult { op: id, index },
                })
            })
            .collect();
        let regions = (0..num_regions)
            .map(|_| self.alloc_region(Some(id)))
            .collect();
        self.ops[id.index()] = Some(Operation {
            name: name.into(),
            operands,
            results,
            attributes,
            regions,
            parent_block: None,
        });
        id
    }

    /// Starts a fluent op builder.
    pub fn build_op<O, T>(&mut self, name: &str, operands: O, result_types: T) -> OpBuilder<'_>
    where
        O: IntoIterator<Item = ValueId>,
        T: IntoIterator<Item = Type>,
    {
        OpBuilder {
            module: self,
            name: Symbol::new(name),
            operands: operands.into_iter().collect(),
            result_types: result_types.into_iter().collect(),
            attributes: BTreeMap::new(),
            num_regions: 0,
        }
    }

    /// Appends a detached op to the end of a block.
    ///
    /// # Panics
    ///
    /// Panics if the op was erased or is already attached.
    pub fn append_op(&mut self, block: BlockId, op: OpId) {
        let operation = self.ops[op.index()]
            .as_mut()
            .expect("cannot append an erased op");
        assert!(
            operation.parent_block.is_none(),
            "op is already attached to a block"
        );
        operation.parent_block = Some(block);
        self.blocks[block.index()].ops.push(op);
    }

    /// Inserts a detached op before `before` inside the same block.
    ///
    /// # Panics
    ///
    /// Panics if `before` is detached or erased.
    pub fn insert_op_before(&mut self, before: OpId, op: OpId) {
        let block = self
            .op(before)
            .and_then(|o| o.parent_block)
            .expect("'before' op must be attached");
        let pos = self.blocks[block.index()]
            .ops
            .iter()
            .position(|&o| o == before)
            .expect("'before' op not found in its parent block");
        let operation = self.ops[op.index()]
            .as_mut()
            .expect("cannot insert an erased op");
        operation.parent_block = Some(block);
        self.blocks[block.index()].ops.insert(pos, op);
    }

    // ---- mutation ---------------------------------------------------------

    /// Detaches `op` from its current block and re-inserts it before
    /// `before` (which may live in a different block).
    ///
    /// # Panics
    ///
    /// Panics if either op is erased or `before` is detached.
    pub fn move_op_before(&mut self, op: OpId, before: OpId) {
        let current = self.op(op).expect("cannot move an erased op").parent_block;
        if let Some(block) = current {
            self.blocks[block.index()].ops.retain(|&o| o != op);
            self.ops[op.index()]
                .as_mut()
                .expect("just observed live")
                .parent_block = None;
        }
        self.insert_op_before(before, op);
    }

    /// Erases an operation (and recursively its regions) from the module.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidId`] if the op was already erased.
    pub fn erase_op(&mut self, op: OpId) -> IrResult<()> {
        let operation = self.ops[op.index()]
            .take()
            .ok_or_else(|| IrError::InvalidId(format!("op {op} already erased")))?;
        if let Some(block) = operation.parent_block {
            self.blocks[block.index()].ops.retain(|&o| o != op);
        }
        for region in operation.regions {
            let blocks = std::mem::take(&mut self.regions[region.index()].blocks);
            for block in blocks {
                let ops = std::mem::take(&mut self.blocks[block.index()].ops);
                for nested in ops {
                    // Nested ops were attached to this block; detach first so
                    // the recursive call does not touch the drained list.
                    if let Some(inner) = self.ops[nested.index()].as_mut() {
                        inner.parent_block = None;
                    }
                    self.erase_op(nested)?;
                }
            }
        }
        Ok(())
    }

    /// Replaces every use of `from` with `to` across the whole module.
    ///
    /// Returns the number of operand slots rewritten.
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) -> usize {
        let mut count = 0;
        for slot in self.ops.iter_mut().flatten() {
            for operand in &mut slot.operands {
                if *operand == from {
                    *operand = to;
                    count += 1;
                }
            }
        }
        count
    }

    /// Collects all `(op, operand_index)` uses of a value.
    pub fn uses(&self, value: ValueId) -> Vec<(OpId, usize)> {
        let mut uses = Vec::new();
        for (i, slot) in self.ops.iter().enumerate() {
            if let Some(op) = slot {
                for (j, &operand) in op.operands.iter().enumerate() {
                    if operand == value {
                        uses.push((OpId::from_raw(i as u32), j));
                    }
                }
            }
        }
        uses
    }

    /// Returns `true` if the value has no uses.
    pub fn is_unused(&self, value: ValueId) -> bool {
        self.ops
            .iter()
            .flatten()
            .all(|op| op.operands.iter().all(|&operand| operand != value))
    }

    // ---- traversal ---------------------------------------------------------

    /// Walks all live ops in the module in pre-order (region nesting order).
    pub fn walk_ops(&self) -> Vec<OpId> {
        let mut out = Vec::new();
        self.walk_region(self.top, &mut out);
        out
    }

    /// Walks all live ops nested under (and excluding) the given op.
    pub fn walk_nested(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        if let Some(operation) = self.op(op) {
            for &region in &operation.regions {
                self.walk_region(region, &mut out);
            }
        }
        out
    }

    fn walk_region(&self, region: RegionId, out: &mut Vec<OpId>) {
        for &block in &self.regions[region.index()].blocks {
            for &op in &self.blocks[block.index()].ops {
                out.push(op);
                if let Some(operation) = self.op(op) {
                    for &nested in &operation.regions {
                        self.walk_region(nested, out);
                    }
                }
            }
        }
    }

    /// Finds the first op with the given fully qualified name.
    pub fn find_op(&self, name: &str) -> Option<OpId> {
        self.walk_ops()
            .into_iter()
            .find(|&id| self.op(id).is_some_and(|o| o.name == name))
    }

    /// Finds a symbol-defining op (one with a `sym_name` attribute equal to
    /// `symbol`), e.g. a `func.func`.
    pub fn lookup_symbol(&self, symbol: &str) -> Option<OpId> {
        self.walk_ops().into_iter().find(|&id| {
            self.op(id)
                .and_then(|o| o.str_attr("sym_name"))
                .is_some_and(|s| s == symbol)
        })
    }
}

/// Fluent builder returned by [`Module::build_op`].
///
/// Terminal methods: [`OpBuilder::append_to`] (attach to a block) and
/// [`OpBuilder::detached`] (leave unattached).
pub struct OpBuilder<'m> {
    module: &'m mut Module,
    name: Symbol,
    operands: Vec<ValueId>,
    result_types: Vec<Type>,
    attributes: BTreeMap<String, Attribute>,
    num_regions: usize,
}

impl<'m> OpBuilder<'m> {
    /// Adds an attribute.
    pub fn attr(mut self, name: &str, value: impl Into<Attribute>) -> Self {
        self.attributes.insert(name.to_string(), value.into());
        self
    }

    /// Requests `n` empty nested regions.
    pub fn regions(mut self, n: usize) -> Self {
        self.num_regions = n;
        self
    }

    /// Builds the op and appends it to `block`; returns the op id.
    pub fn append_to(self, block: BlockId) -> OpId {
        let module = self.module;
        let id = module.create_op(
            self.name,
            self.operands,
            self.result_types,
            self.attributes,
            self.num_regions,
        );
        module.append_op(block, id);
        id
    }

    /// Builds the op detached from any block; returns the op id.
    pub fn detached(self) -> OpId {
        self.module.create_op(
            self.name,
            self.operands,
            self.result_types,
            self.attributes,
            self.num_regions,
        )
    }
}

/// Convenience: returns the single result of an op.
///
/// # Panics
///
/// Panics if the op is erased or does not have exactly one result.
pub fn single_result(module: &Module, op: OpId) -> ValueId {
    let operation = module.op(op).expect("op erased");
    assert_eq!(
        operation.results.len(),
        1,
        "op {} must have exactly one result",
        operation.name
    );
    operation.results[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(m: &mut Module, v: f64) -> OpId {
        let block = m.top_block();
        m.build_op("arith.constant", [], [Type::F64])
            .attr("value", Attribute::Float(v))
            .append_to(block)
    }

    #[test]
    fn build_and_query_simple_op() {
        let mut m = Module::new();
        let c = constant(&mut m, 4.0);
        let op = m.op(c).unwrap();
        assert_eq!(op.dialect(), "arith");
        assert_eq!(op.short_name(), "constant");
        assert_eq!(op.results.len(), 1);
        let v = op.results[0];
        assert_eq!(m.value_type(v), &Type::F64);
        assert_eq!(m.value(v).def, ValueDef::OpResult { op: c, index: 0 });
    }

    #[test]
    fn def_use_chain() {
        let mut m = Module::new();
        let block = m.top_block();
        let a = constant(&mut m, 1.0);
        let b = constant(&mut m, 2.0);
        let va = single_result(&m, a);
        let vb = single_result(&m, b);
        let add = m
            .build_op("arith.addf", [va, vb], [Type::F64])
            .append_to(block);
        assert_eq!(m.uses(va), vec![(add, 0)]);
        assert_eq!(m.uses(vb), vec![(add, 1)]);
        assert!(m.is_unused(single_result(&m, add)));
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut m = Module::new();
        let block = m.top_block();
        let a = constant(&mut m, 1.0);
        let b = constant(&mut m, 2.0);
        let va = single_result(&m, a);
        let vb = single_result(&m, b);
        let add = m
            .build_op("arith.addf", [va, va], [Type::F64])
            .append_to(block);
        let n = m.replace_all_uses(va, vb);
        assert_eq!(n, 2);
        assert_eq!(m.op(add).unwrap().operands, vec![vb, vb]);
        assert!(m.is_unused(va));
    }

    #[test]
    fn erase_removes_from_block_and_arena() {
        let mut m = Module::new();
        let c = constant(&mut m, 1.0);
        assert_eq!(m.num_ops(), 1);
        m.erase_op(c).unwrap();
        assert_eq!(m.num_ops(), 0);
        assert!(m.op(c).is_none());
        assert!(m.block(m.top_block()).ops.is_empty());
        assert!(m.erase_op(c).is_err());
    }

    #[test]
    fn erase_op_with_region_erases_nested_ops() {
        let mut m = Module::new();
        let block = m.top_block();
        let outer = m.build_op("scf.for", [], []).regions(1).append_to(block);
        let region = m.op(outer).unwrap().regions[0];
        let body = m.add_block(region, &[Type::Index]);
        let inner = m
            .build_op("arith.constant", [], [Type::F64])
            .attr("value", Attribute::Float(0.0))
            .append_to(body);
        assert_eq!(m.num_ops(), 2);
        m.erase_op(outer).unwrap();
        assert_eq!(m.num_ops(), 0);
        assert!(m.op(inner).is_none());
    }

    #[test]
    fn walk_visits_nested_ops_preorder() {
        let mut m = Module::new();
        let block = m.top_block();
        let outer = m.build_op("scf.for", [], []).regions(1).append_to(block);
        let region = m.op(outer).unwrap().regions[0];
        let body = m.add_block(region, &[]);
        let inner = m.build_op("scf.yield", [], []).append_to(body);
        let after = constant(&mut m, 2.0);
        assert_eq!(m.walk_ops(), vec![outer, inner, after]);
        assert_eq!(m.walk_nested(outer), vec![inner]);
    }

    #[test]
    fn block_arguments_have_defs() {
        let mut m = Module::new();
        let top = m.top_region();
        let bb = m.add_block(top, &[Type::F64, Type::Index]);
        let args = m.block(bb).args.clone();
        assert_eq!(args.len(), 2);
        assert_eq!(
            m.value(args[1]).def,
            ValueDef::BlockArg {
                block: bb,
                index: 1
            }
        );
        assert_eq!(m.value_type(args[0]), &Type::F64);
    }

    #[test]
    fn insert_before_preserves_order() {
        let mut m = Module::new();
        let a = constant(&mut m, 1.0);
        let b = constant(&mut m, 2.0);
        let c = m
            .build_op("arith.constant", [], [Type::F64])
            .attr("value", Attribute::Float(3.0))
            .detached();
        m.insert_op_before(b, c);
        assert_eq!(m.block(m.top_block()).ops, vec![a, c, b]);
    }

    #[test]
    fn lookup_symbol_finds_functions() {
        let mut m = Module::new();
        let block = m.top_block();
        let f = m
            .build_op("func.func", [], [])
            .attr("sym_name", "rrtmg")
            .regions(1)
            .append_to(block);
        assert_eq!(m.lookup_symbol("rrtmg"), Some(f));
        assert_eq!(m.lookup_symbol("missing"), None);
    }
}
