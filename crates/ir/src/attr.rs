//! Attributes: compile-time constant metadata attached to operations.

use std::collections::BTreeMap;
use std::fmt;

use crate::types::Type;

/// A compile-time constant attached to an operation under a name.
///
/// Attributes carry everything that is known statically: constant values,
/// symbol names, index maps for Einstein-notation contractions, platform
/// parameters, and so on.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// A type attribute (e.g. the function type of a `func.func`).
    Ty(Type),
    /// A homogeneous or heterogeneous list.
    Array(Vec<Attribute>),
    /// A nested dictionary.
    Dict(BTreeMap<String, Attribute>),
    /// A reference to a symbol defined elsewhere (`@name`).
    SymbolRef(String),
    /// Dense floating-point data (constant tensors).
    DenseF64(Vec<f64>),
    /// Dense integer data (index tables, lookup tables).
    DenseI64(Vec<i64>),
}

impl Attribute {
    /// Returns the integer payload, if this is an [`Attribute::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, accepting both `Float` and `Int`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attribute::Float(v) => Some(*v),
            Attribute::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the type payload, if this is a `Ty`.
    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attribute::Ty(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the array payload, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the symbol name, if this is a `SymbolRef`.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Attribute::SymbolRef(s) => Some(s),
            _ => None,
        }
    }

    /// Returns dense f64 data, if this is a `DenseF64`.
    pub fn as_dense_f64(&self) -> Option<&[f64]> {
        match self {
            Attribute::DenseF64(d) => Some(d),
            _ => None,
        }
    }

    /// Returns dense i64 data, if this is a `DenseI64`.
    pub fn as_dense_i64(&self) -> Option<&[i64]> {
        match self {
            Attribute::DenseI64(d) => Some(d),
            _ => None,
        }
    }

    /// Builds an array attribute of integers.
    pub fn int_array<I: IntoIterator<Item = i64>>(values: I) -> Attribute {
        Attribute::Array(values.into_iter().map(Attribute::Int).collect())
    }

    /// Builds an array attribute of strings.
    pub fn str_array<I, S>(values: I) -> Attribute
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Attribute::Array(
            values
                .into_iter()
                .map(|s| Attribute::Str(s.into()))
                .collect(),
        )
    }

    /// Converts this attribute into its hashable structural mirror,
    /// suitable for use in map keys (e.g. CSE equivalence classes).
    pub fn structural_key(&self) -> AttrKey {
        match self {
            Attribute::Int(v) => AttrKey::Int(*v),
            Attribute::Float(v) => AttrKey::Float(v.to_bits()),
            Attribute::Str(s) => AttrKey::Str(s.clone()),
            Attribute::Bool(b) => AttrKey::Bool(*b),
            Attribute::Ty(t) => AttrKey::Ty(t.clone()),
            Attribute::Array(items) => {
                AttrKey::Array(items.iter().map(Attribute::structural_key).collect())
            }
            Attribute::Dict(entries) => AttrKey::Dict(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.structural_key()))
                    .collect(),
            ),
            Attribute::SymbolRef(s) => AttrKey::SymbolRef(s.clone()),
            Attribute::DenseF64(data) => {
                AttrKey::DenseF64(data.iter().map(|v| v.to_bits()).collect())
            }
            Attribute::DenseI64(data) => AttrKey::DenseI64(data.clone()),
        }
    }
}

/// A hashable structural mirror of [`Attribute`].
///
/// `Attribute` itself cannot implement `Eq`/`Hash` because it carries
/// `f64` payloads; the mirror keys floats by their bit pattern, which
/// distinguishes every attribute that prints differently (unlike
/// string-rendering, which conflates e.g. `Int(1)` with `Float(1.0)`
/// or `Str("1")`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrKey {
    /// Mirror of [`Attribute::Int`].
    Int(i64),
    /// Mirror of [`Attribute::Float`], keyed by bit pattern.
    Float(u64),
    /// Mirror of [`Attribute::Str`].
    Str(String),
    /// Mirror of [`Attribute::Bool`].
    Bool(bool),
    /// Mirror of [`Attribute::Ty`].
    Ty(Type),
    /// Mirror of [`Attribute::Array`].
    Array(Vec<AttrKey>),
    /// Mirror of [`Attribute::Dict`] (sorted by key, as `BTreeMap` iterates).
    Dict(Vec<(String, AttrKey)>),
    /// Mirror of [`Attribute::SymbolRef`].
    SymbolRef(String),
    /// Mirror of [`Attribute::DenseF64`], keyed by bit patterns.
    DenseF64(Vec<u64>),
    /// Mirror of [`Attribute::DenseI64`].
    DenseI64(Vec<i64>),
}

impl From<i64> for Attribute {
    fn from(v: i64) -> Self {
        Attribute::Int(v)
    }
}

impl From<f64> for Attribute {
    fn from(v: f64) -> Self {
        Attribute::Float(v)
    }
}

impl From<bool> for Attribute {
    fn from(v: bool) -> Self {
        Attribute::Bool(v)
    }
}

impl From<&str> for Attribute {
    fn from(v: &str) -> Self {
        Attribute::Str(v.to_string())
    }
}

impl From<String> for Attribute {
    fn from(v: String) -> Self {
        Attribute::Str(v)
    }
}

impl From<Type> for Attribute {
    fn from(v: Type) -> Self {
        Attribute::Ty(v)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Int(v) => write!(f, "{v}"),
            Attribute::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Attribute::Str(s) => write!(f, "\"{}\"", escape(s)),
            Attribute::Bool(b) => write!(f, "{b}"),
            Attribute::Ty(t) => write!(f, "{t}"),
            Attribute::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Attribute::Dict(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, "}}")
            }
            Attribute::SymbolRef(s) => write!(f, "@{s}"),
            Attribute::DenseF64(d) => {
                write!(f, "dense_f64<")?;
                for (i, v) in d.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
            Attribute::DenseI64(d) => {
                write!(f, "dense_i64<")?;
                for (i, v) in d.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Attribute::Int(3).as_int(), Some(3));
        assert_eq!(Attribute::Int(3).as_float(), Some(3.0));
        assert_eq!(Attribute::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Attribute::from("hi").as_str(), Some("hi"));
        assert_eq!(Attribute::Bool(true).as_bool(), Some(true));
        assert_eq!(Attribute::SymbolRef("k".into()).as_symbol(), Some("k"));
        assert_eq!(Attribute::Float(2.5).as_int(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Attribute::Int(-4).to_string(), "-4");
        assert_eq!(Attribute::Float(1.0).to_string(), "1.0");
        assert_eq!(Attribute::Float(0.25).to_string(), "0.25");
        assert_eq!(Attribute::from("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Attribute::int_array([1, 2]).to_string(), "[1, 2]");
        assert_eq!(Attribute::SymbolRef("main".into()).to_string(), "@main");
        assert_eq!(
            Attribute::DenseI64(vec![1, 2, 3]).to_string(),
            "dense_i64<1, 2, 3>"
        );
    }

    #[test]
    fn dict_display_is_sorted() {
        let mut map = BTreeMap::new();
        map.insert("b".to_string(), Attribute::Int(2));
        map.insert("a".to_string(), Attribute::Int(1));
        assert_eq!(Attribute::Dict(map).to_string(), "{a = 1, b = 2}");
    }

    #[test]
    fn str_array_builder() {
        let attr = Attribute::str_array(["x", "y"]);
        assert_eq!(attr.to_string(), "[\"x\", \"y\"]");
    }

    #[test]
    fn dense_accessors() {
        let d = Attribute::DenseF64(vec![1.0, 2.0]);
        assert_eq!(d.as_dense_f64(), Some(&[1.0, 2.0][..]));
        assert_eq!(d.as_dense_i64(), None);
    }
}
