//! Interned operation-name symbols.
//!
//! Op names are a tiny closed vocabulary (`"arith.addf"`, `"scf.for"`,
//! ...) yet the pre-interning IR cloned them as `String`s on every op
//! build, CSE key, and pass dispatch — a heap allocation per touch on
//! the hottest compiler paths. A [`Symbol`] is a process-wide interned
//! name: 16 bytes, `Copy`, equality and hashing on a dense `u32` id,
//! with the backing text leaked once per distinct name so
//! [`Symbol::as_str`] is a free pointer read (no lock, no lookup).
//!
//! Deliberate non-features:
//!
//! * **No `Ord`.** Symbol ids are assigned in first-intern order, which
//!   depends on execution order; sorting by id would be
//!   nondeterministic across runs. Anything needing a stable order
//!   (printing, error listings) must sort by [`Symbol::as_str`].
//! * **No eviction.** The vocabulary is bounded by the dialect
//!   registry; leaking it for the process lifetime is the point.
//!
//! # Examples
//!
//! ```
//! use everest_ir::intern::Symbol;
//!
//! let a = Symbol::new("arith.addf");
//! let b = Symbol::new("arith.addf");
//! assert_eq!(a, b); // same id: interning dedupes
//! assert_eq!(a, "arith.addf"); // compares against plain strings
//! assert_eq!(a.as_str(), "arith.addf");
//! assert_eq!(a.split('.').next(), Some("arith")); // derefs to `str`
//! ```

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// A process-wide interned string, used for operation names.
///
/// Equality and hashing compare the `u32` id (two symbols are equal iff
/// their text is equal); `Deref<Target = str>` and [`Symbol::as_str`]
/// recover the text without touching the interner.
#[derive(Clone, Copy)]
pub struct Symbol {
    id: u32,
    text: &'static str,
}

struct Interner {
    map: HashMap<&'static str, Symbol>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning the canonical symbol for it. The first
    /// intern of a distinct name leaks one copy of the text; every
    /// subsequent intern is a map hit.
    pub fn new(name: &str) -> Symbol {
        let mut interner = interner().lock().expect("symbol interner poisoned");
        if let Some(&sym) = interner.map.get(name) {
            return sym;
        }
        let text: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let sym = Symbol {
            id: interner.map.len() as u32,
            text,
        };
        interner.map.insert(text, sym);
        sym
    }

    /// The interned text. `&'static` because interned names live for
    /// the process: callers can hold the `&str` without borrowing the
    /// symbol.
    pub fn as_str(&self) -> &'static str {
        self.text
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        self.text
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        self.id == other.id
    }
}

impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.text == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.text
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.text
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.text
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.text)
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.text)
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::new(name)
    }
}

impl From<&String> for Symbol {
    fn from(name: &String) -> Symbol {
        Symbol::new(name)
    }
}

impl From<String> for Symbol {
    fn from(name: String) -> Symbol {
        Symbol::new(&name)
    }
}

impl std::borrow::Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_and_preserves_text() {
        let a = Symbol::new("test.intern_a");
        let b = Symbol::new("test.intern_a");
        let c = Symbol::new("test.intern_b");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "test.intern_a");
        // The leaked text is shared, not re-leaked per intern.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn compares_against_strings_both_ways() {
        let s = Symbol::new("test.compare");
        assert_eq!(s, "test.compare");
        assert_eq!("test.compare", s);
        assert_eq!(s, String::from("test.compare"));
        assert_eq!(String::from("test.compare"), s);
        assert!(s != "test.other");
    }

    #[test]
    fn derefs_to_str_methods() {
        let s = Symbol::new("dialect.op_name");
        assert!(s.starts_with("dialect."));
        assert_eq!(s.len(), "dialect.op_name".len());
        assert_eq!(format!("{s}"), "dialect.op_name");
        assert_eq!(format!("{s:?}"), "\"dialect.op_name\"");
    }

    #[test]
    fn hashing_follows_equality() {
        use std::collections::HashMap;
        let mut map: HashMap<Symbol, usize> = HashMap::new();
        map.insert(Symbol::new("test.hash"), 1);
        assert_eq!(map.get(&Symbol::new("test.hash")), Some(&1));
        assert_eq!(map.get(&Symbol::new("test.hash_other")), None);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| Symbol::new("test.concurrent")))
            .collect();
        let symbols: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(symbols.windows(2).all(|w| w[0] == w[1]));
    }
}
