//! Parsing of the generic textual form produced by [`crate::print`].
//!
//! The grammar is the MLIR generic form restricted to what the printer
//! emits:
//!
//! ```text
//! module    ::= "module" "{" op* "}"
//! op        ::= (results "=")? string "(" operands ")" region* attrs? ":" fnty
//! region    ::= "({" block+ "})"
//! block     ::= "^bb(" blockargs "):" op*
//! ```
//!
//! Round-tripping `parse(print(m))` preserves structure, which the test
//! suite exploits heavily (including property tests over random modules).

use std::collections::BTreeMap;

use crate::attr::Attribute;
use crate::error::{IrError, IrResult};
use crate::ids::{BlockId, ValueId};
use crate::module::Module;
use crate::types::{FixedFormat, MemorySpace, PositFormat, Type};

/// Parses the textual form of a module.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with a line number on any syntax error.
pub fn parse_module(text: &str) -> IrResult<Module> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
        values: Vec::new(),
    };
    // Roughly one op per non-empty line; pre-size the arenas so large
    // round-trips don't regrow mid-parse.
    let mut module = Module::with_capacity(text.lines().count());
    p.skip_ws();
    p.expect_word("module")?;
    p.expect_char('{')?;
    let top = module.top_block();
    p.parse_ops_until(&mut module, top, '}')?;
    p.expect_char('}')?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after module"));
    }
    Ok(module)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    /// `%N` → ValueId mapping (dense, indexed by N).
    values: Vec<Option<ValueId>>,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn line(&self) -> usize {
        self.chars[..self.pos.min(self.chars.len())]
            .iter()
            .filter(|&&c| c == '\n')
            .count()
            + 1
    }

    fn error(&self, msg: impl Into<String>) -> IrError {
        IrError::Parse {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += 1;
            } else if c == '/' && self.chars.get(self.pos + 1) == Some(&'/') {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn expect_char(&mut self, c: char) -> IrResult<()> {
        self.skip_ws();
        match self.bump() {
            Some(x) if x == c => Ok(()),
            Some(x) => Err(self.error(format!("expected '{c}', found '{x}'"))),
            None => Err(self.error(format!("expected '{c}', found end of input"))),
        }
    }

    fn eat_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        let end = self.pos + s.len();
        if end <= self.chars.len() && self.chars[self.pos..end].iter().collect::<String>() == s {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, w: &str) -> IrResult<()> {
        self.skip_ws();
        let ident = self.parse_ident()?;
        if ident == w {
            Ok(())
        } else {
            Err(self.error(format!("expected '{w}', found '{ident}'")))
        }
    }

    fn parse_ident(&mut self) -> IrResult<String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected identifier"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn parse_string(&mut self) -> IrResult<String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other);
                    }
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_value_ref(&mut self) -> IrResult<ValueId> {
        self.expect_char('%')?;
        let n = self.parse_usize()?;
        self.values
            .get(n)
            .copied()
            .flatten()
            .ok_or_else(|| self.error(format!("use of undefined value %{n}")))
    }

    fn bind_value(&mut self, n: usize, v: ValueId) {
        if self.values.len() <= n {
            self.values.resize(n + 1, None);
        }
        self.values[n] = Some(v);
    }

    fn parse_usize(&mut self) -> IrResult<usize> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().map_err(|_| self.error("number out of range"))
    }

    fn parse_number_token(&mut self) -> IrResult<String> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                saw_digit = true;
                self.pos += 1;
            } else if c == '.' || c == 'e' || c == 'E' {
                self.pos += 1;
                if self.peek() == Some('-') || self.peek() == Some('+') {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
        if !saw_digit {
            return Err(self.error("expected a numeric literal"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    // -- types ---------------------------------------------------------------

    fn parse_type(&mut self) -> IrResult<Type> {
        self.skip_ws();
        if self.peek() == Some('(') {
            return self.parse_function_type();
        }
        if self.eat_str("!base2.fixed<") {
            let signed = match self.bump() {
                Some('s') => true,
                Some('u') => false,
                _ => return Err(self.error("expected 's' or 'u' in fixed format")),
            };
            let int_bits = self.parse_usize()? as u32;
            self.expect_char(',')?;
            let frac_bits = self.parse_usize()? as u32;
            self.expect_char('>')?;
            return Ok(Type::Fixed(FixedFormat {
                signed,
                int_bits,
                frac_bits,
            }));
        }
        if self.eat_str("!base2.posit<") {
            let width = self.parse_usize()? as u32;
            self.expect_char(',')?;
            let es = self.parse_usize()? as u32;
            self.expect_char('>')?;
            return Ok(Type::Posit(PositFormat::new(width, es)));
        }
        if self.eat_str("!dfg.stream<") {
            let elem = self.parse_type()?;
            self.expect_char('>')?;
            return Ok(Type::Stream(Box::new(elem)));
        }
        if self.eat_str("!dfg.token") {
            return Ok(Type::Token);
        }
        let ident = self.parse_ident()?;
        match ident.as_str() {
            "f32" => Ok(Type::F32),
            "f64" => Ok(Type::F64),
            "index" => Ok(Type::Index),
            "none" => Ok(Type::None),
            "tensor" => {
                self.expect_char('<')?;
                let (shape, elem) = self.parse_shape_and_elem()?;
                self.expect_char('>')?;
                Ok(Type::Tensor {
                    shape,
                    elem: Box::new(elem),
                })
            }
            "memref" => {
                self.expect_char('<')?;
                let (shape, elem) = self.parse_shape_and_elem()?;
                self.expect_char(',')?;
                let space = self.parse_ident()?;
                let space = match space.as_str() {
                    "host" => MemorySpace::Host,
                    "device" => MemorySpace::Device,
                    "plm" => MemorySpace::Plm,
                    other => return Err(self.error(format!("unknown memory space '{other}'"))),
                };
                self.expect_char('>')?;
                Ok(Type::MemRef {
                    shape,
                    elem: Box::new(elem),
                    space,
                })
            }
            other if other.starts_with('i') => {
                let width: u32 = other[1..]
                    .parse()
                    .map_err(|_| self.error(format!("bad integer type '{other}'")))?;
                Ok(Type::Int(width))
            }
            other => Err(self.error(format!("unknown type '{other}'"))),
        }
    }

    /// Parses `4x8xf64` / `?x4xi32` shape-plus-element inside `tensor<>`.
    fn parse_shape_and_elem(&mut self) -> IrResult<(Vec<Option<u64>>, Type)> {
        let mut shape = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('?') {
                self.pos += 1;
                self.expect_char('x')?;
                shape.push(None);
                continue;
            }
            // A dimension is digits followed by 'x'; otherwise it is the
            // element type (which may itself start with a digit? no —
            // element types never start with a digit).
            let save = self.pos;
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                let n = self.parse_usize()?;
                if self.peek() == Some('x') {
                    self.pos += 1;
                    shape.push(Some(n as u64));
                    continue;
                }
                self.pos = save;
            }
            let elem = self.parse_type()?;
            return Ok((shape, elem));
        }
    }

    fn parse_function_type(&mut self) -> IrResult<Type> {
        let inputs = self.parse_type_list()?;
        self.skip_ws();
        if !self.eat_str("->") {
            return Err(self.error("expected '->' in function type"));
        }
        let outputs = self.parse_type_list()?;
        Ok(Type::Function { inputs, outputs })
    }

    fn parse_type_list(&mut self) -> IrResult<Vec<Type>> {
        self.expect_char('(')?;
        let mut tys = Vec::new();
        if !self.eat_char(')') {
            loop {
                tys.push(self.parse_type()?);
                if self.eat_char(',') {
                    continue;
                }
                self.expect_char(')')?;
                break;
            }
        }
        Ok(tys)
    }

    // -- attributes -----------------------------------------------------------

    fn parse_attr(&mut self) -> IrResult<Attribute> {
        self.skip_ws();
        match self.peek() {
            Some('"') => Ok(Attribute::Str(self.parse_string()?)),
            Some('@') => {
                self.pos += 1;
                Ok(Attribute::SymbolRef(self.parse_ident()?))
            }
            Some('[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat_char(']') {
                    loop {
                        items.push(self.parse_attr()?);
                        if self.eat_char(',') {
                            continue;
                        }
                        self.expect_char(']')?;
                        break;
                    }
                }
                Ok(Attribute::Array(items))
            }
            Some('{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                if !self.eat_char('}') {
                    loop {
                        let key = self.parse_ident()?;
                        self.expect_char('=')?;
                        let value = self.parse_attr()?;
                        map.insert(key, value);
                        if self.eat_char(',') {
                            continue;
                        }
                        self.expect_char('}')?;
                        break;
                    }
                }
                Ok(Attribute::Dict(map))
            }
            Some('(') | Some('!') => Ok(Attribute::Ty(self.parse_type()?)),
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let tok = self.parse_number_token()?;
                if tok.contains('.') || tok.contains('e') || tok.contains('E') {
                    tok.parse::<f64>()
                        .map(Attribute::Float)
                        .map_err(|_| self.error(format!("bad float literal '{tok}'")))
                } else {
                    tok.parse::<i64>()
                        .map(Attribute::Int)
                        .map_err(|_| self.error(format!("bad integer literal '{tok}'")))
                }
            }
            _ => {
                let save = self.pos;
                let ident = self.parse_ident()?;
                match ident.as_str() {
                    "true" => Ok(Attribute::Bool(true)),
                    "false" => Ok(Attribute::Bool(false)),
                    "dense_f64" => {
                        self.expect_char('<')?;
                        let mut data = Vec::new();
                        if !self.eat_char('>') {
                            loop {
                                let tok = self.parse_number_token()?;
                                data.push(tok.parse::<f64>().map_err(|_| {
                                    self.error(format!("bad float '{tok}' in dense_f64"))
                                })?);
                                if self.eat_char(',') {
                                    continue;
                                }
                                self.expect_char('>')?;
                                break;
                            }
                        }
                        Ok(Attribute::DenseF64(data))
                    }
                    "dense_i64" => {
                        self.expect_char('<')?;
                        let mut data = Vec::new();
                        if !self.eat_char('>') {
                            loop {
                                let tok = self.parse_number_token()?;
                                data.push(tok.parse::<i64>().map_err(|_| {
                                    self.error(format!("bad int '{tok}' in dense_i64"))
                                })?);
                                if self.eat_char(',') {
                                    continue;
                                }
                                self.expect_char('>')?;
                                break;
                            }
                        }
                        Ok(Attribute::DenseI64(data))
                    }
                    // Fall back to a type attribute (f64, i32, tensor<...>).
                    _ => {
                        self.pos = save;
                        Ok(Attribute::Ty(self.parse_type()?))
                    }
                }
            }
        }
    }

    // -- operations -----------------------------------------------------------

    /// Parses ops and appends them to `block` until `stop` is next.
    fn parse_ops_until(&mut self, module: &mut Module, block: BlockId, stop: char) -> IrResult<()> {
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.error(format!("expected '{stop}'"))),
                Some(c) if c == stop => return Ok(()),
                _ => self.parse_op(module, block)?,
            }
        }
    }

    /// Parses ops and appends them to `block` until position `end`.
    fn parse_ops_limit(&mut self, module: &mut Module, block: BlockId, end: usize) -> IrResult<()> {
        loop {
            self.skip_ws();
            if self.pos >= end {
                return Ok(());
            }
            self.parse_op(module, block)?;
        }
    }

    fn parse_op(&mut self, module: &mut Module, block: BlockId) -> IrResult<()> {
        // Optional result list: %0, %1 = ...
        let mut result_names = Vec::new();
        self.skip_ws();
        if self.peek() == Some('%') {
            loop {
                self.expect_char('%')?;
                result_names.push(self.parse_usize()?);
                if self.eat_char(',') {
                    continue;
                }
                break;
            }
            self.expect_char('=')?;
        }
        let name = self.parse_string()?;
        self.expect_char('(')?;
        let mut operands = Vec::new();
        if !self.eat_char(')') {
            loop {
                operands.push(self.parse_value_ref()?);
                if self.eat_char(',') {
                    continue;
                }
                self.expect_char(')')?;
                break;
            }
        }
        // Regions: zero or more "({ ... })".
        let mut region_sources: Vec<Vec<RawBlock>> = Vec::new();
        loop {
            self.skip_ws();
            if self.eat_str("({") {
                region_sources.push(self.parse_region_blocks()?);
            } else {
                break;
            }
        }
        // Attributes.
        let mut attrs = BTreeMap::new();
        self.skip_ws();
        if self.eat_char('{') && !self.eat_char('}') {
            loop {
                let key = self.parse_ident()?;
                self.expect_char('=')?;
                let value = self.parse_attr()?;
                attrs.insert(key, value);
                if self.eat_char(',') {
                    continue;
                }
                self.expect_char('}')?;
                break;
            }
        }
        // Trailing function type.
        self.expect_char(':')?;
        let operand_tys = self.parse_type_list()?;
        if !self.eat_str("->") {
            return Err(self.error("expected '->' in op type"));
        }
        let result_tys = self.parse_type_list()?;
        if operand_tys.len() != operands.len() {
            return Err(self.error(format!(
                "op '{name}' lists {} operand types for {} operands",
                operand_tys.len(),
                operands.len()
            )));
        }
        if result_tys.len() != result_names.len() {
            return Err(self.error(format!(
                "op '{name}' lists {} result types for {} results",
                result_tys.len(),
                result_names.len()
            )));
        }

        let op = module.create_op(name, operands, result_tys, attrs, region_sources.len());
        module.append_op(block, op);
        let results = module.op(op).expect("just created").results.clone();
        for (n, v) in result_names.into_iter().zip(results) {
            self.bind_value(n, v);
        }
        // Materialize regions.
        let regions = module.op(op).expect("just created").regions.clone();
        for (region, raw_blocks) in regions.into_iter().zip(region_sources) {
            for raw in raw_blocks {
                let bb = module.add_block(region, &raw.arg_types);
                let args = module.block(bb).args.clone();
                for (n, v) in raw.arg_names.iter().zip(args) {
                    self.bind_value(*n, v);
                }
                // Re-parse the ops of this block from the saved span.
                let saved = self.pos;
                self.pos = raw.body_start;
                self.parse_ops_limit(module, bb, raw.body_end)?;
                self.pos = saved;
            }
        }
        Ok(())
    }

    /// Parses region blocks eagerly (single pass): reads block headers and
    /// bodies directly. The `({` was already consumed.
    fn parse_region_blocks(&mut self) -> IrResult<Vec<RawBlock>> {
        let mut blocks = Vec::new();
        loop {
            self.skip_ws();
            if self.eat_str("})") {
                return Ok(blocks);
            }
            if !self.eat_str("^bb(") {
                return Err(self.error("expected '^bb(' block header or '})'"));
            }
            let mut arg_names = Vec::new();
            let mut arg_types = Vec::new();
            if !self.eat_char(')') {
                loop {
                    self.expect_char('%')?;
                    arg_names.push(self.parse_usize()?);
                    self.expect_char(':')?;
                    arg_types.push(self.parse_type()?);
                    if self.eat_char(',') {
                        continue;
                    }
                    self.expect_char(')')?;
                    break;
                }
            }
            self.expect_char(':')?;
            // Record the body span: ops until the next '^bb(' at this nesting
            // level or the region close '})'. We scan forward tracking
            // nesting of "({" / "})" pairs and strings.
            let body_start = self.pos;
            let body_end = self.scan_block_body_end()?;
            blocks.push(RawBlock {
                arg_names,
                arg_types,
                body_start,
                body_end,
            });
            self.pos = body_end;
        }
    }

    /// Scans forward from the current position to find where the current
    /// block's op list ends (the position of the next `^bb(` header or the
    /// closing `})` of this region), without consuming it.
    fn scan_block_body_end(&mut self) -> IrResult<usize> {
        let mut depth = 0usize;
        let mut i = self.pos;
        while i < self.chars.len() {
            let c = self.chars[i];
            match c {
                '"' => {
                    // skip string literal
                    i += 1;
                    while i < self.chars.len() {
                        if self.chars[i] == '\\' {
                            i += 2;
                        } else if self.chars[i] == '"' {
                            break;
                        } else {
                            i += 1;
                        }
                    }
                }
                '(' if self.chars.get(i + 1) == Some(&'{') => {
                    depth += 1;
                    i += 1;
                }
                '}' if self.chars.get(i + 1) == Some(&')') => {
                    if depth == 0 {
                        return Ok(i);
                    }
                    depth -= 1;
                    i += 1;
                }
                '^' if depth == 0 => {
                    return Ok(i);
                }
                _ => {}
            }
            i += 1;
        }
        Err(self.error("unterminated region"))
    }
}

struct RawBlock {
    arg_names: Vec<usize>,
    arg_types: Vec<Type>,
    body_start: usize,
    body_end: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::core;
    use crate::module::single_result;
    use crate::print::print_module;
    use crate::registry::Context;
    use crate::verify::verify_module;

    fn roundtrip(m: &Module) -> Module {
        let text = print_module(m);
        match parse_module(&text) {
            Ok(parsed) => {
                assert_eq!(
                    print_module(&parsed),
                    text,
                    "round-trip must be a fixed point"
                );
                parsed
            }
            Err(e) => panic!("failed to parse printed module: {e}\n{text}"),
        }
    }

    #[test]
    fn parse_empty_module() {
        let m = parse_module("module {\n}\n").unwrap();
        assert_eq!(m.num_ops(), 0);
    }

    #[test]
    fn roundtrip_flat_arithmetic() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.5);
        let b = core::const_f64(&mut m, top, -2.25);
        let s = core::binary(&mut m, top, "arith.addf", a, b);
        let _ = core::binary(&mut m, top, "arith.mulf", s, a);
        let parsed = roundtrip(&m);
        assert_eq!(parsed.num_ops(), 4);
        verify_module(&Context::with_all_dialects(), &parsed).unwrap();
    }

    #[test]
    fn roundtrip_function_with_body() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = core::build_func(&mut m, top, "main", &[Type::F64], &[Type::F64]);
        let x = m.block(entry).args[0];
        let neg = m.build_op("arith.negf", [x], [Type::F64]).append_to(entry);
        let nv = single_result(&m, neg);
        m.build_op("func.return", [nv], []).append_to(entry);
        let parsed = roundtrip(&m);
        verify_module(&Context::with_all_dialects(), &parsed).unwrap();
        assert!(parsed.lookup_symbol("main").is_some());
    }

    #[test]
    fn roundtrip_nested_loops() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = core::build_func(&mut m, top, "loops", &[], &[]);
        let lb = core::const_index(&mut m, entry, 0);
        let ub = core::const_index(&mut m, entry, 8);
        let step = core::const_index(&mut m, entry, 1);
        let (_l1, body1) = core::build_for(&mut m, entry, lb, ub, step);
        let lb2 = core::const_index(&mut m, body1, 0);
        let ub2 = core::const_index(&mut m, body1, 4);
        let step2 = core::const_index(&mut m, body1, 1);
        let (_l2, body2) = core::build_for(&mut m, body1, lb2, ub2, step2);
        m.build_op("scf.yield", [], []).append_to(body2);
        m.build_op("scf.yield", [], []).append_to(body1);
        m.build_op("func.return", [], []).append_to(entry);
        let parsed = roundtrip(&m);
        verify_module(&Context::with_all_dialects(), &parsed).unwrap();
    }

    #[test]
    fn roundtrip_all_attribute_kinds() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut dict = BTreeMap::new();
        dict.insert("x".to_string(), Attribute::Int(1));
        m.build_op("evp.kernel_instance", [], [])
            .attr("kernel", Attribute::SymbolRef("rrtmg".into()))
            .attr("target", "alveo_u55c")
            .attr("replicas", Attribute::Int(4))
            .attr("scale", Attribute::Float(0.5))
            .attr("enabled", Attribute::Bool(true))
            .attr("dims", Attribute::int_array([1, 2, 3]))
            .attr("meta", Attribute::Dict(dict))
            .attr("weights", Attribute::DenseF64(vec![1.0, 2.5]))
            .attr("lut", Attribute::DenseI64(vec![-1, 7]))
            .attr("ty", Attribute::Ty(Type::tensor(&[2, 2], Type::F32)))
            .append_to(top);
        let parsed = roundtrip(&m);
        let op = parsed.walk_ops()[0];
        let operation = parsed.op(op).unwrap();
        assert_eq!(operation.int_attr("replicas"), Some(4));
        assert_eq!(operation.str_attr("target"), Some("alveo_u55c"));
        assert_eq!(
            operation.attr("weights").unwrap().as_dense_f64(),
            Some(&[1.0, 2.5][..])
        );
    }

    #[test]
    fn roundtrip_exotic_types() {
        let mut m = Module::new();
        let top = m.top_block();
        let x = core::const_f64(&mut m, top, 1.0);
        let q = m
            .build_op(
                "base2.quantize",
                [x],
                [Type::Fixed(FixedFormat::signed(7, 8))],
            )
            .append_to(top);
        let qv = single_result(&m, q);
        m.build_op("base2.dequantize", [qv], [Type::F64])
            .append_to(top);
        m.build_op(
            "dfg.channel",
            [],
            [Type::Stream(Box::new(Type::tensor(&[4], Type::F32)))],
        )
        .attr("capacity", Attribute::Int(2))
        .append_to(top);
        m.build_op(
            "memref.alloc",
            [],
            [Type::memref(&[16, 16], Type::F32, MemorySpace::Device)],
        )
        .append_to(top);
        let parsed = roundtrip(&m);
        verify_module(&Context::with_all_dialects(), &parsed).unwrap();
    }

    #[test]
    fn parse_error_reports_line() {
        let err = parse_module("module {\n  garbage\n}\n").unwrap_err();
        match err {
            IrError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn undefined_value_reference_rejected() {
        let text = "module {\n  \"arith.negf\"(%0) : (f64) -> (f64)\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.to_string().contains("undefined value"));
    }

    #[test]
    fn operand_type_count_mismatch_rejected() {
        let text = "module {\n  %0 = \"arith.constant\"() {value = 1.0} : (f64) -> (f64)\n}\n";
        assert!(parse_module(text).is_err());
    }
}
