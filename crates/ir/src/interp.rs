//! Reference interpreter for loop-level IR.
//!
//! Executes functions consisting of `scf.for`/`scf.if`, `arith`, `memref`
//! and `base2` ops on concrete buffers. This is the functional-simulation
//! backend the HLS flow uses to check that scheduling transformations
//! preserve semantics, and the oracle the teil-to-loops lowering is tested
//! against.

use std::collections::HashMap;

use crate::attr::Attribute;
use crate::base2::{Fixed, Posit};
use crate::error::{IrError, IrResult};
use crate::ids::{BlockId, OpId, ValueId};
use crate::module::Module;
use crate::types::Type;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Floats, fixed and posit values evaluate in f64 precision unless the
    /// op is a `base2` op (which re-quantizes at every step).
    F64(f64),
    /// Integers and booleans (i1).
    I64(i64),
    /// Index values.
    Index(i64),
    /// A handle to a buffer in the interpreter heap.
    Buffer(usize),
}

impl Value {
    /// Extracts a float, accepting ints.
    pub fn as_f64(&self) -> IrResult<f64> {
        match self {
            Value::F64(v) => Ok(*v),
            Value::I64(v) | Value::Index(v) => Ok(*v as f64),
            Value::Buffer(_) => Err(IrError::Type("expected scalar, got buffer".into())),
        }
    }

    /// Extracts an integer, truncating floats.
    pub fn as_i64(&self) -> IrResult<i64> {
        match self {
            Value::I64(v) | Value::Index(v) => Ok(*v),
            Value::F64(v) => Ok(*v as i64),
            Value::Buffer(_) => Err(IrError::Type("expected scalar, got buffer".into())),
        }
    }
}

/// A flat buffer with a shape (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    /// Static shape.
    pub shape: Vec<u64>,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl Buffer {
    /// Creates a zero-filled buffer.
    pub fn zeros(shape: &[u64]) -> Self {
        let n: u64 = shape.iter().product();
        Buffer {
            shape: shape.to_vec(),
            data: vec![0.0; n as usize],
        }
    }

    /// Creates a buffer from data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_data(shape: &[u64], data: Vec<f64>) -> Self {
        let n: u64 = shape.iter().product();
        assert_eq!(n as usize, data.len(), "data length must match shape");
        Buffer {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Row-major linear offset of a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error when an index is out of bounds.
    pub fn offset(&self, indices: &[i64]) -> IrResult<usize> {
        if indices.len() != self.shape.len() {
            return Err(IrError::Type(format!(
                "rank {} buffer indexed with {} indices",
                self.shape.len(),
                indices.len()
            )));
        }
        let mut off = 0usize;
        for (i, (&idx, &dim)) in indices.iter().zip(&self.shape).enumerate() {
            if idx < 0 || idx as u64 >= dim {
                return Err(IrError::Type(format!(
                    "index {idx} out of bounds for dim {i} of extent {dim}"
                )));
            }
            off = off * dim as usize + idx as usize;
        }
        Ok(off)
    }
}

/// Interpreter state: SSA environment plus a buffer heap.
#[derive(Debug, Default)]
pub struct Interpreter {
    env: HashMap<ValueId, Value>,
    heap: Vec<Buffer>,
    /// Count of executed operations (used by tests and cost models).
    pub ops_executed: u64,
}

impl Interpreter {
    /// Creates an empty interpreter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a buffer and returns its handle value.
    pub fn alloc_buffer(&mut self, buffer: Buffer) -> Value {
        self.heap.push(buffer);
        Value::Buffer(self.heap.len() - 1)
    }

    /// Reads a buffer by handle.
    ///
    /// # Panics
    ///
    /// Panics on a dangling handle (cannot occur for handles produced by
    /// this interpreter).
    pub fn buffer(&self, handle: usize) -> &Buffer {
        &self.heap[handle]
    }

    /// Runs the function named `symbol` with the given arguments.
    ///
    /// Buffer-typed arguments must be [`Value::Buffer`] handles obtained
    /// from [`Interpreter::alloc_buffer`].
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported ops, type mismatches or
    /// out-of-bounds accesses.
    pub fn run_function(
        &mut self,
        module: &Module,
        symbol: &str,
        args: &[Value],
    ) -> IrResult<Vec<Value>> {
        let func = module
            .lookup_symbol(symbol)
            .ok_or_else(|| IrError::InvalidId(format!("no function '{symbol}'")))?;
        let operation = module
            .op(func)
            .ok_or_else(|| IrError::InvalidId("function erased".into()))?;
        let region = operation.regions[0];
        let entry = module.region(region).blocks[0];
        let params = module.block(entry).args.clone();
        if params.len() != args.len() {
            return Err(IrError::Type(format!(
                "function '{symbol}' takes {} arguments, got {}",
                params.len(),
                args.len()
            )));
        }
        for (p, a) in params.iter().zip(args) {
            self.env.insert(*p, a.clone());
        }
        self.run_block(module, entry)
    }

    fn get(&self, v: ValueId) -> IrResult<Value> {
        self.env
            .get(&v)
            .cloned()
            .ok_or_else(|| IrError::InvalidId(format!("undefined value {v}")))
    }

    /// Executes a block; returns terminator operands (`func.return` /
    /// `scf.yield` values).
    fn run_block(&mut self, module: &Module, block: BlockId) -> IrResult<Vec<Value>> {
        let ops = module.block(block).ops.clone();
        for op in ops {
            if let Some(result) = self.run_op(module, op)? {
                return Ok(result);
            }
        }
        Ok(Vec::new())
    }

    /// Executes one op. Returns `Some(values)` if it was a terminator.
    fn run_op(&mut self, module: &Module, op: OpId) -> IrResult<Option<Vec<Value>>> {
        self.ops_executed += 1;
        let operation = module
            .op(op)
            .ok_or_else(|| IrError::InvalidId("erased op in block".into()))?;
        let name = operation.name;
        let operands: Vec<Value> = operation
            .operands
            .iter()
            .map(|&v| self.get(v))
            .collect::<IrResult<_>>()?;
        let results = operation.results.clone();

        macro_rules! set {
            ($value:expr) => {{
                self.env.insert(results[0], $value);
            }};
        }

        match name.as_str() {
            // -- terminators -----------------------------------------------
            "func.return" | "scf.yield" | "ekl.yield" => {
                return Ok(Some(operands));
            }
            // -- constants --------------------------------------------------
            "arith.constant" => {
                let attr = operation
                    .attr("value")
                    .ok_or_else(|| IrError::Type("constant without value".into()))?;
                let ty = module.value_type(results[0]).clone();
                let value = match (attr, &ty) {
                    (Attribute::Int(v), Type::Index) => Value::Index(*v),
                    (Attribute::Int(v), _) => Value::I64(*v),
                    (Attribute::Float(v), _) => Value::F64(*v),
                    _ => return Err(IrError::Type("unsupported constant".into())),
                };
                set!(value);
            }
            // -- float arithmetic -------------------------------------------
            "arith.addf" => set!(Value::F64(operands[0].as_f64()? + operands[1].as_f64()?)),
            "arith.subf" => set!(Value::F64(operands[0].as_f64()? - operands[1].as_f64()?)),
            "arith.mulf" => set!(Value::F64(operands[0].as_f64()? * operands[1].as_f64()?)),
            "arith.divf" => set!(Value::F64(operands[0].as_f64()? / operands[1].as_f64()?)),
            "arith.maxf" => set!(Value::F64(operands[0].as_f64()?.max(operands[1].as_f64()?))),
            "arith.minf" => set!(Value::F64(operands[0].as_f64()?.min(operands[1].as_f64()?))),
            "arith.negf" => set!(Value::F64(-operands[0].as_f64()?)),
            "arith.absf" => set!(Value::F64(operands[0].as_f64()?.abs())),
            "arith.sqrt" => set!(Value::F64(operands[0].as_f64()?.sqrt())),
            "arith.exp" => set!(Value::F64(operands[0].as_f64()?.exp())),
            "arith.log" => set!(Value::F64(operands[0].as_f64()?.ln())),
            // -- integer arithmetic -----------------------------------------
            "arith.addi" => {
                let v = operands[0].as_i64()? + operands[1].as_i64()?;
                set!(self.int_like(module, results[0], v));
            }
            "arith.subi" => {
                let v = operands[0].as_i64()? - operands[1].as_i64()?;
                set!(self.int_like(module, results[0], v));
            }
            "arith.muli" => {
                let v = operands[0].as_i64()? * operands[1].as_i64()?;
                set!(self.int_like(module, results[0], v));
            }
            "arith.divsi" => {
                let b = operands[1].as_i64()?;
                if b == 0 {
                    return Err(IrError::Type("integer division by zero".into()));
                }
                let v = operands[0].as_i64()? / b;
                set!(self.int_like(module, results[0], v));
            }
            "arith.remsi" => {
                let b = operands[1].as_i64()?;
                if b == 0 {
                    return Err(IrError::Type("integer remainder by zero".into()));
                }
                let v = operands[0].as_i64()? % b;
                set!(self.int_like(module, results[0], v));
            }
            "arith.andi" => {
                let v = operands[0].as_i64()? & operands[1].as_i64()?;
                set!(self.int_like(module, results[0], v));
            }
            "arith.ori" => {
                let v = operands[0].as_i64()? | operands[1].as_i64()?;
                set!(self.int_like(module, results[0], v));
            }
            "arith.xori" => {
                let v = operands[0].as_i64()? ^ operands[1].as_i64()?;
                set!(self.int_like(module, results[0], v));
            }
            // -- comparisons & select ---------------------------------------
            "arith.cmpf" => {
                let pred = operation.str_attr("predicate").unwrap_or("eq");
                let (a, b) = (operands[0].as_f64()?, operands[1].as_f64()?);
                let r = match pred {
                    "eq" => a == b,
                    "ne" => a != b,
                    "lt" => a < b,
                    "le" => a <= b,
                    "gt" => a > b,
                    "ge" => a >= b,
                    other => return Err(IrError::Type(format!("bad predicate '{other}'"))),
                };
                set!(Value::I64(r as i64));
            }
            "arith.cmpi" => {
                let pred = operation.str_attr("predicate").unwrap_or("eq");
                let (a, b) = (operands[0].as_i64()?, operands[1].as_i64()?);
                let r = match pred {
                    "eq" => a == b,
                    "ne" => a != b,
                    "lt" => a < b,
                    "le" => a <= b,
                    "gt" => a > b,
                    "ge" => a >= b,
                    other => return Err(IrError::Type(format!("bad predicate '{other}'"))),
                };
                set!(Value::I64(r as i64));
            }
            "arith.select" => {
                let c = operands[0].as_i64()? != 0;
                set!(if c {
                    operands[1].clone()
                } else {
                    operands[2].clone()
                });
            }
            // -- casts -------------------------------------------------------
            "arith.index_cast" => set!(Value::Index(operands[0].as_i64()?)),
            "arith.sitofp" => set!(Value::F64(operands[0].as_i64()? as f64)),
            "arith.fptosi" => set!(Value::I64(operands[0].as_f64()? as i64)),
            "arith.extf" | "arith.truncf" => {
                let v = operands[0].as_f64()?;
                let v = if matches!(module.value_type(results[0]), Type::F32) {
                    v as f32 as f64
                } else {
                    v
                };
                set!(Value::F64(v));
            }
            "builtin.unrealized_cast" => set!(operands[0].clone()),
            // -- base2 -------------------------------------------------------
            "base2.quantize" | "base2.dequantize" | "base2.convert" => {
                let v = operands[0].as_f64()?;
                set!(Value::F64(self.requantize(module, results[0], v)));
            }
            "base2.add" | "base2.sub" | "base2.mul" | "base2.div" => {
                let ty = module.value_type(results[0]).clone();
                let (a, b) = (operands[0].as_f64()?, operands[1].as_f64()?);
                let v = match (&ty, name.as_str()) {
                    (Type::Fixed(fmt), op) => {
                        let fa = Fixed::from_f64(a, *fmt);
                        let fb = Fixed::from_f64(b, *fmt);
                        match op {
                            "base2.add" => fa.add(fb).to_f64(),
                            "base2.sub" => fa.sub(fb).to_f64(),
                            "base2.mul" => fa.mul(fb).to_f64(),
                            _ => fa.div(fb).to_f64(),
                        }
                    }
                    (Type::Posit(fmt), op) => {
                        let pa = Posit::from_f64(a, *fmt);
                        let pb = Posit::from_f64(b, *fmt);
                        match op {
                            "base2.add" => pa.add(pb).to_f64(),
                            "base2.sub" => pa.sub(pb).to_f64(),
                            "base2.mul" => pa.mul(pb).to_f64(),
                            _ => pa.div(pb).to_f64(),
                        }
                    }
                    _ => return Err(IrError::Type("base2 op on non-base2 type".into())),
                };
                set!(Value::F64(v));
            }
            // -- memref ------------------------------------------------------
            "memref.alloc" => {
                let ty = module.value_type(results[0]).clone();
                let shape: Vec<u64> = ty
                    .shape()
                    .ok_or_else(|| IrError::Type("alloc of non-memref".into()))?
                    .iter()
                    .map(|d| d.ok_or_else(|| IrError::Type("dynamic alloc unsupported".into())))
                    .collect::<IrResult<_>>()?;
                let mut buffer = Buffer::zeros(&shape);
                if let Some(init) = operation.attr("init").and_then(Attribute::as_dense_f64) {
                    if init.len() == buffer.data.len() {
                        buffer.data.copy_from_slice(init);
                    }
                }
                if let Some(init) = operation.attr("init_i64").and_then(Attribute::as_dense_i64) {
                    if init.len() == buffer.data.len() {
                        for (dst, &src) in buffer.data.iter_mut().zip(init) {
                            *dst = src as f64;
                        }
                    }
                }
                let handle = self.alloc_buffer(buffer);
                set!(handle);
            }
            "memref.dealloc" => {}
            "memref.load" => {
                let Value::Buffer(h) = operands[0] else {
                    return Err(IrError::Type("load from non-buffer".into()));
                };
                let indices: Vec<i64> = operands[1..]
                    .iter()
                    .map(Value::as_i64)
                    .collect::<IrResult<_>>()?;
                let off = self.heap[h].offset(&indices)?;
                let raw = self.heap[h].data[off];
                let value = match module.value_type(results[0]) {
                    Type::Int(_) | Type::Index => Value::I64(raw as i64),
                    _ => Value::F64(raw),
                };
                set!(value);
            }
            "memref.store" => {
                let Value::Buffer(h) = operands[1] else {
                    return Err(IrError::Type("store to non-buffer".into()));
                };
                let indices: Vec<i64> = operands[2..]
                    .iter()
                    .map(Value::as_i64)
                    .collect::<IrResult<_>>()?;
                let off = self.heap[h].offset(&indices)?;
                self.heap[h].data[off] = operands[0].as_f64()?;
            }
            "memref.copy" => {
                let (Value::Buffer(src), Value::Buffer(dst)) = (&operands[0], &operands[1]) else {
                    return Err(IrError::Type("copy needs two buffers".into()));
                };
                let data = self.heap[*src].data.clone();
                if data.len() != self.heap[*dst].data.len() {
                    return Err(IrError::Type("copy size mismatch".into()));
                }
                self.heap[*dst].data = data;
            }
            // -- control flow -----------------------------------------------
            "scf.for" => {
                let lb = operands[0].as_i64()?;
                let ub = operands[1].as_i64()?;
                let step = operands[2].as_i64()?;
                if step <= 0 {
                    return Err(IrError::Type("scf.for step must be positive".into()));
                }
                let mut carried: Vec<Value> = operands[3..].to_vec();
                let region = operation.regions[0];
                let body = module.region(region).blocks[0];
                let body_args = module.block(body).args.clone();
                let mut iv = lb;
                while iv < ub {
                    self.env.insert(body_args[0], Value::Index(iv));
                    for (arg, value) in body_args[1..].iter().zip(&carried) {
                        self.env.insert(*arg, value.clone());
                    }
                    let yielded = self.run_block(module, body)?;
                    carried = yielded;
                    iv += step;
                }
                for (r, value) in results.iter().zip(carried) {
                    self.env.insert(*r, value);
                }
            }
            "scf.if" => {
                let cond = operands[0].as_i64()? != 0;
                let region = operation.regions[if cond { 0 } else { 1 }];
                let blocks = module.region(region).blocks.clone();
                let yielded = if let Some(&b) = blocks.first() {
                    self.run_block(module, b)?
                } else {
                    Vec::new()
                };
                for (r, value) in results.iter().zip(yielded) {
                    self.env.insert(*r, value);
                }
            }
            other => {
                return Err(IrError::Type(format!(
                    "interpreter does not support op '{other}'"
                )));
            }
        }
        Ok(None)
    }

    fn int_like(&self, module: &Module, result: ValueId, v: i64) -> Value {
        match module.value_type(result) {
            Type::Index => Value::Index(v),
            _ => Value::I64(v),
        }
    }

    fn requantize(&self, module: &Module, result: ValueId, v: f64) -> f64 {
        match module.value_type(result) {
            Type::Fixed(fmt) => Fixed::from_f64(v, *fmt).to_f64(),
            Type::Posit(fmt) => Posit::from_f64(v, *fmt).to_f64(),
            Type::F32 => v as f32 as f64,
            _ => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::core::{binary, build_for, build_func, const_f64, const_index};
    use crate::module::single_result;

    #[test]
    fn run_scalar_function() {
        // f(x) = x * x + 1
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = build_func(&mut m, top, "sq1", &[Type::F64], &[Type::F64]);
        let x = m.block(entry).args[0];
        let xx = binary(&mut m, entry, "arith.mulf", x, x);
        let one = const_f64(&mut m, entry, 1.0);
        let r = binary(&mut m, entry, "arith.addf", xx, one);
        m.build_op("func.return", [r], []).append_to(entry);

        let mut interp = Interpreter::new();
        let out = interp.run_function(&m, "sq1", &[Value::F64(3.0)]).unwrap();
        assert_eq!(out, vec![Value::F64(10.0)]);
    }

    #[test]
    fn run_loop_accumulating_into_buffer() {
        // out[i] = 2 * i  for i in 0..8
        let mut m = Module::new();
        let top = m.top_block();
        let out_ty = Type::memref(&[8], Type::F64, crate::types::MemorySpace::Plm);
        let (_f, entry) = build_func(&mut m, top, "fill", &[out_ty], &[]);
        let out = m.block(entry).args[0];
        let lb = const_index(&mut m, entry, 0);
        let ub = const_index(&mut m, entry, 8);
        let step = const_index(&mut m, entry, 1);
        let (_loop, body) = build_for(&mut m, entry, lb, ub, step);
        let iv = m.block(body).args[0];
        let ivf = m
            .build_op("arith.sitofp", [iv], [Type::F64])
            .append_to(body);
        let ivf = single_result(&m, ivf);
        let two = const_f64(&mut m, body, 2.0);
        let v = binary(&mut m, body, "arith.mulf", two, ivf);
        m.build_op("memref.store", [v, out, iv], []).append_to(body);
        m.build_op("scf.yield", [], []).append_to(body);
        m.build_op("func.return", [], []).append_to(entry);

        let mut interp = Interpreter::new();
        let buf = interp.alloc_buffer(Buffer::zeros(&[8]));
        interp
            .run_function(&m, "fill", std::slice::from_ref(&buf))
            .unwrap();
        let Value::Buffer(h) = buf else {
            unreachable!()
        };
        assert_eq!(
            interp.buffer(h).data,
            vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]
        );
    }

    #[test]
    fn loop_carried_values_via_iter_args() {
        // sum = for i in 0..5 iter(acc=0) { yield acc + i }
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = build_func(&mut m, top, "sum5", &[], &[Type::F64]);
        let lb = const_index(&mut m, entry, 0);
        let ub = const_index(&mut m, entry, 5);
        let step = const_index(&mut m, entry, 1);
        let init = const_f64(&mut m, entry, 0.0);
        let loop_op = m
            .build_op("scf.for", [lb, ub, step, init], [Type::F64])
            .regions(1)
            .append_to(entry);
        let region = m.op(loop_op).unwrap().regions[0];
        let body = m.add_block(region, &[Type::Index, Type::F64]);
        let iv = m.block(body).args[0];
        let acc = m.block(body).args[1];
        let ivf = m
            .build_op("arith.sitofp", [iv], [Type::F64])
            .append_to(body);
        let ivf = single_result(&m, ivf);
        let next = binary(&mut m, body, "arith.addf", acc, ivf);
        m.build_op("scf.yield", [next], []).append_to(body);
        let result = single_result(&m, loop_op);
        m.build_op("func.return", [result], []).append_to(entry);

        let mut interp = Interpreter::new();
        let out = interp.run_function(&m, "sum5", &[]).unwrap();
        assert_eq!(out, vec![Value::F64(10.0)]);
    }

    #[test]
    fn scf_if_takes_correct_branch() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = build_func(&mut m, top, "abs", &[Type::F64], &[Type::F64]);
        let x = m.block(entry).args[0];
        let zero = const_f64(&mut m, entry, 0.0);
        let cmp = m
            .build_op("arith.cmpf", [x, zero], [Type::bool()])
            .attr("predicate", "lt")
            .append_to(entry);
        let cond = single_result(&m, cmp);
        let if_op = m
            .build_op("scf.if", [cond], [Type::F64])
            .regions(2)
            .append_to(entry);
        let then_region = m.op(if_op).unwrap().regions[0];
        let else_region = m.op(if_op).unwrap().regions[1];
        let then_bb = m.add_block(then_region, &[]);
        let neg = m
            .build_op("arith.negf", [x], [Type::F64])
            .append_to(then_bb);
        let nv = single_result(&m, neg);
        m.build_op("scf.yield", [nv], []).append_to(then_bb);
        let else_bb = m.add_block(else_region, &[]);
        m.build_op("scf.yield", [x], []).append_to(else_bb);
        let rv = single_result(&m, if_op);
        m.build_op("func.return", [rv], []).append_to(entry);

        let mut interp = Interpreter::new();
        assert_eq!(
            interp.run_function(&m, "abs", &[Value::F64(-4.0)]).unwrap(),
            vec![Value::F64(4.0)]
        );
        assert_eq!(
            interp.run_function(&m, "abs", &[Value::F64(5.0)]).unwrap(),
            vec![Value::F64(5.0)]
        );
    }

    #[test]
    fn base2_ops_requantize() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = build_func(&mut m, top, "q", &[Type::F64], &[Type::F64]);
        let x = m.block(entry).args[0];
        let fixed = Type::Fixed(crate::types::FixedFormat::signed(3, 4));
        let q = m
            .build_op("base2.quantize", [x], [fixed.clone()])
            .append_to(entry);
        let qv = single_result(&m, q);
        let d = m
            .build_op("base2.dequantize", [qv], [Type::F64])
            .append_to(entry);
        let dv = single_result(&m, d);
        m.build_op("func.return", [dv], []).append_to(entry);

        let mut interp = Interpreter::new();
        let out = interp.run_function(&m, "q", &[Value::F64(1.03)]).unwrap();
        // 1.03 quantized to 4 fractional bits = 16/16 = 1.0 (nearest is 16.48 -> 16)
        assert_eq!(out, vec![Value::F64(1.0)]);
    }

    #[test]
    fn out_of_bounds_load_errors() {
        let mut m = Module::new();
        let top = m.top_block();
        let ty = Type::memref(&[2], Type::F64, crate::types::MemorySpace::Host);
        let (_f, entry) = build_func(&mut m, top, "oob", &[ty], &[Type::F64]);
        let buf = m.block(entry).args[0];
        let i = const_index(&mut m, entry, 5);
        let load = m
            .build_op("memref.load", [buf, i], [Type::F64])
            .append_to(entry);
        let lv = single_result(&m, load);
        m.build_op("func.return", [lv], []).append_to(entry);

        let mut interp = Interpreter::new();
        let b = interp.alloc_buffer(Buffer::zeros(&[2]));
        let err = interp.run_function(&m, "oob", &[b]).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }
}
