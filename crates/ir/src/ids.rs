//! Arena identifiers for IR entities.
//!
//! All IR entities ([`Operation`](crate::module::Operation),
//! [`Region`](crate::module::Region), [`Block`](crate::module::Block) and
//! SSA values) live in arenas owned by a [`Module`](crate::module::Module)
//! and are referred to by the index newtypes defined here. Using plain
//! indices keeps the IR graph free of reference cycles and makes rewrites
//! cheap: a rewrite only touches the arena slots it changes.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw arena index.
            pub fn from_raw(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id! {
    /// Identifies an [`Operation`](crate::module::Operation) in a module arena.
    OpId, "op"
}
define_id! {
    /// Identifies a [`Region`](crate::module::Region) in a module arena.
    RegionId, "region"
}
define_id! {
    /// Identifies a [`Block`](crate::module::Block) in a module arena.
    BlockId, "bb"
}
define_id! {
    /// Identifies an SSA value (operation result or block argument).
    ValueId, "%"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw_index() {
        let op = OpId::from_raw(7);
        assert_eq!(op.index(), 7);
        let v = ValueId::from_raw(0);
        assert_eq!(v.index(), 0);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(OpId::from_raw(3).to_string(), "op3");
        assert_eq!(ValueId::from_raw(12).to_string(), "%12");
        assert_eq!(BlockId::from_raw(1).to_string(), "bb1");
        assert_eq!(RegionId::from_raw(2).to_string(), "region2");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(OpId::from_raw(1) < OpId::from_raw(2));
        assert_eq!(ValueId::from_raw(5), ValueId::from_raw(5));
    }
}
