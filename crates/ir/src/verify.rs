//! Module verification against a dialect [`Context`].
//!
//! Verification proceeds in two layers, like MLIR: structural checks that
//! hold for any op (operand/result arity, region counts, required
//! attributes, terminator placement, SSA dominance within a block) and
//! per-op custom verifiers supplied by the dialects.

use std::collections::HashSet;

use crate::error::{IrError, IrResult};
use crate::ids::{BlockId, OpId, RegionId, ValueId};
use crate::location::OpPath;
use crate::module::{Module, ValueDef};
use crate::registry::{Context, OpTrait};

/// Verifies every live op in the module.
///
/// # Errors
///
/// Returns the first violation found, in program order.
pub fn verify_module(ctx: &Context, module: &Module) -> IrResult<()> {
    let mut visible: HashSet<ValueId> = HashSet::new();
    verify_region(ctx, module, module.top_region(), &mut visible)
}

fn verify_region(
    ctx: &Context,
    module: &Module,
    region: RegionId,
    visible: &mut HashSet<ValueId>,
) -> IrResult<()> {
    for &block in &module.region(region).blocks {
        verify_block(ctx, module, block, visible)?;
    }
    Ok(())
}

fn verify_block(
    ctx: &Context,
    module: &Module,
    block: BlockId,
    visible: &mut HashSet<ValueId>,
) -> IrResult<()> {
    let added_args: Vec<ValueId> = module.block(block).args.clone();
    for &arg in &added_args {
        visible.insert(arg);
    }
    let ops = module.block(block).ops.clone();
    let mut defined_here: Vec<ValueId> = Vec::new();
    for (position, &op) in ops.iter().enumerate() {
        verify_op(ctx, module, op, visible).map_err(|e| attach_path(module, op, e))?;
        let operation = module.op(op).expect("blocks hold live ops");
        // Terminator placement.
        let is_term = ctx.has_trait(operation.name, OpTrait::Terminator);
        if is_term && position + 1 != ops.len() {
            return Err(attach_path(
                module,
                op,
                IrError::verification(
                    operation.name.to_string(),
                    "terminator must be the last op in its block",
                ),
            ));
        }
        // Results become visible to later ops (dominance within a block).
        for &r in &operation.results {
            visible.insert(r);
            defined_here.push(r);
        }
        // Nested regions see the enclosing scope unless isolated.
        let isolated = ctx.has_trait(operation.name, OpTrait::IsolatedFromAbove);
        for &region in &operation.regions {
            if isolated {
                let mut fresh = HashSet::new();
                verify_region(ctx, module, region, &mut fresh)?;
            } else {
                verify_region(ctx, module, region, visible)?;
            }
        }
    }
    // Values defined in this block go out of scope when it ends.
    for v in defined_here {
        visible.remove(&v);
    }
    for arg in added_args {
        visible.remove(&arg);
    }
    Ok(())
}

/// Attaches the structural path of `op` to a verification error that
/// does not already carry one (dialect verifiers build path-less
/// errors; this driver is the one place that can locate the op).
fn attach_path(module: &Module, op: OpId, err: IrError) -> IrError {
    match OpPath::of(module, op) {
        Some(path) => err.with_path(path),
        None => err,
    }
}

fn verify_op(ctx: &Context, module: &Module, op: OpId, visible: &HashSet<ValueId>) -> IrResult<()> {
    let operation = module
        .op(op)
        .ok_or_else(|| IrError::InvalidId(format!("block references erased op {op}")))?;
    // Interned fast path: one hash lookup instead of a name split plus
    // two tree walks, once per verified op.
    let spec = ctx
        .spec_of(operation.name)
        .ok_or_else(|| IrError::Unregistered(operation.name.to_string()))?;

    if !spec.operands.check(operation.operands.len()) {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!(
                "operand count {} violates arity {:?}",
                operation.operands.len(),
                spec.operands
            ),
        });
    }
    if !spec.results.check(operation.results.len()) {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!(
                "result count {} violates arity {:?}",
                operation.results.len(),
                spec.results
            ),
        });
    }
    if let Some(n) = spec.num_regions {
        if operation.regions.len() != n {
            return Err(IrError::Verification {
                op: operation.name.to_string(),
                path: None,
                message: format!("expected {n} regions, found {}", operation.regions.len()),
            });
        }
    }
    for attr in &spec.required_attrs {
        if !operation.attributes.contains_key(attr) {
            return Err(IrError::Verification {
                op: operation.name.to_string(),
                path: None,
                message: format!("missing required attribute '{attr}'"),
            });
        }
    }
    // SSA visibility: every operand must dominate this op.
    for &operand in &operation.operands {
        if !visible.contains(&operand) {
            // Block arguments of enclosing non-isolated regions were added
            // when entering those blocks; anything else is a violation.
            return Err(IrError::Verification {
                op: operation.name.to_string(),
                path: None,
                message: format!("operand {operand} does not dominate its use"),
            });
        }
        // Also check that the operand's definition is live.
        match module.value(operand).def {
            ValueDef::OpResult { op: def_op, .. } => {
                if module.op(def_op).is_none() {
                    return Err(IrError::Verification {
                        op: operation.name.to_string(),
                        path: None,
                        message: format!("operand {operand} defined by erased op"),
                    });
                }
            }
            ValueDef::BlockArg { .. } => {}
        }
    }
    if let Some(custom) = spec.verify {
        custom(module, op)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::module::single_result;
    use crate::types::Type;

    fn ctx() -> Context {
        Context::with_all_dialects()
    }

    #[test]
    fn unregistered_op_rejected() {
        let mut m = Module::new();
        let top = m.top_block();
        m.build_op("nosuch.op", [], []).append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(matches!(err, IrError::Unregistered(_)));
    }

    #[test]
    fn missing_required_attribute_rejected() {
        let mut m = Module::new();
        let top = m.top_block();
        m.build_op("arith.constant", [], [Type::F64]).append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err
            .to_string()
            .contains("missing required attribute 'value'"));
    }

    #[test]
    fn use_before_def_rejected() {
        let mut m = Module::new();
        let top = m.top_block();
        // Build the constant first so its value exists, then build a user
        // placed *before* it in the block.
        let c = m
            .build_op("arith.constant", [], [Type::F64])
            .attr("value", Attribute::Float(1.0))
            .append_to(top);
        let v = single_result(&m, c);
        let user = m.build_op("arith.negf", [v], [Type::F64]).detached();
        m.insert_op_before(c, user);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("does not dominate"));
    }

    #[test]
    fn terminator_not_last_rejected() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = crate::dialects::core::build_func(&mut m, top, "f", &[], &[]);
        m.build_op("func.return", [], []).append_to(entry);
        m.build_op("arith.constant", [], [Type::F64])
            .attr("value", Attribute::Float(0.0))
            .append_to(entry);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("terminator must be the last op"));
    }

    #[test]
    fn isolated_region_cannot_capture() {
        let mut m = Module::new();
        let top = m.top_block();
        let c = crate::dialects::core::const_f64(&mut m, top, 1.0);
        // func.func is IsolatedFromAbove: using `c` inside must fail.
        let (f, entry) = crate::dialects::core::build_func(&mut m, top, "f", &[], &[]);
        let _ = f;
        m.build_op("arith.negf", [c], [Type::F64]).append_to(entry);
        m.build_op("func.return", [], []).append_to(entry);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("does not dominate"));
    }

    #[test]
    fn non_isolated_region_may_capture() {
        let mut m = Module::new();
        let top = m.top_block();
        let x = crate::dialects::core::const_f64(&mut m, top, 2.0);
        let lb = crate::dialects::core::const_index(&mut m, top, 0);
        let ub = crate::dialects::core::const_index(&mut m, top, 4);
        let step = crate::dialects::core::const_index(&mut m, top, 1);
        let (_loop, body) = crate::dialects::core::build_for(&mut m, top, lb, ub, step);
        // scf.for is not isolated: capturing x is fine.
        m.build_op("arith.negf", [x], [Type::F64]).append_to(body);
        m.build_op("scf.yield", [], []).append_to(body);
        verify_module(&ctx(), &m).unwrap();
    }

    #[test]
    fn verification_errors_carry_structural_paths() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = crate::dialects::core::build_func(&mut m, top, "f", &[], &[]);
        // Missing required attribute, nested one level inside the func.
        m.build_op("arith.constant", [], [Type::F64])
            .append_to(entry);
        m.build_op("func.return", [], []).append_to(entry);
        let err = verify_module(&ctx(), &m).unwrap_err();
        let path = err.path().expect("verifier attaches a path");
        assert_eq!(path.depth(), 2);
        assert_eq!(path.steps[0].op_name, "func.func");
        assert_eq!(path.leaf().unwrap().op_name, "arith.constant");
        assert!(err
            .to_string()
            .contains("(at region0.block0.op0(func.func)"));
    }

    #[test]
    fn arity_violation_rejected() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = crate::dialects::core::const_f64(&mut m, top, 1.0);
        m.build_op("arith.addf", [a], [Type::F64]).append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("operand count 1"));
    }
}
