//! Structural locations of operations inside a module.
//!
//! The IR carries no source-file locations, but every live op has a
//! unique *structural* position: the chain of (region, block, op index)
//! steps that leads from the module's top region down to the op. An
//! [`OpPath`] captures that chain so verification errors and analysis
//! diagnostics can point at the offending op precisely, even in deeply
//! nested modules.

use std::fmt;

use crate::ids::OpId;
use crate::module::Module;

/// One step of an [`OpPath`]: which region of the parent op was
/// entered, which block inside it, and the op's index in that block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathStep {
    /// Index of the region within its parent op (0 for the top region).
    pub region: usize,
    /// Index of the block within the region.
    pub block: usize,
    /// Index of the op within the block.
    pub position: usize,
    /// Fully qualified name of the op at this step.
    pub op_name: String,
}

/// The structural path from the module root to a specific operation.
///
/// Formats as `region0.block0.op2(func.func) / region0.block0.op1(arith.addf)`:
/// each step names the region/block/op indices taken plus the op found
/// there, and the last step is the op itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct OpPath {
    /// Steps from outermost to innermost; the final step is the op.
    pub steps: Vec<PathStep>,
}

impl OpPath {
    /// Computes the path of `target` by searching from the top region.
    ///
    /// Returns `None` if the op is erased or detached from the module's
    /// region tree (e.g. built with `detached()` and never inserted).
    pub fn of(module: &Module, target: OpId) -> Option<OpPath> {
        let mut steps = Vec::new();
        if search_region(module, module.top_region(), 0, target, &mut steps) {
            Some(OpPath { steps })
        } else {
            None
        }
    }

    /// The final step, i.e. the op the path points at.
    pub fn leaf(&self) -> Option<&PathStep> {
        self.steps.last()
    }

    /// Nesting depth (1 for a top-level op).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }
}

fn search_region(
    module: &Module,
    region: crate::ids::RegionId,
    region_index: usize,
    target: OpId,
    steps: &mut Vec<PathStep>,
) -> bool {
    for (block_index, &block) in module.region(region).blocks.iter().enumerate() {
        for (position, &op) in module.block(block).ops.iter().enumerate() {
            let Some(operation) = module.op(op) else {
                continue;
            };
            steps.push(PathStep {
                region: region_index,
                block: block_index,
                position,
                op_name: operation.name.to_string(),
            });
            if op == target {
                return true;
            }
            for (nested_index, &nested) in operation.regions.iter().enumerate() {
                if search_region(module, nested, nested_index, target, steps) {
                    return true;
                }
            }
            steps.pop();
        }
    }
    false
}

impl fmt::Display for OpPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " / ")?;
            }
            write!(
                f,
                "region{}.block{}.op{}({})",
                step.region, step.block, step.position, step.op_name
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::types::Type;

    #[test]
    fn top_level_op_has_single_step() {
        let mut m = Module::new();
        let top = m.top_block();
        let _a = crate::dialects::core::const_f64(&mut m, top, 1.0);
        let b = crate::dialects::core::const_f64(&mut m, top, 2.0);
        let b_op = match m.value(b).def {
            crate::module::ValueDef::OpResult { op, .. } => op,
            _ => unreachable!(),
        };
        let path = OpPath::of(&m, b_op).expect("op is attached");
        assert_eq!(path.depth(), 1);
        let leaf = path.leaf().unwrap();
        assert_eq!(leaf.position, 1);
        assert_eq!(leaf.op_name, "arith.constant");
        assert_eq!(path.to_string(), "region0.block0.op1(arith.constant)");
    }

    #[test]
    fn nested_op_path_walks_through_parents() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = crate::dialects::core::build_func(&mut m, top, "k", &[], &[]);
        let c = m
            .build_op("arith.constant", [], [Type::F64])
            .attr("value", Attribute::Float(3.0))
            .append_to(entry);
        m.build_op("func.return", [], []).append_to(entry);
        let path = OpPath::of(&m, c).expect("op is attached");
        assert_eq!(path.depth(), 2);
        assert_eq!(path.steps[0].op_name, "func.func");
        assert_eq!(path.leaf().unwrap().op_name, "arith.constant");
        assert!(path.to_string().contains("func.func"));
    }

    #[test]
    fn detached_op_has_no_path() {
        let mut m = Module::new();
        let op = m.build_op("arith.constant", [], [Type::F64]).detached();
        assert_eq!(OpPath::of(&m, op), None);
    }
}
