//! Textual printing of modules in MLIR generic form.
//!
//! Every op prints as
//! `%r0, %r1 = "dialect.op"(%a, %b) ({ ...regions... }) {attrs} : (tys) -> (tys)`
//! which the parser in [`crate::parse`] can read back. Printing is
//! deterministic (attributes are sorted), so printed text is usable as a
//! stable golden-file format in tests.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ids::{BlockId, OpId, RegionId, ValueId};
use crate::module::Module;

/// Prints a whole module to text.
pub fn print_module(module: &Module) -> String {
    let mut printer = Printer {
        module,
        names: HashMap::new(),
        next: 0,
        out: String::new(),
    };
    printer.out.push_str("module {\n");
    printer.print_block_body(module.top_block(), 1);
    printer.out.push_str("}\n");
    printer.out
}

struct Printer<'m> {
    module: &'m Module,
    names: HashMap<ValueId, usize>,
    next: usize,
    out: String,
}

impl<'m> Printer<'m> {
    fn name(&mut self, v: ValueId) -> usize {
        if let Some(&n) = self.names.get(&v) {
            n
        } else {
            let n = self.next;
            self.next += 1;
            self.names.insert(v, n);
            n
        }
    }

    fn indent(&mut self, level: usize) {
        for _ in 0..level {
            self.out.push_str("  ");
        }
    }

    fn print_block(&mut self, block: BlockId, level: usize) {
        self.indent(level);
        let args = self.module.block(block).args.clone();
        self.out.push_str("^bb(");
        for (i, &arg) in args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let n = self.name(arg);
            let ty = self.module.value_type(arg);
            let _ = write!(self.out, "%{n}: {ty}");
        }
        self.out.push_str("):\n");
        self.print_block_body(block, level + 1);
    }

    fn print_block_body(&mut self, block: BlockId, level: usize) {
        let ops = self.module.block(block).ops.clone();
        for op in ops {
            self.print_op(op, level);
        }
    }

    fn print_region(&mut self, region: RegionId, level: usize) {
        self.out.push_str("({\n");
        let blocks = self.module.region(region).blocks.clone();
        for block in blocks {
            self.print_block(block, level + 1);
        }
        self.indent(level);
        self.out.push_str("})");
    }

    fn print_op(&mut self, op: OpId, level: usize) {
        let Some(operation) = self.module.op(op) else {
            return;
        };
        let name = operation.name;
        let operands = operation.operands.clone();
        let results = operation.results.clone();
        let regions = operation.regions.clone();
        let attrs = operation.attributes.clone();

        self.indent(level);
        if !results.is_empty() {
            for (i, &r) in results.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let n = self.name(r);
                let _ = write!(self.out, "%{n}");
            }
            self.out.push_str(" = ");
        }
        let _ = write!(self.out, "\"{name}\"(");
        for (i, &o) in operands.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let n = self.name(o);
            let _ = write!(self.out, "%{n}");
        }
        self.out.push(')');
        for &region in &regions {
            self.out.push(' ');
            self.print_region(region, level);
        }
        if !attrs.is_empty() {
            self.out.push_str(" {");
            for (i, (k, v)) in attrs.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let _ = write!(self.out, "{k} = {v}");
            }
            self.out.push('}');
        }
        self.out.push_str(" : (");
        for (i, &o) in operands.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let ty = self.module.value_type(o);
            let _ = write!(self.out, "{ty}");
        }
        self.out.push_str(") -> (");
        for (i, &r) in results.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let ty = self.module.value_type(r);
            let _ = write!(self.out, "{ty}");
        }
        self.out.push_str(")\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::dialects::core;
    use crate::module::single_result;
    use crate::types::Type;

    #[test]
    fn print_flat_ops() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let b = core::const_f64(&mut m, top, 2.0);
        let add = m.build_op("arith.addf", [a, b], [Type::F64]).append_to(top);
        let _ = add;
        let text = print_module(&m);
        assert!(text.contains("\"arith.constant\"() {value = 1.0} : () -> (f64)"));
        assert!(text.contains("%2 = \"arith.addf\"(%0, %1)"));
    }

    #[test]
    fn print_nested_regions() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = core::build_func(&mut m, top, "main", &[Type::F64], &[Type::F64]);
        let x = m.block(entry).args[0];
        let neg = m.build_op("arith.negf", [x], [Type::F64]).append_to(entry);
        let nv = single_result(&m, neg);
        m.build_op("func.return", [nv], []).append_to(entry);
        let text = print_module(&m);
        assert!(text.contains("\"func.func\"() ({"));
        assert!(text.contains("^bb(%0: f64):"));
        assert!(text.contains("sym_name = \"main\""));
        assert!(text.contains("function_type = (f64) -> (f64)"));
    }

    #[test]
    fn printing_is_deterministic() {
        let mut m = Module::new();
        let top = m.top_block();
        let op = m
            .build_op("evp.kernel_instance", [], [])
            .attr("target", "alveo_u55c")
            .attr("kernel", Attribute::SymbolRef("k".into()))
            .append_to(top);
        let _ = op;
        let a = print_module(&m);
        let b = print_module(&m);
        assert_eq!(a, b);
        // attrs print sorted by key: kernel before target
        let ki = a.find("kernel = @k").unwrap();
        let ti = a.find("target = ").unwrap();
        assert!(ki < ti);
    }

    #[test]
    fn erased_ops_do_not_print() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = core::const_f64(&mut m, top, 1.0);
        let _ = a;
        let c = m.block(top).ops[0];
        m.erase_op(c).unwrap();
        let text = print_module(&m);
        assert!(!text.contains("arith.constant"));
    }
}
