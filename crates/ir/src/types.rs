//! The IR type system.
//!
//! Mirrors the abstraction levels used by the EVEREST MLIR stack: builtin
//! scalar/tensor/memref types, plus the custom numeric formats contributed
//! by the `base2` dialect (binary fixed-point and posit types, see Friebel
//! et al., *BASE2: An IR for Binary Numeral Types*, HEART 2023) and the
//! stream/token types of the `dfg` coordination dialect.

use std::fmt;

/// Memory space a `memref` lives in on the target platform.
///
/// The EVEREST system generator (Olympus) distinguishes host memory,
/// device-external memory (DDR/HBM) and on-fabric private local memory
/// (PLM, i.e. BRAM/URAM) when it creates data-movement architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum MemorySpace {
    /// Host (CPU) DRAM.
    #[default]
    Host,
    /// Device external memory: DDR or an HBM pseudo-channel.
    Device,
    /// On-fabric private local memory (BRAM/URAM).
    Plm,
}

impl fmt::Display for MemorySpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemorySpace::Host => write!(f, "host"),
            MemorySpace::Device => write!(f, "device"),
            MemorySpace::Plm => write!(f, "plm"),
        }
    }
}

/// A binary fixed-point format: `signed`, `int_bits` integer bits and
/// `frac_bits` fractional bits (two's complement when signed).
///
/// Total width is `int_bits + frac_bits + (signed as u32)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FixedFormat {
    /// Whether the format carries a sign bit.
    pub signed: bool,
    /// Number of integer bits (excluding the sign bit).
    pub int_bits: u32,
    /// Number of fractional bits.
    pub frac_bits: u32,
}

impl FixedFormat {
    /// Creates a signed fixed-point format.
    pub fn signed(int_bits: u32, frac_bits: u32) -> Self {
        Self {
            signed: true,
            int_bits,
            frac_bits,
        }
    }

    /// Creates an unsigned fixed-point format.
    pub fn unsigned(int_bits: u32, frac_bits: u32) -> Self {
        Self {
            signed: false,
            int_bits,
            frac_bits,
        }
    }

    /// Total storage width in bits.
    pub fn width(&self) -> u32 {
        self.int_bits + self.frac_bits + u32::from(self.signed)
    }

    /// Smallest representable increment (`2^-frac_bits`).
    pub fn resolution(&self) -> f64 {
        (2.0f64).powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        let steps = (1u128 << (self.int_bits + self.frac_bits)) - 1;
        steps as f64 * self.resolution()
    }

    /// Smallest representable value (0 for unsigned formats).
    pub fn min_value(&self) -> f64 {
        if self.signed {
            -((1u128 << (self.int_bits + self.frac_bits)) as f64) * self.resolution()
        } else {
            0.0
        }
    }
}

impl fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = if self.signed { "s" } else { "u" };
        write!(f, "!base2.fixed<{s}{},{}>", self.int_bits, self.frac_bits)
    }
}

/// A posit format `posit<width, es>` following the Posit standard (2022).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PositFormat {
    /// Total width in bits (>= 2).
    pub width: u32,
    /// Number of exponent bits.
    pub es: u32,
}

impl PositFormat {
    /// Creates a posit format.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2` — a posit needs at least a sign and a regime
    /// bit.
    pub fn new(width: u32, es: u32) -> Self {
        assert!(width >= 2, "posit width must be at least 2");
        Self { width, es }
    }

    /// `useed = 2^(2^es)`, the regime scaling base.
    pub fn useed(&self) -> f64 {
        (2.0f64).powi(1 << self.es)
    }
}

impl fmt::Display for PositFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "!base2.posit<{},{}>", self.width, self.es)
    }
}

/// The IR type of an SSA value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// Signless integer of the given bit width (`i1`, `i32`, ...).
    Int(u32),
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64.
    F64,
    /// Platform-sized index type used for loop induction variables.
    Index,
    /// The absence of a value.
    None,
    /// A binary fixed-point scalar (`base2` dialect).
    Fixed(FixedFormat),
    /// A posit scalar (`base2` dialect).
    Posit(PositFormat),
    /// An immutable ranked tensor value.
    Tensor {
        /// Dimension sizes; `None` encodes a dynamic dimension (`?`).
        shape: Vec<Option<u64>>,
        /// Element type (must be a scalar type).
        elem: Box<Type>,
    },
    /// A mutable ranked buffer in a memory space.
    MemRef {
        /// Dimension sizes; `None` encodes a dynamic dimension (`?`).
        shape: Vec<Option<u64>>,
        /// Element type (must be a scalar type).
        elem: Box<Type>,
        /// Where the buffer lives.
        space: MemorySpace,
    },
    /// A typed FIFO channel between dataflow nodes (`dfg` dialect).
    Stream(Box<Type>),
    /// A synchronization token (`dfg` dialect).
    Token,
    /// A function type (used on `func.func` and call-like ops).
    Function {
        /// Parameter types.
        inputs: Vec<Type>,
        /// Result types.
        outputs: Vec<Type>,
    },
}

impl Type {
    /// The boolean type `i1`.
    pub fn bool() -> Type {
        Type::Int(1)
    }

    /// Builds a static-shaped tensor type.
    pub fn tensor(shape: &[u64], elem: Type) -> Type {
        Type::Tensor {
            shape: shape.iter().map(|&d| Some(d)).collect(),
            elem: Box::new(elem),
        }
    }

    /// Builds a static-shaped memref type.
    pub fn memref(shape: &[u64], elem: Type, space: MemorySpace) -> Type {
        Type::MemRef {
            shape: shape.iter().map(|&d| Some(d)).collect(),
            elem: Box::new(elem),
            space,
        }
    }

    /// Returns `true` for scalar numeric types (integers, floats, base2
    /// formats and `index`).
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Type::Int(_) | Type::F32 | Type::F64 | Type::Index | Type::Fixed(_) | Type::Posit(_)
        )
    }

    /// Returns `true` for floating-point-like types on which `arith`
    /// float ops operate (including custom base2 formats, which HLS maps
    /// to dedicated functional units).
    pub fn is_float_like(&self) -> bool {
        matches!(
            self,
            Type::F32 | Type::F64 | Type::Fixed(_) | Type::Posit(_)
        )
    }

    /// Returns the shape of a tensor/memref type, if this is one.
    pub fn shape(&self) -> Option<&[Option<u64>]> {
        match self {
            Type::Tensor { shape, .. } | Type::MemRef { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// Returns the element type of a tensor/memref/stream type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Tensor { elem, .. } | Type::MemRef { elem, .. } | Type::Stream(elem) => {
                Some(elem)
            }
            _ => None,
        }
    }

    /// Number of elements if the shaped type is fully static.
    pub fn num_elements(&self) -> Option<u64> {
        self.shape()
            .map(|s| s.iter().try_fold(1u64, |acc, d| d.map(|d| acc * d)))?
    }

    /// Storage width in bits of a scalar type, if known.
    pub fn bit_width(&self) -> Option<u32> {
        match self {
            Type::Int(w) => Some(*w),
            Type::F32 => Some(32),
            Type::F64 => Some(64),
            Type::Index => Some(64),
            Type::Fixed(fmt) => Some(fmt.width()),
            Type::Posit(fmt) => Some(fmt.width),
            _ => None,
        }
    }
}

fn write_shape(f: &mut fmt::Formatter<'_>, shape: &[Option<u64>]) -> fmt::Result {
    for dim in shape {
        match dim {
            Some(d) => write!(f, "{d}x")?,
            None => write!(f, "?x")?,
        }
    }
    Ok(())
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int(w) => write!(f, "i{w}"),
            Type::F32 => write!(f, "f32"),
            Type::F64 => write!(f, "f64"),
            Type::Index => write!(f, "index"),
            Type::None => write!(f, "none"),
            Type::Fixed(fmt) => write!(f, "{fmt}"),
            Type::Posit(fmt) => write!(f, "{fmt}"),
            Type::Tensor { shape, elem } => {
                write!(f, "tensor<")?;
                write_shape(f, shape)?;
                write!(f, "{elem}>")
            }
            Type::MemRef { shape, elem, space } => {
                write!(f, "memref<")?;
                write_shape(f, shape)?;
                write!(f, "{elem}, {space}>")
            }
            Type::Stream(elem) => write!(f, "!dfg.stream<{elem}>"),
            Type::Token => write!(f, "!dfg.token"),
            Type::Function { inputs, outputs } => {
                write!(f, "(")?;
                for (i, t) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ") -> (")?;
                for (i, t) in outputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_format_width_and_range() {
        let q = FixedFormat::signed(7, 8); // s7.8 => 16 bits
        assert_eq!(q.width(), 16);
        assert!((q.resolution() - 1.0 / 256.0).abs() < 1e-12);
        assert!(q.max_value() > 127.9 && q.max_value() < 128.0);
        assert_eq!(q.min_value(), -128.0);

        let u = FixedFormat::unsigned(8, 8);
        assert_eq!(u.width(), 16);
        assert_eq!(u.min_value(), 0.0);
    }

    #[test]
    fn posit_useed() {
        assert_eq!(PositFormat::new(16, 1).useed(), 4.0);
        assert_eq!(PositFormat::new(32, 2).useed(), 16.0);
        assert_eq!(PositFormat::new(8, 0).useed(), 2.0);
    }

    #[test]
    #[should_panic(expected = "width must be at least 2")]
    fn posit_too_narrow_panics() {
        let _ = PositFormat::new(1, 0);
    }

    #[test]
    fn tensor_display_and_elements() {
        let t = Type::tensor(&[4, 8], Type::F64);
        assert_eq!(t.to_string(), "tensor<4x8xf64>");
        assert_eq!(t.num_elements(), Some(32));
        assert_eq!(t.elem(), Some(&Type::F64));
    }

    #[test]
    fn dynamic_tensor_has_unknown_element_count() {
        let t = Type::Tensor {
            shape: vec![Some(4), None],
            elem: Box::new(Type::F32),
        };
        assert_eq!(t.to_string(), "tensor<4x?xf32>");
        assert_eq!(t.num_elements(), None);
    }

    #[test]
    fn memref_display_includes_space() {
        let m = Type::memref(&[1024], Type::F32, MemorySpace::Plm);
        assert_eq!(m.to_string(), "memref<1024xf32, plm>");
    }

    #[test]
    fn scalar_classification() {
        assert!(Type::F64.is_scalar());
        assert!(Type::Fixed(FixedFormat::signed(3, 4)).is_scalar());
        assert!(!Type::tensor(&[2], Type::F64).is_scalar());
        assert!(Type::Posit(PositFormat::new(16, 1)).is_float_like());
        assert!(!Type::Int(32).is_float_like());
    }

    #[test]
    fn bit_widths() {
        assert_eq!(Type::Int(17).bit_width(), Some(17));
        assert_eq!(Type::F32.bit_width(), Some(32));
        assert_eq!(Type::Fixed(FixedFormat::signed(7, 8)).bit_width(), Some(16));
        assert_eq!(Type::tensor(&[2], Type::F64).bit_width(), None);
    }

    #[test]
    fn function_type_display() {
        let ty = Type::Function {
            inputs: vec![Type::F64, Type::Index],
            outputs: vec![Type::F64],
        };
        assert_eq!(ty.to_string(), "(f64, index) -> (f64)");
    }

    #[test]
    fn stream_and_token_display() {
        assert_eq!(
            Type::Stream(Box::new(Type::F32)).to_string(),
            "!dfg.stream<f32>"
        );
        assert_eq!(Type::Token.to_string(), "!dfg.token");
    }
}
