//! Dialect and operation registry.
//!
//! A [`Context`] holds the set of registered dialects. Each dialect
//! declares its operations through [`OpSpec`]s: operand/result arity
//! constraints, structural traits and an optional custom verifier. The
//! [verifier](crate::verify) checks every op in a module against these
//! specs — exactly the role MLIR's ODS-generated verifiers play.

use std::collections::{BTreeMap, HashMap};

use crate::error::{IrError, IrResult};
use crate::ids::OpId;
use crate::intern::Symbol;
use crate::module::Module;

/// Structural traits an operation can declare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpTrait {
    /// No side effects; may be erased when unused and CSE'd.
    Pure,
    /// Must be the last op in its block.
    Terminator,
    /// Defines a symbol via a `sym_name` attribute.
    Symbol,
    /// All operand and result types must be identical.
    SameOperandResultTypes,
    /// The op's regions may not capture values from enclosing scopes.
    IsolatedFromAbove,
    /// The op folds to a constant (has a `value` attribute).
    ConstantLike,
    /// Commutative binary op (operand order irrelevant for CSE).
    Commutative,
}

/// Arity constraint for operands or results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n`.
    Exact(usize),
    /// At least `n`.
    AtLeast(usize),
    /// Anything.
    Variadic,
}

impl Arity {
    /// Returns `true` when `n` satisfies the constraint.
    pub fn check(&self, n: usize) -> bool {
        match self {
            Arity::Exact(k) => n == *k,
            Arity::AtLeast(k) => n >= *k,
            Arity::Variadic => true,
        }
    }
}

/// Custom verification hook: receives the module and the op being checked.
pub type VerifyFn = fn(&Module, OpId) -> IrResult<()>;

/// Static description of one operation kind.
#[derive(Debug, Clone)]
pub struct OpSpec {
    /// Op name without the dialect prefix.
    pub name: String,
    /// Operand arity constraint.
    pub operands: Arity,
    /// Result arity constraint.
    pub results: Arity,
    /// Number of regions the op must carry (`None` = any).
    pub num_regions: Option<usize>,
    /// Attribute names that must be present.
    pub required_attrs: Vec<String>,
    /// Structural traits.
    pub traits: Vec<OpTrait>,
    /// Optional custom verifier.
    pub verify: Option<VerifyFn>,
}

impl OpSpec {
    /// Creates a spec with the given arities and no further constraints.
    pub fn new(name: &str, operands: Arity, results: Arity) -> Self {
        OpSpec {
            name: name.to_string(),
            operands,
            results,
            num_regions: Some(0),
            required_attrs: Vec::new(),
            traits: Vec::new(),
            verify: None,
        }
    }

    /// Sets the exact region count.
    pub fn with_regions(mut self, n: usize) -> Self {
        self.num_regions = Some(n);
        self
    }

    /// Allows any number of regions.
    pub fn with_any_regions(mut self) -> Self {
        self.num_regions = None;
        self
    }

    /// Adds a required attribute.
    pub fn with_attr(mut self, name: &str) -> Self {
        self.required_attrs.push(name.to_string());
        self
    }

    /// Adds a trait.
    pub fn with_trait(mut self, t: OpTrait) -> Self {
        self.traits.push(t);
        self
    }

    /// Sets a custom verifier.
    pub fn with_verifier(mut self, f: VerifyFn) -> Self {
        self.verify = Some(f);
        self
    }

    /// Returns `true` if the spec declares the trait.
    pub fn has_trait(&self, t: OpTrait) -> bool {
        self.traits.contains(&t)
    }
}

/// A dialect: a namespace of operation specs.
#[derive(Debug, Clone)]
pub struct Dialect {
    /// Namespace prefix (`"arith"`, `"teil"`, ...).
    pub name: String,
    /// One-line description shown in diagnostics and docs.
    pub description: String,
    ops: BTreeMap<String, OpSpec>,
}

impl Dialect {
    /// Creates an empty dialect.
    pub fn new(name: &str, description: &str) -> Self {
        Dialect {
            name: name.to_string(),
            description: description.to_string(),
            ops: BTreeMap::new(),
        }
    }

    /// Registers an op spec.
    ///
    /// # Panics
    ///
    /// Panics if the op name was already registered (a programming error
    /// in dialect definitions).
    pub fn register(&mut self, spec: OpSpec) {
        let prev = self.ops.insert(spec.name.clone(), spec);
        assert!(prev.is_none(), "duplicate op registration");
    }

    /// Looks up an op spec by its short name.
    pub fn op_spec(&self, short_name: &str) -> Option<&OpSpec> {
        self.ops.get(short_name)
    }

    /// Iterates all specs in the dialect.
    pub fn iter(&self) -> impl Iterator<Item = &OpSpec> {
        self.ops.values()
    }

    /// Number of registered ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no ops are registered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The registry of dialects available to verification and passes.
///
/// Alongside the per-dialect spec trees, the context keeps a flat cache
/// from interned full op name ([`Symbol`]) to spec, so the hot queries
/// passes and the verifier issue per op — [`Context::spec_of`],
/// [`Context::has_trait`] — are a single hash lookup on a `u32` id
/// instead of a name split plus two tree walks. The cache is plain data
/// rebuilt at registration time, so a `&Context` stays `Sync` and can
/// be shared across pass-manager worker threads.
#[derive(Debug, Clone, Default)]
pub struct Context {
    dialects: BTreeMap<String, Dialect>,
    spec_cache: HashMap<Symbol, OpSpec>,
}

impl Context {
    /// Creates an empty context (no dialects).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a context with every EVEREST and core dialect registered.
    ///
    /// This is the configuration the SDK's `basecamp` entry point uses.
    pub fn with_all_dialects() -> Self {
        let mut ctx = Context::new();
        for d in crate::dialects::all_dialects() {
            ctx.register_dialect(d);
        }
        ctx
    }

    /// Registers a dialect.
    ///
    /// # Panics
    ///
    /// Panics if a dialect with the same name is already present.
    pub fn register_dialect(&mut self, dialect: Dialect) {
        assert!(
            !self.dialects.contains_key(&dialect.name),
            "duplicate dialect registration"
        );
        for spec in dialect.iter() {
            let full = Symbol::new(&format!("{}.{}", dialect.name, spec.name));
            self.spec_cache.insert(full, spec.clone());
        }
        self.dialects.insert(dialect.name.clone(), dialect);
    }

    /// Looks up a dialect by name.
    pub fn dialect(&self, name: &str) -> Option<&Dialect> {
        self.dialects.get(name)
    }

    /// Resolves the spec for a fully qualified op name.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Unregistered`] if the dialect or op is unknown.
    pub fn op_spec(&self, full_name: &str) -> IrResult<&OpSpec> {
        let (dialect, op) = full_name
            .split_once('.')
            .ok_or_else(|| IrError::Unregistered(full_name.to_string()))?;
        self.dialects
            .get(dialect)
            .and_then(|d| d.op_spec(op))
            .ok_or_else(|| IrError::Unregistered(full_name.to_string()))
    }

    /// Returns `true` if the op declares the given trait.
    pub fn op_has_trait(&self, full_name: &str, t: OpTrait) -> bool {
        self.op_spec(full_name)
            .map(|s| s.has_trait(t))
            .unwrap_or(false)
    }

    /// Resolves the spec for an interned op name: one hash lookup on
    /// the symbol id, no name splitting. `None` for unregistered ops.
    pub fn spec_of(&self, name: Symbol) -> Option<&OpSpec> {
        self.spec_cache.get(&name)
    }

    /// Fast-path trait query keyed on the interned op name; the form
    /// passes use per visited op.
    pub fn has_trait(&self, name: Symbol, t: OpTrait) -> bool {
        self.spec_cache.get(&name).is_some_and(|s| s.has_trait(t))
    }

    /// Names of all registered dialects.
    pub fn dialect_names(&self) -> Vec<&str> {
        self.dialects.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dialect() -> Dialect {
        let mut d = Dialect::new("toy", "a test dialect");
        d.register(OpSpec::new("add", Arity::Exact(2), Arity::Exact(1)).with_trait(OpTrait::Pure));
        d.register(
            OpSpec::new("ret", Arity::Variadic, Arity::Exact(0)).with_trait(OpTrait::Terminator),
        );
        d
    }

    #[test]
    fn arity_checks() {
        assert!(Arity::Exact(2).check(2));
        assert!(!Arity::Exact(2).check(3));
        assert!(Arity::AtLeast(1).check(5));
        assert!(!Arity::AtLeast(1).check(0));
        assert!(Arity::Variadic.check(0));
    }

    #[test]
    fn context_resolves_specs() {
        let mut ctx = Context::new();
        ctx.register_dialect(sample_dialect());
        let spec = ctx.op_spec("toy.add").unwrap();
        assert!(spec.has_trait(OpTrait::Pure));
        assert!(ctx.op_spec("toy.mul").is_err());
        assert!(ctx.op_spec("other.add").is_err());
        assert!(ctx.op_spec("noperiod").is_err());
    }

    #[test]
    fn trait_query_on_unknown_op_is_false() {
        let ctx = Context::new();
        assert!(!ctx.op_has_trait("toy.add", OpTrait::Pure));
    }

    #[test]
    #[should_panic(expected = "duplicate op registration")]
    fn duplicate_op_panics() {
        let mut d = sample_dialect();
        d.register(OpSpec::new("add", Arity::Exact(2), Arity::Exact(1)));
    }

    #[test]
    fn all_dialects_context_contains_everest_stack() {
        let ctx = Context::with_all_dialects();
        for name in [
            "arith", "func", "scf", "memref", "tensor", "ekl", "cfdlang", "teil", "esn", "dfg",
            "base2", "bit", "cyclic", "ub", "evp", "olympus",
        ] {
            assert!(ctx.dialect(name).is_some(), "missing dialect {name}");
        }
    }
}
