//! # everest-ir
//!
//! An MLIR-style intermediate representation infrastructure plus the
//! EVEREST dialect stack (Pilato et al., *The EVEREST Approach*, DATE
//! 2024, Fig. 5).
//!
//! The crate provides:
//!
//! * an arena-based IR ([`module`]): operations, regions, blocks and SSA
//!   values, with def-use queries and destructive rewrites;
//! * a [type system](types) including the `base2` binary numeral formats
//!   (fixed-point and posit) with bit-accurate [software semantics](base2);
//! * a [dialect registry](registry) and a structural + per-op
//!   [verifier](verify);
//! * a deterministic [printer](mod@print) and a round-tripping
//!   [parser](parse) for the generic textual form;
//! * a [pass manager](pass) with canonicalization passes (constant
//!   folding, CSE, DCE);
//! * the EVEREST [dialects]: `ekl`, `cfdlang`, `teil`, `esn`, `dfg`,
//!   `base2`, `bit`, `cyclic`, `ub`, `evp`, `olympus`, and the core
//!   dialects (`func`, `arith`, `scf`, `memref`, `tensor`) they lower to.
//!
//! # Examples
//!
//! Build, verify, canonicalize and print a tiny module:
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use everest_ir::dialects::core;
//! use everest_ir::module::Module;
//! use everest_ir::pass::canonicalization_pipeline;
//! use everest_ir::registry::Context;
//! use everest_ir::verify::verify_module;
//!
//! let ctx = Context::with_all_dialects();
//! let mut module = Module::new();
//! let block = module.top_block();
//! let a = core::const_f64(&mut module, block, 3.0);
//! let b = core::const_f64(&mut module, block, 4.0);
//! core::binary(&mut module, block, "arith.addf", a, b);
//!
//! verify_module(&ctx, &module)?;
//! canonicalization_pipeline().run(&ctx, &mut module)?;
//! assert_eq!(module.num_ops(), 0); // unused arithmetic folds away
//! # Ok(())
//! # }
//! ```

pub mod attr;
pub mod base2;
pub mod dialects;
pub mod error;
pub mod ids;
pub mod intern;
pub mod interp;
pub mod location;
pub mod lowering;
pub mod module;
pub mod parse;
pub mod pass;
pub mod print;
pub mod registry;
pub mod types;
pub mod verify;

pub use attr::Attribute;
pub use error::{IrError, IrResult};
pub use ids::{BlockId, OpId, RegionId, ValueId};
pub use intern::Symbol;
pub use location::{OpPath, PathStep};
pub use module::{Module, Operation};
pub use registry::{Context, Dialect, OpSpec, OpTrait};
pub use types::{FixedFormat, MemorySpace, PositFormat, Type};
