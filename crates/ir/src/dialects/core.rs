//! Core (green, MLIR-mirroring) dialects: `builtin`, `func`, `arith`,
//! `scf`, `memref` and `tensor`.
//!
//! These reproduce the subset of upstream MLIR that the EVEREST lowerings
//! target: structured control flow and scalar arithmetic are what the HLS
//! backend ([`everest-hls`](https://crates.io)) schedules.

use crate::attr::Attribute;
use crate::error::{IrError, IrResult};
use crate::ids::{BlockId, OpId, ValueId};
use crate::module::{single_result, Module};
use crate::registry::{Arity, Dialect, OpSpec, OpTrait};
use crate::types::Type;

// ---------------------------------------------------------------------------
// builtin
// ---------------------------------------------------------------------------

/// The `builtin` dialect: module-level glue ops.
pub fn builtin_dialect() -> Dialect {
    let mut d = Dialect::new("builtin", "module-level glue operations");
    d.register(
        OpSpec::new("unrealized_cast", Arity::Exact(1), Arity::Exact(1)).with_trait(OpTrait::Pure),
    );
    d
}

// ---------------------------------------------------------------------------
// func
// ---------------------------------------------------------------------------

fn verify_func(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let ty = operation
        .attr("function_type")
        .and_then(Attribute::as_type)
        .ok_or_else(|| IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: "missing 'function_type' type attribute".into(),
        })?;
    let Type::Function { inputs, .. } = ty else {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: "'function_type' must be a function type".into(),
        });
    };
    let region = operation.regions[0];
    let entry = *m
        .region(region)
        .blocks
        .first()
        .ok_or_else(|| IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: "function body must have an entry block".into(),
        })?;
    let args = &m.block(entry).args;
    if args.len() != inputs.len() {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!(
                "entry block has {} arguments but function type expects {}",
                args.len(),
                inputs.len()
            ),
        });
    }
    for (arg, expected) in args.iter().zip(inputs) {
        if m.value_type(*arg) != expected {
            return Err(IrError::Verification {
                op: operation.name.to_string(),
                path: None,
                message: format!(
                    "entry argument type {} does not match function type {}",
                    m.value_type(*arg),
                    expected
                ),
            });
        }
    }
    Ok(())
}

/// The `func` dialect: functions, returns and calls.
pub fn func_dialect() -> Dialect {
    let mut d = Dialect::new("func", "functions and calls");
    d.register(
        OpSpec::new("func", Arity::Exact(0), Arity::Exact(0))
            .with_regions(1)
            .with_attr("sym_name")
            .with_attr("function_type")
            .with_trait(OpTrait::Symbol)
            .with_trait(OpTrait::IsolatedFromAbove)
            .with_verifier(verify_func),
    );
    d.register(
        OpSpec::new("return", Arity::Variadic, Arity::Exact(0)).with_trait(OpTrait::Terminator),
    );
    d.register(OpSpec::new("call", Arity::Variadic, Arity::Variadic).with_attr("callee"));
    d
}

/// Builds a `func.func` with an entry block; returns `(op, entry_block)`.
pub fn build_func(
    m: &mut Module,
    parent: BlockId,
    name: &str,
    inputs: &[Type],
    outputs: &[Type],
) -> (OpId, BlockId) {
    let fty = Type::Function {
        inputs: inputs.to_vec(),
        outputs: outputs.to_vec(),
    };
    let f = m
        .build_op("func.func", [], [])
        .attr("sym_name", name)
        .attr("function_type", fty)
        .regions(1)
        .append_to(parent);
    let region = m.op(f).expect("just built").regions[0];
    let entry = m.add_block(region, inputs);
    (f, entry)
}

// ---------------------------------------------------------------------------
// arith
// ---------------------------------------------------------------------------

fn verify_same_types(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let mut types = operation
        .operands
        .iter()
        .map(|&v| m.value_type(v))
        .chain(operation.results.iter().map(|&v| m.value_type(v)));
    if let Some(first) = types.next() {
        for t in types {
            if t != first {
                return Err(IrError::Verification {
                    op: operation.name.to_string(),
                    path: None,
                    message: format!("operand/result types differ: {first} vs {t}"),
                });
            }
        }
    }
    Ok(())
}

/// The `arith` dialect: scalar integer/float arithmetic and comparisons.
pub fn arith_dialect() -> Dialect {
    let mut d = Dialect::new("arith", "scalar arithmetic");
    d.register(
        OpSpec::new("constant", Arity::Exact(0), Arity::Exact(1))
            .with_attr("value")
            .with_trait(OpTrait::Pure)
            .with_trait(OpTrait::ConstantLike),
    );
    for (name, commutative) in [
        ("addf", true),
        ("subf", false),
        ("mulf", true),
        ("divf", false),
        ("maxf", true),
        ("minf", true),
        ("addi", true),
        ("subi", false),
        ("muli", true),
        ("divsi", false),
        ("remsi", false),
        ("andi", true),
        ("ori", true),
        ("xori", true),
    ] {
        let mut spec = OpSpec::new(name, Arity::Exact(2), Arity::Exact(1))
            .with_trait(OpTrait::Pure)
            .with_trait(OpTrait::SameOperandResultTypes)
            .with_verifier(verify_same_types);
        if commutative {
            spec = spec.with_trait(OpTrait::Commutative);
        }
        d.register(spec);
    }
    for name in ["negf", "absf", "sqrt", "exp", "log"] {
        d.register(
            OpSpec::new(name, Arity::Exact(1), Arity::Exact(1))
                .with_trait(OpTrait::Pure)
                .with_trait(OpTrait::SameOperandResultTypes)
                .with_verifier(verify_same_types),
        );
    }
    for name in ["cmpf", "cmpi"] {
        d.register(
            OpSpec::new(name, Arity::Exact(2), Arity::Exact(1))
                .with_attr("predicate")
                .with_trait(OpTrait::Pure),
        );
    }
    d.register(OpSpec::new("select", Arity::Exact(3), Arity::Exact(1)).with_trait(OpTrait::Pure));
    for name in ["index_cast", "sitofp", "fptosi", "extf", "truncf"] {
        d.register(OpSpec::new(name, Arity::Exact(1), Arity::Exact(1)).with_trait(OpTrait::Pure));
    }
    d
}

/// Builds an `arith.constant` float and returns its result value.
pub fn const_f64(m: &mut Module, block: BlockId, v: f64) -> ValueId {
    let op = m
        .build_op("arith.constant", [], [Type::F64])
        .attr("value", Attribute::Float(v))
        .append_to(block);
    single_result(m, op)
}

/// Builds an `arith.constant` index and returns its result value.
pub fn const_index(m: &mut Module, block: BlockId, v: i64) -> ValueId {
    let op = m
        .build_op("arith.constant", [], [Type::Index])
        .attr("value", Attribute::Int(v))
        .append_to(block);
    single_result(m, op)
}

/// Builds a binary `arith` op (e.g. `"arith.addf"`) and returns its result.
pub fn binary(m: &mut Module, block: BlockId, name: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
    let ty = m.value_type(lhs).clone();
    let op = m.build_op(name, [lhs, rhs], [ty]).append_to(block);
    single_result(m, op)
}

// ---------------------------------------------------------------------------
// scf
// ---------------------------------------------------------------------------

fn verify_for(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    if operation.operands.len() < 3 {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: "scf.for needs at least lb, ub and step operands".into(),
        });
    }
    let num_iter_args = operation.operands.len() - 3;
    if operation.results.len() != num_iter_args {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!(
                "scf.for with {num_iter_args} iter args must have {num_iter_args} results, got {}",
                operation.results.len()
            ),
        });
    }
    let region = operation.regions[0];
    let entry = *m
        .region(region)
        .blocks
        .first()
        .ok_or_else(|| IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: "scf.for body must have an entry block".into(),
        })?;
    let num_args = m.block(entry).args.len();
    if num_args != 1 + num_iter_args {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!(
                "scf.for body must take induction variable plus {num_iter_args} iter args, got {num_args}"
            ),
        });
    }
    Ok(())
}

/// The `scf` dialect: structured control flow (`for`, `if`, `yield`).
pub fn scf_dialect() -> Dialect {
    let mut d = Dialect::new("scf", "structured control flow");
    d.register(
        OpSpec::new("for", Arity::AtLeast(3), Arity::Variadic)
            .with_regions(1)
            .with_verifier(verify_for),
    );
    d.register(OpSpec::new("if", Arity::Exact(1), Arity::Variadic).with_regions(2));
    d.register(
        OpSpec::new("yield", Arity::Variadic, Arity::Exact(0)).with_trait(OpTrait::Terminator),
    );
    d
}

/// Builds an `scf.for` over `[lb, ub) step` with no iter args; returns the
/// loop op and the body block (whose first argument is the induction
/// variable).
pub fn build_for(
    m: &mut Module,
    block: BlockId,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
) -> (OpId, BlockId) {
    let op = m
        .build_op("scf.for", [lb, ub, step], [])
        .regions(1)
        .append_to(block);
    let region = m.op(op).expect("just built").regions[0];
    let body = m.add_block(region, &[Type::Index]);
    (op, body)
}

// ---------------------------------------------------------------------------
// memref
// ---------------------------------------------------------------------------

fn verify_load(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let base = m.value_type(operation.operands[0]);
    let Type::MemRef { shape, elem, .. } = base else {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("first operand must be a memref, got {base}"),
        });
    };
    if operation.operands.len() - 1 != shape.len() {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!(
                "memref of rank {} indexed with {} indices",
                shape.len(),
                operation.operands.len() - 1
            ),
        });
    }
    let result = m.value_type(operation.results[0]);
    if result != elem.as_ref() {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("result type {result} does not match element type {elem}"),
        });
    }
    Ok(())
}

fn verify_store(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let base = m.value_type(operation.operands[1]);
    let Type::MemRef { shape, elem, .. } = base else {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("second operand must be a memref, got {base}"),
        });
    };
    if operation.operands.len() - 2 != shape.len() {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!(
                "memref of rank {} indexed with {} indices",
                shape.len(),
                operation.operands.len() - 2
            ),
        });
    }
    let stored = m.value_type(operation.operands[0]);
    if stored != elem.as_ref() {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("stored type {stored} does not match element type {elem}"),
        });
    }
    Ok(())
}

/// The `memref` dialect: mutable buffers.
pub fn memref_dialect() -> Dialect {
    let mut d = Dialect::new("memref", "mutable buffers");
    d.register(OpSpec::new("alloc", Arity::Exact(0), Arity::Exact(1)));
    d.register(OpSpec::new("dealloc", Arity::Exact(1), Arity::Exact(0)));
    d.register(
        OpSpec::new("load", Arity::AtLeast(1), Arity::Exact(1))
            .with_trait(OpTrait::Pure)
            .with_verifier(verify_load),
    );
    d.register(
        OpSpec::new("store", Arity::AtLeast(2), Arity::Exact(0)).with_verifier(verify_store),
    );
    d.register(OpSpec::new("copy", Arity::Exact(2), Arity::Exact(0)));
    d
}

/// Builds a `memref.alloc` of the given type; returns the buffer value.
pub fn alloc(m: &mut Module, block: BlockId, ty: Type) -> ValueId {
    let op = m.build_op("memref.alloc", [], [ty]).append_to(block);
    single_result(m, op)
}

// ---------------------------------------------------------------------------
// tensor
// ---------------------------------------------------------------------------

/// The `tensor` dialect: immutable tensor values.
pub fn tensor_dialect() -> Dialect {
    let mut d = Dialect::new("tensor", "immutable tensor values");
    d.register(OpSpec::new("empty", Arity::Exact(0), Arity::Exact(1)).with_trait(OpTrait::Pure));
    d.register(
        OpSpec::new("extract", Arity::AtLeast(1), Arity::Exact(1)).with_trait(OpTrait::Pure),
    );
    d.register(OpSpec::new("insert", Arity::AtLeast(2), Arity::Exact(1)).with_trait(OpTrait::Pure));
    d.register(OpSpec::new("dim", Arity::Exact(2), Arity::Exact(1)).with_trait(OpTrait::Pure));
    d.register(
        OpSpec::new("from_elements", Arity::Variadic, Arity::Exact(1)).with_trait(OpTrait::Pure),
    );
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    fn ctx() -> crate::registry::Context {
        crate::registry::Context::with_all_dialects()
    }

    #[test]
    fn build_and_verify_function_with_loop() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_f, entry) = build_func(&mut m, top, "axpy", &[Type::F64], &[Type::F64]);
        let x = m.block(entry).args[0];
        let lb = const_index(&mut m, entry, 0);
        let ub = const_index(&mut m, entry, 16);
        let step = const_index(&mut m, entry, 1);
        let (_loop, body) = build_for(&mut m, entry, lb, ub, step);
        m.build_op("scf.yield", [], []).append_to(body);
        m.build_op("func.return", [x], []).append_to(entry);
        verify_module(&ctx(), &m).unwrap();
    }

    #[test]
    fn func_with_wrong_entry_arity_fails_verification() {
        let mut m = Module::new();
        let top = m.top_block();
        let fty = Type::Function {
            inputs: vec![Type::F64, Type::F64],
            outputs: vec![],
        };
        let f = m
            .build_op("func.func", [], [])
            .attr("sym_name", "bad")
            .attr("function_type", fty)
            .regions(1)
            .append_to(top);
        let region = m.op(f).unwrap().regions[0];
        let entry = m.add_block(region, &[Type::F64]); // one arg, type wants two
        m.build_op("func.return", [], []).append_to(entry);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("entry block has 1 arguments"));
    }

    #[test]
    fn scf_for_missing_induction_arg_fails() {
        let mut m = Module::new();
        let top = m.top_block();
        let lb = const_index(&mut m, top, 0);
        let ub = const_index(&mut m, top, 4);
        let step = const_index(&mut m, top, 1);
        let op = m
            .build_op("scf.for", [lb, ub, step], [])
            .regions(1)
            .append_to(top);
        let region = m.op(op).unwrap().regions[0];
        let body = m.add_block(region, &[]); // missing induction variable
        m.build_op("scf.yield", [], []).append_to(body);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("induction variable"));
    }

    #[test]
    fn load_store_type_checks() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = alloc(
            &mut m,
            top,
            Type::memref(&[8], Type::F64, crate::types::MemorySpace::Plm),
        );
        let i = const_index(&mut m, top, 0);
        let load = m
            .build_op("memref.load", [buf, i], [Type::F64])
            .append_to(top);
        let v = single_result(&m, load);
        m.build_op("memref.store", [v, buf, i], []).append_to(top);
        verify_module(&ctx(), &m).unwrap();
    }

    #[test]
    fn load_with_wrong_rank_fails() {
        let mut m = Module::new();
        let top = m.top_block();
        let buf = alloc(
            &mut m,
            top,
            Type::memref(&[8, 8], Type::F64, crate::types::MemorySpace::Device),
        );
        let i = const_index(&mut m, top, 0);
        m.build_op("memref.load", [buf, i], [Type::F64])
            .append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("rank 2 indexed with 1"));
    }

    #[test]
    fn same_type_verifier_rejects_mixed_addf() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = const_f64(&mut m, top, 1.0);
        let bop = m
            .build_op("arith.constant", [], [Type::F32])
            .attr("value", Attribute::Float(2.0))
            .append_to(top);
        let b = single_result(&m, bop);
        m.build_op("arith.addf", [a, b], [Type::F64]).append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("types differ"));
    }
}
