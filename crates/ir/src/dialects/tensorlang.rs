//! Tensor-language dialects: `ekl`, `cfdlang`, `teil` and `esn`.
//!
//! These are the frontend and mid-level tensor abstractions of the
//! EVEREST compilation flow (paper §V-B, Fig. 5):
//!
//! * `ekl` — the EVEREST Kernel Language entry dialect. The frontend
//!   (crate `everest-ekl`) parses EKL text and emits an `ekl.kernel`
//!   wrapping `teil`/`esn` tensor expressions.
//! * `cfdlang` — the legacy CFDlang tensor DSL, kept for compatibility.
//! * `teil` — the typed Tensor Intermediate Language (Rink et al.,
//!   ARRAY 2019): shape-checked tensor operations including the
//!   extensions the paper lists for RRTMG — `select`, broadcasting,
//!   `gather` for subscripted subscripts and in-place construction.
//! * `esn` — generalized Einstein-notation contractions.

use crate::attr::Attribute;
use crate::error::{IrError, IrResult};
use crate::ids::OpId;
use crate::module::Module;
use crate::registry::{Arity, Dialect, OpSpec, OpTrait};
use crate::types::Type;

// ---------------------------------------------------------------------------
// shape utilities (shared by verifiers and lowerings)
// ---------------------------------------------------------------------------

/// Computes the broadcastable result shape of two static shapes following
/// NumPy-style trailing-dimension alignment.
///
/// # Errors
///
/// Returns [`IrError::Type`] when a pair of dimensions is incompatible.
pub fn broadcast_shapes(a: &[Option<u64>], b: &[Option<u64>]) -> IrResult<Vec<Option<u64>>> {
    let rank = a.len().max(b.len());
    let mut out = Vec::with_capacity(rank);
    for i in 0..rank {
        let da = if i < rank - a.len() {
            Some(1)
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            Some(1)
        } else {
            b[i - (rank - b.len())]
        };
        let dim = match (da, db) {
            (Some(1), d) | (d, Some(1)) => d,
            (Some(x), Some(y)) if x == y => Some(x),
            (None, d) | (d, None) => d,
            (Some(x), Some(y)) => {
                return Err(IrError::Type(format!(
                    "cannot broadcast dimensions {x} and {y}"
                )))
            }
        };
        out.push(dim);
    }
    Ok(out)
}

fn tensor_shape(m: &Module, op: OpId, v: crate::ids::ValueId) -> IrResult<&[Option<u64>]> {
    let ty = m.value_type(v);
    ty.shape().ok_or_else(|| IrError::Verification {
        op: m.op(op).map(|o| o.name.to_string()).unwrap_or_default(),
        path: None,
        message: format!("expected a tensor operand, got {ty}"),
    })
}

fn verify_elementwise(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let name = operation.name;
    let a = tensor_shape(m, op, operation.operands[0])?.to_vec();
    let b = tensor_shape(m, op, operation.operands[1])?.to_vec();
    let result = tensor_shape(m, op, operation.results[0])?.to_vec();
    let expect = broadcast_shapes(&a, &b).map_err(|e| IrError::Verification {
        op: name.to_string(),
        path: None,
        message: e.to_string(),
    })?;
    if result != expect {
        return Err(IrError::Verification {
            op: name.to_string(),
            path: None,
            message: format!("result shape {result:?} does not match broadcast shape {expect:?}"),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// ekl
// ---------------------------------------------------------------------------

/// The `ekl` dialect: EVEREST Kernel Language entry ops.
pub fn ekl_dialect() -> Dialect {
    let mut d = Dialect::new("ekl", "EVEREST Kernel Language frontend ops");
    d.register(
        OpSpec::new("kernel", Arity::Exact(0), Arity::Exact(0))
            .with_regions(1)
            .with_attr("sym_name")
            .with_trait(OpTrait::Symbol)
            .with_trait(OpTrait::IsolatedFromAbove),
    );
    d.register(OpSpec::new("input", Arity::Exact(0), Arity::Exact(1)).with_attr("name"));
    d.register(OpSpec::new("output", Arity::Exact(1), Arity::Exact(0)).with_attr("name"));
    d.register(
        OpSpec::new("yield", Arity::Variadic, Arity::Exact(0)).with_trait(OpTrait::Terminator),
    );
    d
}

// ---------------------------------------------------------------------------
// cfdlang
// ---------------------------------------------------------------------------

/// The `cfdlang` dialect: legacy CFDlang tensor programs.
pub fn cfdlang_dialect() -> Dialect {
    let mut d = Dialect::new("cfdlang", "legacy CFDlang tensor DSL");
    d.register(
        OpSpec::new("program", Arity::Exact(0), Arity::Exact(0))
            .with_regions(1)
            .with_attr("sym_name")
            .with_trait(OpTrait::Symbol),
    );
    d.register(OpSpec::new("decl", Arity::Exact(0), Arity::Exact(1)).with_attr("name"));
    for name in ["add", "sub", "mul", "div"] {
        d.register(
            OpSpec::new(name, Arity::Exact(2), Arity::Exact(1))
                .with_trait(OpTrait::Pure)
                .with_verifier(verify_elementwise),
        );
    }
    d.register(
        OpSpec::new("contract", Arity::Exact(2), Arity::Exact(1))
            .with_attr("indices")
            .with_trait(OpTrait::Pure),
    );
    d.register(
        OpSpec::new("yield", Arity::Variadic, Arity::Exact(0)).with_trait(OpTrait::Terminator),
    );
    d
}

// ---------------------------------------------------------------------------
// teil
// ---------------------------------------------------------------------------

fn verify_gather(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let name = operation.name;
    // gather(table, indices): indices must be an integer tensor.
    let idx_ty = m.value_type(operation.operands[1]);
    let ok = matches!(idx_ty.elem(), Some(Type::Int(_)) | Some(Type::Index));
    if !ok {
        return Err(IrError::Verification {
            op: name.to_string(),
            path: None,
            message: format!("gather indices must be an integer tensor, got {idx_ty}"),
        });
    }
    Ok(())
}

fn verify_reduce(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let name = operation.name;
    let dims = operation
        .attr("dims")
        .and_then(Attribute::as_array)
        .ok_or_else(|| IrError::Verification {
            op: name.to_string(),
            path: None,
            message: "missing 'dims' array attribute".into(),
        })?;
    let rank = tensor_shape(m, op, operation.operands[0])?.len();
    for d in dims {
        let Some(d) = d.as_int() else {
            return Err(IrError::Verification {
                op: name.to_string(),
                path: None,
                message: "'dims' must contain integers".into(),
            });
        };
        if d < 0 || d as usize >= rank {
            return Err(IrError::Verification {
                op: name.to_string(),
                path: None,
                message: format!("reduce dim {d} out of range for rank {rank}"),
            });
        }
    }
    Ok(())
}

/// The `teil` dialect: typed tensor intermediate language.
pub fn teil_dialect() -> Dialect {
    let mut d = Dialect::new("teil", "typed tensor intermediate language");
    d.register(
        OpSpec::new("constant", Arity::Exact(0), Arity::Exact(1))
            .with_attr("value")
            .with_trait(OpTrait::Pure)
            .with_trait(OpTrait::ConstantLike),
    );
    for name in ["add", "sub", "mul", "div", "max", "min"] {
        d.register(
            OpSpec::new(name, Arity::Exact(2), Arity::Exact(1))
                .with_trait(OpTrait::Pure)
                .with_verifier(verify_elementwise),
        );
    }
    // select(cond, then, else): elementwise with broadcasting.
    d.register(OpSpec::new("select", Arity::Exact(3), Arity::Exact(1)).with_trait(OpTrait::Pure));
    // cmp(lhs, rhs) {predicate}: produces an i1 tensor.
    d.register(
        OpSpec::new("cmp", Arity::Exact(2), Arity::Exact(1))
            .with_attr("predicate")
            .with_trait(OpTrait::Pure),
    );
    d.register(
        OpSpec::new("transpose", Arity::Exact(1), Arity::Exact(1))
            .with_attr("perm")
            .with_trait(OpTrait::Pure),
    );
    d.register(OpSpec::new("reshape", Arity::Exact(1), Arity::Exact(1)).with_trait(OpTrait::Pure));
    // gather(table, indices): subscripted subscripts `k[i_T[x,t], ...]`.
    d.register(
        OpSpec::new("gather", Arity::Exact(2), Arity::Exact(1))
            .with_attr("axis")
            .with_trait(OpTrait::Pure)
            .with_verifier(verify_gather),
    );
    // reduce(input) {dims, kind}: sum/max/min/mean over dims.
    d.register(
        OpSpec::new("reduce", Arity::Exact(1), Arity::Exact(1))
            .with_attr("dims")
            .with_attr("kind")
            .with_trait(OpTrait::Pure)
            .with_verifier(verify_reduce),
    );
    // contract(lhs, rhs) {lhs_indices, rhs_indices, out_indices}: binary
    // tensor contraction in explicit index form.
    d.register(
        OpSpec::new("contract", Arity::Exact(2), Arity::Exact(1))
            .with_attr("lhs_indices")
            .with_attr("rhs_indices")
            .with_attr("out_indices")
            .with_trait(OpTrait::Pure),
    );
    // iota {dim}: index tensor along a dimension (for index arithmetic).
    d.register(
        OpSpec::new("iota", Arity::Exact(0), Arity::Exact(1))
            .with_attr("dim")
            .with_trait(OpTrait::Pure),
    );
    // in-place construction target: `materialize(dst_like)`
    d.register(OpSpec::new("materialize", Arity::Exact(1), Arity::Exact(1)));
    d
}

// ---------------------------------------------------------------------------
// esn
// ---------------------------------------------------------------------------

/// Parses an einsum notation string like `"xe,xtpe,tpeg->gx"` into
/// per-operand index lists and the output index list.
///
/// # Errors
///
/// Returns [`IrError::Type`] when the notation is syntactically invalid.
pub fn parse_einsum_notation(spec: &str) -> IrResult<(Vec<Vec<char>>, Vec<char>)> {
    let (lhs, rhs) = spec
        .split_once("->")
        .ok_or_else(|| IrError::Type(format!("einsum notation '{spec}' missing '->'")))?;
    let inputs: Vec<Vec<char>> = lhs.split(',').map(|s| s.trim().chars().collect()).collect();
    if inputs.iter().any(|i: &Vec<char>| i.is_empty()) && lhs.trim() != "" {
        // empty index lists encode scalars; allow them.
    }
    let out: Vec<char> = rhs.trim().chars().collect();
    for c in inputs.iter().flatten().chain(out.iter()) {
        if !c.is_ascii_alphabetic() {
            return Err(IrError::Type(format!(
                "einsum index '{c}' must be an ASCII letter"
            )));
        }
    }
    // Every output index must appear in some input.
    for c in &out {
        if !inputs.iter().any(|ix| ix.contains(c)) {
            return Err(IrError::Type(format!(
                "einsum output index '{c}' does not appear in any input"
            )));
        }
    }
    Ok((inputs, out))
}

fn verify_einsum(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let name = operation.name;
    let spec = operation
        .str_attr("notation")
        .ok_or_else(|| IrError::Verification {
            op: name.to_string(),
            path: None,
            message: "missing 'notation' string attribute".into(),
        })?;
    let (inputs, _out) = parse_einsum_notation(spec).map_err(|e| IrError::Verification {
        op: name.to_string(),
        path: None,
        message: e.to_string(),
    })?;
    if inputs.len() != operation.operands.len() {
        return Err(IrError::Verification {
            op: name.to_string(),
            path: None,
            message: format!(
                "notation has {} inputs but op has {} operands",
                inputs.len(),
                operation.operands.len()
            ),
        });
    }
    for (ix, &operand) in inputs.iter().zip(&operation.operands) {
        let rank = tensor_shape(m, op, operand)?.len();
        if ix.len() != rank {
            return Err(IrError::Verification {
                op: name.to_string(),
                path: None,
                message: format!("operand of rank {rank} labelled with {} indices", ix.len()),
            });
        }
    }
    Ok(())
}

/// The `esn` dialect: generalized Einstein notation.
pub fn esn_dialect() -> Dialect {
    let mut d = Dialect::new("esn", "generalized Einstein notation");
    d.register(
        OpSpec::new("einsum", Arity::AtLeast(1), Arity::Exact(1))
            .with_attr("notation")
            .with_trait(OpTrait::Pure)
            .with_verifier(verify_einsum),
    );
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::single_result;
    use crate::registry::Context;
    use crate::verify::verify_module;

    fn ctx() -> Context {
        Context::with_all_dialects()
    }

    fn tensor_const(m: &mut Module, shape: &[u64]) -> crate::ids::ValueId {
        let n: u64 = shape.iter().product();
        let block = m.top_block();
        let op = m
            .build_op("teil.constant", [], [Type::tensor(shape, Type::F64)])
            .attr("value", Attribute::DenseF64(vec![0.0; n as usize]))
            .append_to(block);
        single_result(m, op)
    }

    #[test]
    fn broadcast_rules() {
        let a = [Some(4), Some(1)];
        let b = [Some(1), Some(8)];
        assert_eq!(broadcast_shapes(&a, &b).unwrap(), vec![Some(4), Some(8)]);
        // trailing alignment
        assert_eq!(
            broadcast_shapes(&[Some(5)], &[Some(3), Some(5)]).unwrap(),
            vec![Some(3), Some(5)]
        );
        assert!(broadcast_shapes(&[Some(3)], &[Some(4)]).is_err());
        // dynamic dims pass through
        assert_eq!(broadcast_shapes(&[None], &[Some(1)]).unwrap(), vec![None]);
    }

    #[test]
    fn teil_add_broadcast_verifies() {
        let mut m = Module::new();
        let a = tensor_const(&mut m, &[4, 1]);
        let b = tensor_const(&mut m, &[1, 8]);
        let block = m.top_block();
        m.build_op("teil.add", [a, b], [Type::tensor(&[4, 8], Type::F64)])
            .append_to(block);
        verify_module(&ctx(), &m).unwrap();
    }

    #[test]
    fn teil_add_wrong_result_shape_fails() {
        let mut m = Module::new();
        let a = tensor_const(&mut m, &[4]);
        let b = tensor_const(&mut m, &[4]);
        let block = m.top_block();
        m.build_op("teil.add", [a, b], [Type::tensor(&[5], Type::F64)])
            .append_to(block);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("does not match broadcast shape"));
    }

    #[test]
    fn einsum_notation_parses() {
        let (inputs, out) = parse_einsum_notation("xe,xtpe,tpeg->gx").unwrap();
        assert_eq!(inputs.len(), 3);
        assert_eq!(inputs[1], vec!['x', 't', 'p', 'e']);
        assert_eq!(out, vec!['g', 'x']);
    }

    #[test]
    fn einsum_notation_rejects_unknown_output_index() {
        assert!(parse_einsum_notation("ab->c").is_err());
        assert!(parse_einsum_notation("ab,bc").is_err());
        assert!(parse_einsum_notation("a1->a").is_err());
    }

    #[test]
    fn einsum_verifier_checks_ranks() {
        let mut m = Module::new();
        let a = tensor_const(&mut m, &[4, 8]);
        let b = tensor_const(&mut m, &[8, 2]);
        let block = m.top_block();
        m.build_op("esn.einsum", [a, b], [Type::tensor(&[4, 2], Type::F64)])
            .attr("notation", "ij,jk->ik")
            .append_to(block);
        verify_module(&ctx(), &m).unwrap();

        // Wrong rank labelling:
        let mut m2 = Module::new();
        let c = {
            let b = m2.top_block();
            let op = m2
                .build_op("teil.constant", [], [Type::tensor(&[4], Type::F64)])
                .attr("value", Attribute::DenseF64(vec![0.0; 4]))
                .append_to(b);
            single_result(&m2, op)
        };
        let block2 = m2.top_block();
        m2.build_op("esn.einsum", [c], [Type::tensor(&[4], Type::F64)])
            .attr("notation", "ij->i")
            .append_to(block2);
        assert!(verify_module(&ctx(), &m2).is_err());
    }

    #[test]
    fn gather_requires_integer_indices() {
        let mut m = Module::new();
        let table = tensor_const(&mut m, &[16]);
        let blk = m.top_block();
        let idx_op = m
            .build_op("teil.constant", [], [Type::tensor(&[4], Type::Int(32))])
            .attr("value", Attribute::DenseI64(vec![0, 1, 2, 3]))
            .append_to(blk);
        let idx = single_result(&m, idx_op);
        let block = m.top_block();
        m.build_op("teil.gather", [table, idx], [Type::tensor(&[4], Type::F64)])
            .attr("axis", Attribute::Int(0))
            .append_to(block);
        verify_module(&ctx(), &m).unwrap();

        // float indices rejected
        let mut m2 = Module::new();
        let table2 = {
            let b = m2.top_block();
            let op = m2
                .build_op("teil.constant", [], [Type::tensor(&[16], Type::F64)])
                .attr("value", Attribute::DenseF64(vec![0.0; 16]))
                .append_to(b);
            single_result(&m2, op)
        };
        let fidx = {
            let b = m2.top_block();
            let op = m2
                .build_op("teil.constant", [], [Type::tensor(&[4], Type::F64)])
                .attr("value", Attribute::DenseF64(vec![0.0; 4]))
                .append_to(b);
            single_result(&m2, op)
        };
        let block2 = m2.top_block();
        m2.build_op(
            "teil.gather",
            [table2, fidx],
            [Type::tensor(&[4], Type::F64)],
        )
        .attr("axis", Attribute::Int(0))
        .append_to(block2);
        assert!(verify_module(&ctx(), &m2).is_err());
    }

    #[test]
    fn reduce_dims_bounds_checked() {
        let mut m = Module::new();
        let a = tensor_const(&mut m, &[4, 8]);
        let block = m.top_block();
        m.build_op("teil.reduce", [a], [Type::tensor(&[4], Type::F64)])
            .attr("dims", Attribute::int_array([7]))
            .attr("kind", "sum")
            .append_to(block);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
