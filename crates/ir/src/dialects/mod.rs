//! The EVEREST dialect stack (paper Fig. 5).
//!
//! Blue (EVEREST-contributed) dialects: `ekl`, `cfdlang`, `teil`, `esn`,
//! `dfg`, `base2`, `bit`, `cyclic`, `ub`, `evp`, `olympus`. Green (core
//! MLIR) dialects reimplemented here at the granularity the lowerings
//! need: `func`, `arith`, `scf`, `memref`, `tensor` and `builtin`.

pub mod core;
pub mod dataflow;
pub mod numerics;
pub mod system;
pub mod tensorlang;

use crate::registry::Dialect;

/// Returns every dialect in the EVEREST stack, ready for registration in a
/// [`Context`](crate::registry::Context).
pub fn all_dialects() -> Vec<Dialect> {
    vec![
        core::builtin_dialect(),
        core::func_dialect(),
        core::arith_dialect(),
        core::scf_dialect(),
        core::memref_dialect(),
        core::tensor_dialect(),
        tensorlang::ekl_dialect(),
        tensorlang::cfdlang_dialect(),
        tensorlang::teil_dialect(),
        tensorlang::esn_dialect(),
        dataflow::dfg_dialect(),
        numerics::base2_dialect(),
        numerics::bit_dialect(),
        numerics::cyclic_dialect(),
        numerics::ub_dialect(),
        system::evp_dialect(),
        system::olympus_dialect(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_dialects_registered() {
        assert_eq!(all_dialects().len(), 17);
    }

    #[test]
    fn dialect_names_are_unique() {
        let mut names: Vec<String> = all_dialects().into_iter().map(|d| d.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_dialect_has_ops_and_description() {
        for d in all_dialects() {
            assert!(!d.is_empty(), "dialect {} has no ops", d.name);
            assert!(!d.description.is_empty());
        }
    }
}
