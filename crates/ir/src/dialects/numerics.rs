//! Numeric-representation dialects: `base2`, `bit`, `cyclic`, `ub`.
//!
//! `base2` (Friebel et al., HEART 2023) models binary numeral types —
//! fixed-point and posit — so the compiler can trade accuracy for FPGA
//! resources (paper §V-B and the "custom data formats" technical
//! highlight in §VIII). `bit` provides bit-level manipulation, `cyclic`
//! modular index arithmetic for ring buffers, and `ub` explicit
//! undefined-behaviour values (being upstreamed to core MLIR per the
//! paper).

use crate::error::{IrError, IrResult};
use crate::ids::OpId;
use crate::module::Module;
use crate::registry::{Arity, Dialect, OpSpec, OpTrait};
use crate::types::Type;

fn is_base2_scalar(ty: &Type) -> bool {
    matches!(ty, Type::Fixed(_) | Type::Posit(_))
}

fn verify_quantize(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let src = m.value_type(operation.operands[0]);
    let dst = m.value_type(operation.results[0]);
    if !matches!(src, Type::F32 | Type::F64) {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("quantize source must be a float, got {src}"),
        });
    }
    if !is_base2_scalar(dst) {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("quantize result must be a base2 type, got {dst}"),
        });
    }
    Ok(())
}

fn verify_dequantize(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let src = m.value_type(operation.operands[0]);
    let dst = m.value_type(operation.results[0]);
    if !is_base2_scalar(src) {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("dequantize source must be a base2 type, got {src}"),
        });
    }
    if !matches!(dst, Type::F32 | Type::F64) {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("dequantize result must be a float, got {dst}"),
        });
    }
    Ok(())
}

fn verify_base2_arith(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let name = operation.name;
    let first = m.value_type(operation.operands[0]).clone();
    if !is_base2_scalar(&first) {
        return Err(IrError::Verification {
            op: name.to_string(),
            path: None,
            message: format!("base2 arithmetic requires base2 operands, got {first}"),
        });
    }
    for &v in operation.operands.iter().chain(&operation.results) {
        if m.value_type(v) != &first {
            return Err(IrError::Verification {
                op: name.to_string(),
                path: None,
                message: "all base2 operands/results must share one format".into(),
            });
        }
    }
    Ok(())
}

/// The `base2` dialect.
pub fn base2_dialect() -> Dialect {
    let mut d = Dialect::new("base2", "binary numeral types (fixed-point, posit)");
    d.register(
        OpSpec::new("quantize", Arity::Exact(1), Arity::Exact(1))
            .with_trait(OpTrait::Pure)
            .with_verifier(verify_quantize),
    );
    d.register(
        OpSpec::new("dequantize", Arity::Exact(1), Arity::Exact(1))
            .with_trait(OpTrait::Pure)
            .with_verifier(verify_dequantize),
    );
    for name in ["add", "sub", "mul", "div"] {
        d.register(
            OpSpec::new(name, Arity::Exact(2), Arity::Exact(1))
                .with_trait(OpTrait::Pure)
                .with_verifier(verify_base2_arith),
        );
    }
    // convert between two base2 formats
    d.register(OpSpec::new("convert", Arity::Exact(1), Arity::Exact(1)).with_trait(OpTrait::Pure));
    d
}

fn verify_int_only(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    for &v in operation.operands.iter().chain(&operation.results) {
        let ty = m.value_type(v);
        if !matches!(ty, Type::Int(_)) {
            return Err(IrError::Verification {
                op: operation.name.to_string(),
                path: None,
                message: format!("bit ops require integer types, got {ty}"),
            });
        }
    }
    Ok(())
}

fn verify_extract(m: &Module, op: OpId) -> IrResult<()> {
    verify_int_only(m, op)?;
    let operation = m.op(op).expect("verifier receives live ops");
    let lo = operation.int_attr("lo").unwrap_or(0);
    let hi = operation.int_attr("hi").unwrap_or(0);
    let src_width = m.value_type(operation.operands[0]).bit_width().unwrap_or(0) as i64;
    if lo > hi || hi >= src_width {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("bit range [{lo}, {hi}] invalid for width {src_width}"),
        });
    }
    let want = (hi - lo + 1) as u32;
    let got = m.value_type(operation.results[0]).bit_width().unwrap_or(0);
    if want != got {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("extract of {want} bits must produce i{want}, got i{got}"),
        });
    }
    Ok(())
}

/// The `bit` dialect.
pub fn bit_dialect() -> Dialect {
    let mut d = Dialect::new("bit", "bit-level manipulation");
    for name in ["and", "or", "xor", "shl", "shr"] {
        d.register(
            OpSpec::new(name, Arity::Exact(2), Arity::Exact(1))
                .with_trait(OpTrait::Pure)
                .with_verifier(verify_int_only),
        );
    }
    d.register(
        OpSpec::new("not", Arity::Exact(1), Arity::Exact(1))
            .with_trait(OpTrait::Pure)
            .with_verifier(verify_int_only),
    );
    d.register(OpSpec::new("popcount", Arity::Exact(1), Arity::Exact(1)).with_trait(OpTrait::Pure));
    d.register(
        OpSpec::new("extract", Arity::Exact(1), Arity::Exact(1))
            .with_attr("lo")
            .with_attr("hi")
            .with_trait(OpTrait::Pure)
            .with_verifier(verify_extract),
    );
    d.register(OpSpec::new("concat", Arity::AtLeast(1), Arity::Exact(1)).with_trait(OpTrait::Pure));
    d
}

fn verify_modulus(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let modulus = operation
        .int_attr("modulus")
        .ok_or_else(|| IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: "missing 'modulus' attribute".into(),
        })?;
    if modulus <= 0 {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("modulus must be positive, got {modulus}"),
        });
    }
    Ok(())
}

/// The `cyclic` dialect: modular index arithmetic for ring buffers.
pub fn cyclic_dialect() -> Dialect {
    let mut d = Dialect::new("cyclic", "modular index arithmetic");
    for name in ["inc", "dec"] {
        d.register(
            OpSpec::new(name, Arity::Exact(1), Arity::Exact(1))
                .with_attr("modulus")
                .with_trait(OpTrait::Pure)
                .with_verifier(verify_modulus),
        );
    }
    d.register(
        OpSpec::new("dist", Arity::Exact(2), Arity::Exact(1))
            .with_attr("modulus")
            .with_trait(OpTrait::Pure)
            .with_verifier(verify_modulus),
    );
    d
}

/// The `ub` dialect: explicit undefined-behaviour values.
pub fn ub_dialect() -> Dialect {
    let mut d = Dialect::new("ub", "explicit undefined behaviour");
    d.register(OpSpec::new("poison", Arity::Exact(0), Arity::Exact(1)).with_trait(OpTrait::Pure));
    d.register(OpSpec::new("freeze", Arity::Exact(1), Arity::Exact(1)));
    d
}

/// Evaluates `cyclic.inc` semantics: `(v + 1) mod modulus`.
pub fn cyclic_inc(v: i64, modulus: i64) -> i64 {
    (v + 1).rem_euclid(modulus)
}

/// Evaluates `cyclic.dec` semantics: `(v - 1) mod modulus`.
pub fn cyclic_dec(v: i64, modulus: i64) -> i64 {
    (v - 1).rem_euclid(modulus)
}

/// Evaluates `cyclic.dist` semantics: forward distance from `a` to `b`.
pub fn cyclic_dist(a: i64, b: i64, modulus: i64) -> i64 {
    (b - a).rem_euclid(modulus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::module::single_result;
    use crate::registry::Context;
    use crate::types::{FixedFormat, PositFormat};
    use crate::verify::verify_module;

    fn ctx() -> Context {
        Context::with_all_dialects()
    }

    #[test]
    fn quantize_dequantize_roundtrip_verifies() {
        let mut m = Module::new();
        let top = m.top_block();
        let x = crate::dialects::core::const_f64(&mut m, top, 1.5);
        let fixed = Type::Fixed(FixedFormat::signed(7, 8));
        let q = m
            .build_op("base2.quantize", [x], [fixed.clone()])
            .append_to(top);
        let qv = single_result(&m, q);
        let q2 = m
            .build_op(
                "base2.quantize",
                [x],
                [Type::Posit(PositFormat::new(16, 1))],
            )
            .append_to(top);
        let _ = q2;
        let add = m.build_op("base2.add", [qv, qv], [fixed]).append_to(top);
        let av = single_result(&m, add);
        m.build_op("base2.dequantize", [av], [Type::F64])
            .append_to(top);
        verify_module(&ctx(), &m).unwrap();
    }

    #[test]
    fn base2_add_mixed_formats_fails() {
        let mut m = Module::new();
        let top = m.top_block();
        let x = crate::dialects::core::const_f64(&mut m, top, 1.0);
        let fa = Type::Fixed(FixedFormat::signed(7, 8));
        let fb = Type::Fixed(FixedFormat::signed(3, 12));
        let qa = m
            .build_op("base2.quantize", [x], [fa.clone()])
            .append_to(top);
        let qb = m.build_op("base2.quantize", [x], [fb]).append_to(top);
        let va = single_result(&m, qa);
        let vb = single_result(&m, qb);
        m.build_op("base2.add", [va, vb], [fa]).append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("share one format"));
    }

    #[test]
    fn quantize_from_non_float_fails() {
        let mut m = Module::new();
        let top = m.top_block();
        let i = crate::dialects::core::const_index(&mut m, top, 3);
        m.build_op(
            "base2.quantize",
            [i],
            [Type::Fixed(FixedFormat::signed(7, 8))],
        )
        .append_to(top);
        assert!(verify_module(&ctx(), &m).is_err());
    }

    #[test]
    fn bit_extract_range_checked() {
        let mut m = Module::new();
        let top = m.top_block();
        let c = m
            .build_op("arith.constant", [], [Type::Int(16)])
            .attr("value", Attribute::Int(0x1234))
            .append_to(top);
        let v = single_result(&m, c);
        m.build_op("bit.extract", [v], [Type::Int(4)])
            .attr("lo", Attribute::Int(4))
            .attr("hi", Attribute::Int(7))
            .append_to(top);
        verify_module(&ctx(), &m).unwrap();

        let mut m2 = Module::new();
        let top2 = m2.top_block();
        let c2 = m2
            .build_op("arith.constant", [], [Type::Int(8)])
            .attr("value", Attribute::Int(1))
            .append_to(top2);
        let v2 = single_result(&m2, c2);
        m2.build_op("bit.extract", [v2], [Type::Int(4)])
            .attr("lo", Attribute::Int(6))
            .attr("hi", Attribute::Int(9))
            .append_to(top2);
        assert!(verify_module(&ctx(), &m2).is_err());
    }

    #[test]
    fn cyclic_semantics() {
        assert_eq!(cyclic_inc(7, 8), 0);
        assert_eq!(cyclic_inc(3, 8), 4);
        assert_eq!(cyclic_dec(0, 8), 7);
        assert_eq!(cyclic_dist(6, 2, 8), 4);
        assert_eq!(cyclic_dist(2, 6, 8), 4);
        assert_eq!(cyclic_dist(5, 5, 8), 0);
    }

    #[test]
    fn cyclic_requires_positive_modulus() {
        let mut m = Module::new();
        let top = m.top_block();
        let i = crate::dialects::core::const_index(&mut m, top, 0);
        m.build_op("cyclic.inc", [i], [Type::Index])
            .attr("modulus", Attribute::Int(0))
            .append_to(top);
        assert!(verify_module(&ctx(), &m).is_err());
    }

    #[test]
    fn ub_poison_freeze() {
        let mut m = Module::new();
        let top = m.top_block();
        let p = m.build_op("ub.poison", [], [Type::F64]).append_to(top);
        let pv = single_result(&m, p);
        m.build_op("ub.freeze", [pv], [Type::F64]).append_to(top);
        verify_module(&ctx(), &m).unwrap();
    }
}
