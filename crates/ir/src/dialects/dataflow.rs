//! The `dfg` dialect: coordination-level dataflow graphs.
//!
//! ConDRust programs (paper §V-A.2) are compiled into `dfg.graph` ops whose
//! nodes are sequential computations connected by typed FIFO channels. The
//! deterministic executor in crate `everest-condrust` interprets this
//! dialect; Olympus maps `dfg.node`s onto FPGA kernels or CPU tasks.

use crate::attr::Attribute;
use crate::error::{IrError, IrResult};
use crate::ids::OpId;
use crate::module::Module;
use crate::registry::{Arity, Dialect, OpSpec, OpTrait};
use crate::types::Type;

fn verify_channel(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let ty = m.value_type(operation.results[0]);
    if !matches!(ty, Type::Stream(_)) {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("channel must produce a !dfg.stream type, got {ty}"),
        });
    }
    if let Some(cap) = operation.int_attr("capacity") {
        if cap <= 0 {
            return Err(IrError::Verification {
                op: operation.name.to_string(),
                path: None,
                message: format!("channel capacity must be positive, got {cap}"),
            });
        }
    }
    Ok(())
}

fn verify_node(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    // All node operands and results must be streams or tokens.
    for &v in operation.operands.iter().chain(&operation.results) {
        let ty = m.value_type(v);
        if !matches!(ty, Type::Stream(_) | Type::Token) {
            return Err(IrError::Verification {
                op: operation.name.to_string(),
                path: None,
                message: format!("node ports must be streams or tokens, got {ty}"),
            });
        }
    }
    Ok(())
}

/// The `dfg` dialect.
pub fn dfg_dialect() -> Dialect {
    let mut d = Dialect::new("dfg", "coordination-level dataflow graphs");
    d.register(
        OpSpec::new("graph", Arity::Exact(0), Arity::Exact(0))
            .with_regions(1)
            .with_attr("sym_name")
            .with_trait(OpTrait::Symbol)
            .with_trait(OpTrait::IsolatedFromAbove),
    );
    d.register(
        OpSpec::new("channel", Arity::Exact(0), Arity::Exact(1)).with_verifier(verify_channel),
    );
    d.register(
        OpSpec::new("node", Arity::Variadic, Arity::Variadic)
            .with_attr("callee")
            .with_verifier(verify_node),
    );
    // feed(value-stream) — external input into the graph.
    d.register(OpSpec::new("feed", Arity::Exact(1), Arity::Exact(0)).with_attr("name"));
    // sink(stream) — external output of the graph.
    d.register(OpSpec::new("sink", Arity::Exact(1), Arity::Exact(0)).with_attr("name"));
    d.register(
        OpSpec::new("yield", Arity::Variadic, Arity::Exact(0)).with_trait(OpTrait::Terminator),
    );
    d
}

/// Builds a `dfg.graph` and returns `(graph_op, body_block)`.
pub fn build_graph(
    m: &mut Module,
    parent: crate::ids::BlockId,
    name: &str,
) -> (OpId, crate::ids::BlockId) {
    let g = m
        .build_op("dfg.graph", [], [])
        .attr("sym_name", name)
        .regions(1)
        .append_to(parent);
    let region = m.op(g).expect("just built").regions[0];
    let body = m.add_block(region, &[]);
    (g, body)
}

/// Builds a `dfg.channel` of element type `elem` with a FIFO capacity.
pub fn build_channel(
    m: &mut Module,
    block: crate::ids::BlockId,
    elem: Type,
    capacity: i64,
) -> crate::ids::ValueId {
    let op = m
        .build_op("dfg.channel", [], [Type::Stream(Box::new(elem))])
        .attr("capacity", Attribute::Int(capacity))
        .append_to(block);
    crate::module::single_result(m, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Context;
    use crate::verify::verify_module;

    fn ctx() -> Context {
        Context::with_all_dialects()
    }

    #[test]
    fn build_pipeline_graph() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "map_match");
        let c1 = build_channel(&mut m, body, Type::F64, 16);
        let c2 = build_channel(&mut m, body, Type::F64, 16);
        m.build_op("dfg.feed", [c1], [])
            .attr("name", "points")
            .append_to(body);
        m.build_op("dfg.node", [c1], [])
            .attr("callee", Attribute::SymbolRef("project".into()))
            .append_to(body);
        m.build_op("dfg.node", [c2], [])
            .attr("callee", Attribute::SymbolRef("viterbi".into()))
            .append_to(body);
        m.build_op("dfg.sink", [c2], [])
            .attr("name", "matched")
            .append_to(body);
        m.build_op("dfg.yield", [], []).append_to(body);
        verify_module(&ctx(), &m).unwrap();
    }

    #[test]
    fn channel_with_nonpositive_capacity_fails() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "bad");
        m.build_op("dfg.channel", [], [Type::Stream(Box::new(Type::F64))])
            .attr("capacity", Attribute::Int(0))
            .append_to(body);
        m.build_op("dfg.yield", [], []).append_to(body);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("capacity must be positive"));
    }

    #[test]
    fn node_with_scalar_port_fails() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_g, body) = build_graph(&mut m, top, "bad2");
        let c = crate::dialects::core::const_f64(&mut m, body, 1.0);
        m.build_op("dfg.node", [c], [])
            .attr("callee", Attribute::SymbolRef("f".into()))
            .append_to(body);
        m.build_op("dfg.yield", [], []).append_to(body);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("streams or tokens"));
    }

    #[test]
    fn channel_must_produce_stream_type() {
        let mut m = Module::new();
        let top = m.top_block();
        m.build_op("dfg.channel", [], [Type::F64])
            .attr("capacity", Attribute::Int(4))
            .append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("stream"));
    }
}
