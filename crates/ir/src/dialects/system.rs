//! System-level dialects: `evp` (EVEREST platform integration) and
//! `olympus` (FPGA system-architecture generation).
//!
//! `olympus` captures kernel interactions and the data-movement structure
//! Olympus materializes around them (paper §V-C): private local memories,
//! DMA transfers, double buffering, kernel replication, memory lanes and
//! data packing. `evp` binds compiled kernels to concrete platform
//! resources for deployment.

use crate::error::{IrError, IrResult};
use crate::ids::OpId;
use crate::module::Module;
use crate::registry::{Arity, Dialect, OpSpec, OpTrait};
use crate::types::{MemorySpace, Type};

fn verify_positive_attr(m: &Module, op: OpId, attr: &str) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let v = operation
        .int_attr(attr)
        .ok_or_else(|| IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("missing '{attr}' integer attribute"),
        })?;
    if v <= 0 {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("'{attr}' must be positive, got {v}"),
        });
    }
    Ok(())
}

fn verify_plm(m: &Module, op: OpId) -> IrResult<()> {
    verify_positive_attr(m, op, "banks")?;
    let operation = m.op(op).expect("verifier receives live ops");
    let ty = m.value_type(operation.results[0]);
    match ty {
        Type::MemRef { space, .. } if *space == MemorySpace::Plm => Ok(()),
        other => Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("plm must produce a plm-space memref, got {other}"),
        }),
    }
}

fn verify_dma(m: &Module, op: OpId) -> IrResult<()> {
    let operation = m.op(op).expect("verifier receives live ops");
    let dir = operation
        .str_attr("direction")
        .ok_or_else(|| IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: "missing 'direction' attribute".into(),
        })?;
    if dir != "h2d" && dir != "d2h" && dir != "d2d" {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("direction must be h2d, d2h or d2d, got '{dir}'"),
        });
    }
    for &v in &operation.operands {
        if !matches!(m.value_type(v), Type::MemRef { .. }) {
            return Err(IrError::Verification {
                op: operation.name.to_string(),
                path: None,
                message: "dma operands must be memrefs".into(),
            });
        }
    }
    Ok(())
}

fn verify_replicate(m: &Module, op: OpId) -> IrResult<()> {
    verify_positive_attr(m, op, "factor")
}

fn verify_lane(m: &Module, op: OpId) -> IrResult<()> {
    verify_positive_attr(m, op, "width_bits")?;
    let operation = m.op(op).expect("verifier receives live ops");
    let w = operation.int_attr("width_bits").unwrap_or(0);
    if !(w as u64).is_power_of_two() {
        return Err(IrError::Verification {
            op: operation.name.to_string(),
            path: None,
            message: format!("lane width must be a power of two, got {w}"),
        });
    }
    Ok(())
}

/// The `olympus` dialect.
pub fn olympus_dialect() -> Dialect {
    let mut d = Dialect::new(
        "olympus",
        "platform-aware FPGA system architecture generation",
    );
    d.register(
        OpSpec::new("system", Arity::Exact(0), Arity::Exact(0))
            .with_regions(1)
            .with_attr("sym_name")
            .with_attr("platform")
            .with_trait(OpTrait::Symbol)
            .with_trait(OpTrait::IsolatedFromAbove),
    );
    // kernel(buffers...) {callee, impl = "hls"|"rtl"}
    d.register(OpSpec::new("kernel", Arity::Variadic, Arity::Variadic).with_attr("callee"));
    d.register(
        OpSpec::new("plm", Arity::Exact(0), Arity::Exact(1))
            .with_attr("banks")
            .with_verifier(verify_plm),
    );
    d.register(
        OpSpec::new("dma", Arity::Exact(2), Arity::Exact(0))
            .with_attr("direction")
            .with_verifier(verify_dma),
    );
    d.register(
        OpSpec::new("replicate", Arity::Exact(0), Arity::Exact(0))
            .with_attr("factor")
            .with_attr("kernel")
            .with_verifier(verify_replicate),
    );
    d.register(
        OpSpec::new("lane", Arity::Exact(0), Arity::Exact(0))
            .with_attr("width_bits")
            .with_attr("kernel")
            .with_verifier(verify_lane),
    );
    d.register(
        OpSpec::new("pack", Arity::Exact(0), Arity::Exact(0))
            .with_attr("kernel")
            .with_attr("layout"),
    );
    d.register(OpSpec::new(
        "double_buffer",
        Arity::Exact(1),
        Arity::Exact(0),
    ));
    d.register(
        OpSpec::new("yield", Arity::Variadic, Arity::Exact(0)).with_trait(OpTrait::Terminator),
    );
    d
}

/// The `evp` dialect: EVEREST platform integration.
pub fn evp_dialect() -> Dialect {
    let mut d = Dialect::new("evp", "EVEREST platform integration");
    d.register(
        OpSpec::new("platform", Arity::Exact(0), Arity::Exact(0))
            .with_regions(1)
            .with_attr("name")
            .with_trait(OpTrait::IsolatedFromAbove),
    );
    // kernel_instance {kernel = @sym, target = "alveo_u55c" | "cloudfpga" | "cpu"}
    d.register(
        OpSpec::new("kernel_instance", Arity::Exact(0), Arity::Exact(0))
            .with_attr("kernel")
            .with_attr("target"),
    );
    // bind_memory {kernel = @sym, port, channel}
    d.register(
        OpSpec::new("bind_memory", Arity::Exact(0), Arity::Exact(0))
            .with_attr("kernel")
            .with_attr("port")
            .with_attr("channel"),
    );
    // launch(args...) -> token
    d.register(OpSpec::new("launch", Arity::Variadic, Arity::Exact(1)).with_attr("kernel"));
    d.register(
        OpSpec::new("yield", Arity::Variadic, Arity::Exact(0)).with_trait(OpTrait::Terminator),
    );
    d
}

/// Builds an `olympus.system` and returns `(system_op, body_block)`.
pub fn build_system(
    m: &mut Module,
    parent: crate::ids::BlockId,
    name: &str,
    platform: &str,
) -> (OpId, crate::ids::BlockId) {
    let s = m
        .build_op("olympus.system", [], [])
        .attr("sym_name", name)
        .attr("platform", platform)
        .regions(1)
        .append_to(parent);
    let region = m.op(s).expect("just built").regions[0];
    let body = m.add_block(region, &[]);
    (s, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::module::single_result;
    use crate::registry::Context;
    use crate::verify::verify_module;

    fn ctx() -> Context {
        Context::with_all_dialects()
    }

    #[test]
    fn build_olympus_system() {
        let mut m = Module::new();
        let top = m.top_block();
        let (_s, body) = build_system(&mut m, top, "rrtmg_sys", "alveo_u55c");
        let plm = m
            .build_op(
                "olympus.plm",
                [],
                [Type::memref(&[4096], Type::F64, MemorySpace::Plm)],
            )
            .attr("banks", Attribute::Int(4))
            .append_to(body);
        let plm_v = single_result(&m, plm);
        let dev = m
            .build_op(
                "memref.alloc",
                [],
                [Type::memref(&[4096], Type::F64, MemorySpace::Device)],
            )
            .append_to(body);
        let dev_v = single_result(&m, dev);
        m.build_op("olympus.dma", [dev_v, plm_v], [])
            .attr("direction", "h2d")
            .append_to(body);
        m.build_op("olympus.kernel", [plm_v], [])
            .attr("callee", Attribute::SymbolRef("rrtmg".into()))
            .append_to(body);
        m.build_op("olympus.replicate", [], [])
            .attr("factor", Attribute::Int(4))
            .attr("kernel", Attribute::SymbolRef("rrtmg".into()))
            .append_to(body);
        m.build_op("olympus.lane", [], [])
            .attr("width_bits", Attribute::Int(128))
            .attr("kernel", Attribute::SymbolRef("rrtmg".into()))
            .append_to(body);
        m.build_op("olympus.yield", [], []).append_to(body);
        verify_module(&ctx(), &m).unwrap();
    }

    #[test]
    fn plm_requires_plm_space() {
        let mut m = Module::new();
        let top = m.top_block();
        m.build_op(
            "olympus.plm",
            [],
            [Type::memref(&[64], Type::F64, MemorySpace::Device)],
        )
        .attr("banks", Attribute::Int(2))
        .append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("plm-space"));
    }

    #[test]
    fn dma_direction_checked() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = crate::dialects::core::alloc(
            &mut m,
            top,
            Type::memref(&[8], Type::F64, MemorySpace::Host),
        );
        let b = crate::dialects::core::alloc(
            &mut m,
            top,
            Type::memref(&[8], Type::F64, MemorySpace::Device),
        );
        m.build_op("olympus.dma", [a, b], [])
            .attr("direction", "sideways")
            .append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("direction must be"));
    }

    #[test]
    fn lane_width_must_be_power_of_two() {
        let mut m = Module::new();
        let top = m.top_block();
        m.build_op("olympus.lane", [], [])
            .attr("width_bits", Attribute::Int(96))
            .attr("kernel", Attribute::SymbolRef("k".into()))
            .append_to(top);
        let err = verify_module(&ctx(), &m).unwrap_err();
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn replicate_factor_positive() {
        let mut m = Module::new();
        let top = m.top_block();
        m.build_op("olympus.replicate", [], [])
            .attr("factor", Attribute::Int(-1))
            .attr("kernel", Attribute::SymbolRef("k".into()))
            .append_to(top);
        assert!(verify_module(&ctx(), &m).is_err());
    }

    #[test]
    fn evp_launch_produces_token() {
        let mut m = Module::new();
        let top = m.top_block();
        m.build_op("evp.launch", [], [Type::Token])
            .attr("kernel", Attribute::SymbolRef("rrtmg".into()))
            .append_to(top);
        verify_module(&ctx(), &m).unwrap();
    }
}
