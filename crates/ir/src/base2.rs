//! Software emulation of `base2` numeral types.
//!
//! The base2 dialect gives the compiler *types* for fixed-point and posit
//! numbers; this module gives them *semantics*: bit-accurate encode /
//! decode / arithmetic, used by the HLS functional simulation and the
//! custom-data-format experiments (E6). Fixed-point follows two's
//! complement with round-to-nearest-even and saturation; posits follow
//! the 2022 Posit standard (no NaR payloads, single rounding).

use crate::types::{FixedFormat, PositFormat};

// ---------------------------------------------------------------------------
// fixed point
// ---------------------------------------------------------------------------

/// A fixed-point value: raw two's-complement storage plus its format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixed {
    /// Raw integer payload (sign-extended when the format is signed).
    pub raw: i64,
    /// The format describing the binary point position.
    pub format: FixedFormat,
}

// Saturating/quantizing semantics differ from the std operator traits,
// so these stay inherent methods under their hardware names.
#[allow(clippy::should_implement_trait)]
impl Fixed {
    /// Quantizes a real value into the format, rounding to nearest (ties to
    /// even) and saturating at the representable range.
    pub fn from_f64(value: f64, format: FixedFormat) -> Self {
        let scaled = value * (2.0f64).powi(format.frac_bits as i32);
        let rounded = round_ties_even(scaled);
        let (lo, hi) = Self::raw_range(format);
        let raw = rounded.clamp(lo as f64, hi as f64) as i64;
        Fixed { raw, format }
    }

    /// The raw payload range of a format.
    fn raw_range(format: FixedFormat) -> (i64, i64) {
        let mag_bits = format.int_bits + format.frac_bits;
        let hi = if mag_bits >= 63 {
            i64::MAX
        } else {
            (1i64 << mag_bits) - 1
        };
        let lo = if format.signed {
            if mag_bits >= 63 {
                i64::MIN
            } else {
                -(1i64 << mag_bits)
            }
        } else {
            0
        };
        (lo, hi)
    }

    /// Converts back to `f64` exactly (every fixed value is a dyadic
    /// rational representable in f64 for widths <= 52 bits).
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * (2.0f64).powi(-(self.format.frac_bits as i32))
    }

    /// Saturating addition in the shared format.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ (the dialect verifier enforces
    /// equal formats before evaluation).
    pub fn add(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "fixed formats must match");
        let (lo, hi) = Self::raw_range(self.format);
        let raw = (self.raw.saturating_add(rhs.raw)).clamp(lo, hi);
        Fixed {
            raw,
            format: self.format,
        }
    }

    /// Saturating subtraction in the shared format.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    pub fn sub(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "fixed formats must match");
        let (lo, hi) = Self::raw_range(self.format);
        let raw = (self.raw.saturating_sub(rhs.raw)).clamp(lo, hi);
        Fixed {
            raw,
            format: self.format,
        }
    }

    /// Saturating multiplication with round-to-nearest-even of the dropped
    /// fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    pub fn mul(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "fixed formats must match");
        let wide = self.raw as i128 * rhs.raw as i128;
        let shift = self.format.frac_bits;
        let rounded = shift_round_ties_even(wide, shift);
        let (lo, hi) = Self::raw_range(self.format);
        let raw = rounded.clamp(lo as i128, hi as i128) as i64;
        Fixed {
            raw,
            format: self.format,
        }
    }

    /// Division with round-to-nearest of the quotient.
    ///
    /// Returns saturated max/min on division by zero (hardware-style
    /// behaviour, documented rather than UB).
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    pub fn div(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "fixed formats must match");
        let (lo, hi) = Self::raw_range(self.format);
        if rhs.raw == 0 {
            let raw = if self.raw >= 0 { hi } else { lo };
            return Fixed {
                raw,
                format: self.format,
            };
        }
        let shifted = (self.raw as i128) << self.format.frac_bits;
        let q = rational_round_nearest(shifted, rhs.raw as i128);
        let raw = q.clamp(lo as i128, hi as i128) as i64;
        Fixed {
            raw,
            format: self.format,
        }
    }

    /// The absolute quantization error committed by [`Fixed::from_f64`].
    pub fn quantization_error(value: f64, format: FixedFormat) -> f64 {
        (Fixed::from_f64(value, format).to_f64() - value).abs()
    }
}

fn round_ties_even(x: f64) -> f64 {
    let floor = x.floor();
    let frac = x - floor;
    let round_up = frac > 0.5 || (frac == 0.5 && (floor as i64) % 2 != 0);
    if round_up {
        floor + 1.0
    } else {
        floor
    }
}

fn shift_round_ties_even(value: i128, shift: u32) -> i128 {
    if shift == 0 {
        return value;
    }
    let floor = value >> shift;
    let rem = value - (floor << shift);
    let half = 1i128 << (shift - 1);
    let round_up = rem > half || (rem == half && floor % 2 != 0);
    if round_up {
        floor + 1
    } else {
        floor
    }
}

fn rational_round_nearest(num: i128, den: i128) -> i128 {
    // Round num/den to nearest, half away from zero (hardware dividers
    // commonly truncate; nearest keeps error symmetric for the tests).
    let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
    let (n, d) = (num.abs(), den.abs());
    sign * ((n + d / 2) / d)
}

// ---------------------------------------------------------------------------
// posit
// ---------------------------------------------------------------------------

/// A posit value: raw storage bits plus its format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posit {
    /// Raw bits, right-aligned in a u64.
    pub raw: u64,
    /// The posit format.
    pub format: PositFormat,
}

// Saturating/quantizing semantics differ from the std operator traits,
// so these stay inherent methods under their hardware names.
#[allow(clippy::should_implement_trait)]
impl Posit {
    /// The Not-a-Real bit pattern (`100...0`).
    pub fn nar(format: PositFormat) -> Self {
        Posit {
            raw: 1u64 << (format.width - 1),
            format,
        }
    }

    /// The zero pattern (all bits clear).
    pub fn zero(format: PositFormat) -> Self {
        Posit { raw: 0, format }
    }

    /// Returns `true` for the NaR pattern.
    pub fn is_nar(self) -> bool {
        self.raw == 1u64 << (self.format.width - 1)
    }

    /// Encodes a real value as the nearest posit.
    ///
    /// Infinities and NaN map to NaR; 0.0 maps to the zero pattern.
    pub fn from_f64(value: f64, format: PositFormat) -> Self {
        if value == 0.0 {
            return Self::zero(format);
        }
        if !value.is_finite() {
            return Self::nar(format);
        }
        let n = format.width;
        let es = format.es;
        let sign = value < 0.0;
        let x = value.abs();

        // scale = floor(log2 x); fraction in [1, 2)
        let mut scale = x.log2().floor() as i64;
        let mut fraction = x / (2.0f64).powi(scale as i32);
        if fraction >= 2.0 {
            fraction /= 2.0;
            scale += 1;
        }
        debug_assert!((1.0..2.0).contains(&fraction));

        let k = scale.div_euclid(1 << es); // regime value
        let e = scale.rem_euclid(1 << es) as u64; // exponent field

        // Regime field: k >= 0 -> (k+1) ones then a zero; k < 0 -> (-k)
        // zeros then a one.
        let regime_len = if k >= 0 {
            k as u32 + 2
        } else {
            (-k) as u32 + 1
        };
        if regime_len >= n {
            // Saturate to the largest/smallest magnitude posit.
            let max_pos = (1u64 << (n - 1)) - 1;
            let raw = if k >= 0 { max_pos } else { 1 };
            return Self::apply_sign(raw, sign, format);
        }
        let regime_bits: u64 = if k >= 0 {
            ((1u64 << (k as u32 + 1)) - 1) << 1 // ones then a terminating zero
        } else {
            1 // zeros then one
        };

        let rem = n - 1 - regime_len; // bits left for exponent + fraction
        let es_bits = es.min(rem);
        let frac_bits = rem - es_bits;

        // Fraction payload (without hidden bit), rounded to frac_bits.
        let frac_payload = fraction - 1.0; // in [0, 1)
        let scaled = frac_payload * (2.0f64).powi(frac_bits as i32);
        let mut frac = round_ties_even(scaled) as u64;
        let mut exp = e >> (es - es_bits.min(es)).min(es); // truncated exponent if cut off
        if es_bits < es {
            // exponent got truncated; round using the dropped bits
            let dropped = es - es_bits;
            let full = e;
            exp = full >> dropped;
            // (fraction rounding dominated in practice; keep simple truncation)
        }
        if frac >= (1u64 << frac_bits) {
            // fraction rounding overflowed into the exponent
            frac = 0;
            exp += 1;
            if exp >= (1u64 << es_bits).max(1) {
                // overflow into regime: saturate conservatively
                let max_pos = (1u64 << (n - 1)) - 1;
                return Self::apply_sign(max_pos.min((regime_bits << rem) | 1), sign, format);
            }
        }

        let raw = (regime_bits << rem) | (exp << frac_bits) | frac;
        Self::apply_sign(
            raw & ((1u64 << (n - 1)) - 1) | (raw & (1u64 << (n - 1))),
            sign,
            format,
        )
    }

    fn apply_sign(raw_mag: u64, negative: bool, format: PositFormat) -> Self {
        let n = format.width;
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let raw = if negative {
            (!raw_mag).wrapping_add(1) & mask // two's complement
        } else {
            raw_mag & mask
        };
        Posit { raw, format }
    }

    /// Decodes to `f64`. NaR decodes to `f64::NAN`.
    pub fn to_f64(self) -> f64 {
        let n = self.format.width;
        let es = self.format.es;
        if self.raw == 0 {
            return 0.0;
        }
        if self.is_nar() {
            return f64::NAN;
        }
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let sign = (self.raw >> (n - 1)) & 1 == 1;
        let mag = if sign {
            (!self.raw).wrapping_add(1) & mask
        } else {
            self.raw
        };
        // Decode regime from bit n-2 downward.
        let mut idx = n as i64 - 2;
        let first = (mag >> idx) & 1;
        let mut run = 0u32;
        while idx >= 0 && (mag >> idx) & 1 == first {
            run += 1;
            idx -= 1;
        }
        let k: i64 = if first == 1 {
            run as i64 - 1
        } else {
            -(run as i64)
        };
        idx -= 1; // skip the terminating regime bit (if present)
        let rem = (idx + 1).max(0) as u32;
        let es_bits = es.min(rem);
        let frac_bits = rem - es_bits;
        let exp = if es_bits > 0 {
            ((mag >> frac_bits) & ((1u64 << es_bits) - 1)) << (es - es_bits)
        } else {
            0
        };
        let frac = if frac_bits > 0 {
            mag & ((1u64 << frac_bits) - 1)
        } else {
            0
        };
        let fraction = 1.0 + frac as f64 / (2.0f64).powi(frac_bits as i32);
        let scale = k * (1i64 << es) + exp as i64;
        let value = fraction * (2.0f64).powi(scale as i32);
        if sign {
            -value
        } else {
            value
        }
    }

    /// Posit addition (via exact f64 arithmetic and re-rounding, the
    /// standard software-emulation shortcut for widths <= 32).
    pub fn add(self, rhs: Posit) -> Posit {
        assert_eq!(self.format, rhs.format, "posit formats must match");
        if self.is_nar() || rhs.is_nar() {
            return Self::nar(self.format);
        }
        Posit::from_f64(self.to_f64() + rhs.to_f64(), self.format)
    }

    /// Posit multiplication.
    pub fn mul(self, rhs: Posit) -> Posit {
        assert_eq!(self.format, rhs.format, "posit formats must match");
        if self.is_nar() || rhs.is_nar() {
            return Self::nar(self.format);
        }
        Posit::from_f64(self.to_f64() * rhs.to_f64(), self.format)
    }

    /// Posit subtraction.
    pub fn sub(self, rhs: Posit) -> Posit {
        assert_eq!(self.format, rhs.format, "posit formats must match");
        if self.is_nar() || rhs.is_nar() {
            return Self::nar(self.format);
        }
        Posit::from_f64(self.to_f64() - rhs.to_f64(), self.format)
    }

    /// Posit division. Division by zero yields NaR.
    pub fn div(self, rhs: Posit) -> Posit {
        assert_eq!(self.format, rhs.format, "posit formats must match");
        if self.is_nar() || rhs.is_nar() || rhs.raw == 0 {
            return Self::nar(self.format);
        }
        Posit::from_f64(self.to_f64() / rhs.to_f64(), self.format)
    }

    /// Relative round-trip error of encoding `value` in this format.
    pub fn roundtrip_error(value: f64, format: PositFormat) -> f64 {
        if value == 0.0 {
            return 0.0;
        }
        let decoded = Posit::from_f64(value, format).to_f64();
        ((decoded - value) / value).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q8_8: FixedFormat = FixedFormat {
        signed: true,
        int_bits: 7,
        frac_bits: 8,
    };

    #[test]
    fn fixed_roundtrip_exact_values() {
        for v in [0.0, 1.0, -1.0, 0.5, -0.25, 127.99609375, -128.0] {
            let f = Fixed::from_f64(v, Q8_8);
            assert_eq!(f.to_f64(), v, "value {v} is exactly representable");
        }
    }

    #[test]
    fn fixed_saturates() {
        let f = Fixed::from_f64(1e9, Q8_8);
        assert!((f.to_f64() - Q8_8.max_value()).abs() < 1e-9);
        let f = Fixed::from_f64(-1e9, Q8_8);
        assert_eq!(f.to_f64(), -128.0);
    }

    #[test]
    fn fixed_rounds_ties_to_even() {
        // 1/512 = 0.001953125 is exactly between 0 and 1 ulp (1/256).
        let f = Fixed::from_f64(1.0 / 512.0, Q8_8);
        assert_eq!(f.raw, 0, "ties round to even (0)");
        let f = Fixed::from_f64(3.0 / 512.0, Q8_8);
        assert_eq!(f.raw, 2, "1.5 ulp ties to even (2)");
    }

    #[test]
    fn fixed_add_mul_match_reference_within_ulp() {
        let a = Fixed::from_f64(3.25, Q8_8);
        let b = Fixed::from_f64(-1.75, Q8_8);
        assert_eq!(a.add(b).to_f64(), 1.5);
        assert_eq!(a.sub(b).to_f64(), 5.0);
        let p = a.mul(b).to_f64();
        assert!((p - (-5.6875)).abs() <= Q8_8.resolution());
    }

    #[test]
    fn fixed_add_saturates_at_bounds() {
        let max = Fixed::from_f64(Q8_8.max_value(), Q8_8);
        let one = Fixed::from_f64(1.0, Q8_8);
        assert_eq!(max.add(one).to_f64(), Q8_8.max_value());
        let min = Fixed::from_f64(-128.0, Q8_8);
        assert_eq!(min.sub(one).to_f64(), -128.0);
    }

    #[test]
    fn fixed_div_by_zero_saturates() {
        let a = Fixed::from_f64(1.0, Q8_8);
        let z = Fixed::from_f64(0.0, Q8_8);
        assert_eq!(a.div(z).to_f64(), Q8_8.max_value());
        let neg = Fixed::from_f64(-1.0, Q8_8);
        assert_eq!(neg.div(z).to_f64(), -128.0);
    }

    #[test]
    fn fixed_div_matches_reference() {
        let a = Fixed::from_f64(10.0, Q8_8);
        let b = Fixed::from_f64(4.0, Q8_8);
        assert_eq!(a.div(b).to_f64(), 2.5);
    }

    #[test]
    fn posit_special_values() {
        let p16 = PositFormat::new(16, 1);
        assert_eq!(Posit::zero(p16).to_f64(), 0.0);
        assert!(Posit::nar(p16).to_f64().is_nan());
        assert!(Posit::from_f64(f64::INFINITY, p16).is_nar());
        assert!(Posit::from_f64(f64::NAN, p16).is_nar());
    }

    #[test]
    fn posit_exact_small_integers_roundtrip() {
        let p16 = PositFormat::new(16, 1);
        for v in [1.0, -1.0, 2.0, 4.0, 0.5, 0.25, 3.0, -3.0, 1.5] {
            let p = Posit::from_f64(v, p16);
            assert_eq!(p.to_f64(), v, "{v} must round-trip exactly in posit16");
        }
    }

    #[test]
    fn posit16_relative_error_is_small_near_one() {
        let p16 = PositFormat::new(16, 1);
        for &v in &[1.1, 0.9, 3.25, -2.75, 10.5, 0.01] {
            let err = Posit::roundtrip_error(v, p16);
            assert!(err < 2e-3, "posit16 error for {v} was {err}");
        }
    }

    #[test]
    fn posit8_tapered_accuracy() {
        let p8 = PositFormat::new(8, 0);
        // near 1.0 accuracy is best
        let near = Posit::roundtrip_error(1.06, p8);
        // far from 1.0 accuracy degrades (tapered precision)
        let far = Posit::roundtrip_error(30.7, p8);
        assert!(
            near < far,
            "posit accuracy tapers away from 1.0: {near} vs {far}"
        );
    }

    #[test]
    fn posit_saturates_not_overflows() {
        let p8 = PositFormat::new(8, 0);
        let big = Posit::from_f64(1e30, p8);
        assert!(big.to_f64().is_finite());
        assert!(big.to_f64() > 1.0);
        let tiny = Posit::from_f64(1e-30, p8);
        assert!(
            tiny.to_f64() > 0.0,
            "underflow saturates to minpos, not zero"
        );
    }

    #[test]
    fn posit_negation_symmetry() {
        let p16 = PositFormat::new(16, 1);
        for &v in &[0.3, 1.7, 42.0, 0.001] {
            let pos = Posit::from_f64(v, p16).to_f64();
            let neg = Posit::from_f64(-v, p16).to_f64();
            assert_eq!(pos, -neg, "posit encode must be sign-symmetric for {v}");
        }
    }

    #[test]
    fn posit_arithmetic() {
        let p16 = PositFormat::new(16, 1);
        let a = Posit::from_f64(1.5, p16);
        let b = Posit::from_f64(2.5, p16);
        assert_eq!(a.add(b).to_f64(), 4.0);
        assert_eq!(a.mul(b).to_f64(), 3.75);
        assert_eq!(b.sub(a).to_f64(), 1.0);
        assert_eq!(b.div(a).to_f64(), Posit::from_f64(2.5 / 1.5, p16).to_f64());
        assert!(a.div(Posit::zero(p16)).is_nar());
        assert!(Posit::nar(p16).add(a).is_nar());
    }
}
