//! Property tests for the partition-tolerance layer: for arbitrary
//! seeded partition chaos (symmetric and asymmetric cuts, message
//! delay and loss, optionally stacked on crash/gray campaigns), the
//! engine must keep the conservation invariant — every offered request
//! reaches exactly one terminal state, with no double execution across
//! a failover-and-heal cycle — and same-seed runs must replay
//! identically, outcome for outcome.

use proptest::prelude::*;

use everest_faults::FaultPlan;
use everest_serve::{ClusterConfig, LifecycleConfig, ServeConfig, ServeEngine};

fn config(seed: u64, nodes: usize, lifecycle: bool) -> ServeConfig {
    ServeConfig {
        seed,
        nodes,
        offered_rps: 1_500.0 * nodes as f64,
        horizon_us: 50_000.0,
        cluster: Some(ClusterConfig::default()),
        lifecycle: if lifecycle {
            LifecycleConfig::all_on()
        } else {
            LifecycleConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn chaos(seed: u64, nodes: usize, cycles: usize, faults: usize) -> FaultPlan {
    let mut plan = FaultPlan::random_partition_campaign(seed, nodes, 50_000.0, cycles);
    if faults > 0 {
        for fault in FaultPlan::random_campaign(seed ^ 0xC1A0, nodes, 50_000.0, faults).faults() {
            plan.push(fault.clone());
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Conservation under arbitrary partition chaos: cuts, heals,
    /// failovers and fenced orphans never lose or double-count a
    /// request. Fenced-leg bookkeeping stays consistent with the
    /// batch trace, and cancelled completions mean the completed
    /// count equals the latency vector exactly (each request served
    /// at most once).
    #[test]
    fn partition_chaos_conserves(
        seed in any::<u64>(),
        nodes in 2usize..7,
        cycles in 1usize..4,
        faults in 0usize..5,
        lifecycle in any::<bool>(),
    ) {
        let outcome = ServeEngine::new(config(seed, nodes, lifecycle))
            .with_plan(chaos(seed, nodes, cycles, faults))
            .run();
        prop_assert!(outcome.conserved(), "conservation violated: {outcome:?}");
        prop_assert_eq!(
            outcome.batches.iter().filter(|b| b.fenced).count() as u64,
            outcome.fenced_batches
        );
        prop_assert_eq!(outcome.completed as usize, outcome.latencies_us.len());
    }

    /// (b) Same-seed replay equality extends through membership,
    /// failover and fencing: two runs of the same config and plan are
    /// equal outcome-for-outcome, batch-for-batch, epoch-for-epoch.
    #[test]
    fn partition_chaos_replays_identically(
        seed in any::<u64>(),
        nodes in 2usize..7,
        cycles in 1usize..4,
        lifecycle in any::<bool>(),
    ) {
        let cfg = config(seed, nodes, lifecycle);
        let plan = chaos(seed, nodes, cycles, 2);
        let a = ServeEngine::new(cfg.clone()).with_plan(plan.clone()).run();
        let b = ServeEngine::new(cfg).with_plan(plan).run();
        prop_assert_eq!(a, b);
    }
}
