//! Property tests over the serving queues and the full engine: the
//! fairness and conservation invariants of `docs/SERVING.md` must hold
//! for random tenant tables, loads, and chaos plans.

use proptest::prelude::*;

use everest_faults::FaultPlan;
use everest_serve::{
    BatchPolicy, KernelClass, LifecycleConfig, Request, RetryConfig, ServeConfig, ServeEngine,
    WeightedFairQueue,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a) WFQ never starves a nonzero-weight tenant: with every
    /// tenant continuously backlogged, after `pops` services each
    /// tenant has been served at least its floor share (minus a small
    /// rounding slack from tag quantisation).
    #[test]
    fn wfq_never_starves_a_nonzero_weight_tenant(
        raw_weights in proptest::collection::vec(1u32..9, 2..6),
        pops in 50usize..201,
    ) {
        let weights: Vec<f64> = raw_weights.iter().map(|&w| w as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut wfq = WeightedFairQueue::new(&weights);
        // Keep every tenant backlogged for the whole experiment.
        for (tenant, _) in weights.iter().enumerate() {
            for k in 0..pops {
                wfq.push(Request {
                    id: (tenant * pops + k) as u64,
                    tenant,
                    class: 0,
                    arrival_us: 0.0,
                    attempt: 0,
                });
            }
        }
        for _ in 0..pops {
            prop_assert!(wfq.pop().is_some());
        }
        let served = wfq.served();
        for (tenant, &weight) in weights.iter().enumerate() {
            let floor_share = (pops as f64 * weight / total).floor() as u64;
            let slack = weights.len() as u64 + 2;
            prop_assert!(
                served[tenant] + slack >= floor_share,
                "tenant {tenant} (w={weight}) served {} of {pops}, floor share {floor_share}",
                served[tenant]
            );
        }
    }

    /// (b) Conservation: for random configurations — with and without
    /// a random chaos plan — every offered request reaches exactly one
    /// terminal state (completed, shed, or failed), and the same seed
    /// replays to the identical outcome.
    #[test]
    fn engine_conserves_requests_and_replays_identically(
        seed in any::<u64>(),
        nodes in 1usize..7,
        offered_khz in 2u64..21,
        faults in 0usize..7,
    ) {
        let config = ServeConfig {
            seed,
            nodes,
            offered_rps: offered_khz as f64 * 1_000.0,
            horizon_us: 30_000.0,
            ..ServeConfig::default()
        };
        let plan = if faults > 0 {
            FaultPlan::random_campaign(seed, nodes, config.horizon_us, faults)
        } else {
            FaultPlan::new(seed)
        };
        let run = || {
            ServeEngine::new(config.clone())
                .with_plan(plan.clone())
                .run()
        };
        let first = run();
        let second = run();
        prop_assert!(first.conserved(), "conservation violated: {first:?}");
        prop_assert_eq!(first.offered, second.offered);
        prop_assert_eq!(first, second);
    }

    /// (d) Request-lifecycle invariants under arbitrary seeded chaos
    /// with every robustness feature enabled: retries never exceed the
    /// per-tenant budget earned (cap plus refill per success), hedged
    /// duplicates never double-count a completion (`conserved()` plus
    /// the completed/latency cross-check), and the same seed replays
    /// to the identical outcome.
    #[test]
    fn lifecycle_respects_budgets_and_counts_hedges_once(
        seed in any::<u64>(),
        nodes in 2usize..7,
        offered_khz in 2u64..21,
        faults in 1usize..9,
        budget_cap in 1u32..9,
    ) {
        let retry = RetryConfig {
            budget_cap: budget_cap as f64,
            ..RetryConfig::default()
        };
        let mut config = ServeConfig {
            seed,
            nodes,
            offered_rps: offered_khz as f64 * 1_000.0,
            horizon_us: 30_000.0,
            lifecycle: LifecycleConfig {
                retry: Some(retry.clone()),
                ..LifecycleConfig::all_on()
            },
            ..ServeConfig::default()
        };
        config.classes[0] = config.classes[0].clone().latency_critical();
        let plan = FaultPlan::random_campaign(seed, nodes, config.horizon_us, faults);
        let run = || {
            ServeEngine::new(config.clone())
                .with_plan(plan.clone())
                .run()
        };
        let outcome = run();
        prop_assert!(outcome.conserved(), "conservation violated: {outcome:?}");
        // A hedge duplicate must never add a second completion: every
        // completion carries exactly one latency sample.
        prop_assert_eq!(outcome.completed as usize, outcome.latencies_us.len());
        prop_assert!(outcome.hedge_wins <= outcome.hedges);
        // Budget: a tenant can spend at most its starting cap plus
        // what its completions earned back.
        for tenant in &outcome.tenants {
            let earned = retry.budget_cap + tenant.completed as f64 * retry.refill_per_success;
            prop_assert!(
                tenant.retried as f64 <= earned + 1e-9,
                "tenant {} retried {} with cap {} + {} completions refilling {}",
                tenant.name, tenant.retried, retry.budget_cap,
                tenant.completed, retry.refill_per_success
            );
        }
        prop_assert_eq!(outcome.clone(), run());
    }

    /// (c) Static deadline feasibility is all-or-nothing per class:
    /// when the proven worst-case bound exceeds the class deadline,
    /// every request of the class is shed `StaticallyInfeasible` at
    /// the door (none is admitted, none reaches a batch); when the
    /// bound is within the deadline, the static path sheds nothing.
    #[test]
    fn static_infeasibility_sheds_exactly_the_proven_late_class(
        seed in any::<u64>(),
        offered_khz in 2u64..13,
        bound_over in any::<bool>(),
    ) {
        let deadline_us = 5_000.0;
        let bound_us = if bound_over { deadline_us * 1.8 } else { deadline_us * 0.4 };
        let class = KernelClass::new("infer", 400.0, 40.0, 120.0, deadline_us, 4_096)
            .with_static_bound(bound_us);
        let config = ServeConfig {
            seed,
            classes: vec![class],
            batch: vec![BatchPolicy::new(8, 400.0)],
            offered_rps: offered_khz as f64 * 1_000.0,
            horizon_us: 30_000.0,
            ..ServeConfig::default()
        };
        let outcome = ServeEngine::new(config).run();
        prop_assert!(outcome.conserved(), "conservation violated: {outcome:?}");
        if bound_over {
            prop_assert_eq!(outcome.shed_static, outcome.offered);
            prop_assert_eq!(outcome.admitted, 0);
            prop_assert!(outcome.batches.is_empty());
        } else {
            prop_assert_eq!(outcome.shed_static, 0);
        }
    }
}
