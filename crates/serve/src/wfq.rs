//! Start-time fair queueing (SFQ) across tenants.
//!
//! Each tenant owns a FIFO; requests are stamped with virtual start and
//! finish tags (`start = max(V, tenant's last finish)`,
//! `finish = start + 1/weight`) and the queue always dequeues the head
//! with the smallest finish tag, advancing the system virtual time `V`
//! to the popped request's start tag. Under backlog, service share
//! converges to the weight ratio; any tenant with positive weight is
//! guaranteed progress — the no-starvation property checked in
//! `tests/queue_props.rs`.
//!
//! Ties on the finish tag break toward the lower tenant index, and all
//! comparisons use `f64::total_cmp`, so pop order is deterministic.

use std::collections::VecDeque;

use crate::request::Request;

/// Weights below this are clamped up so `1/weight` stays finite and a
/// "nonzero-weight tenant" keeps its progress guarantee even when the
/// caller passes something degenerate.
const MIN_WEIGHT: f64 = 1.0e-6;

#[derive(Debug)]
struct Queued {
    request: Request,
    start_tag: f64,
    finish_tag: f64,
}

#[derive(Debug)]
struct TenantQueue {
    weight: f64,
    last_finish: f64,
    fifo: VecDeque<Queued>,
    served: u64,
}

/// A weighted-fair queue over a fixed tenant table.
#[derive(Debug)]
pub struct WeightedFairQueue {
    virtual_time: f64,
    tenants: Vec<TenantQueue>,
    len: usize,
}

impl WeightedFairQueue {
    /// Creates a queue with one lane per tenant weight.
    pub fn new(weights: &[f64]) -> WeightedFairQueue {
        WeightedFairQueue {
            virtual_time: 0.0,
            tenants: weights
                .iter()
                .map(|&w| TenantQueue {
                    weight: w.max(MIN_WEIGHT),
                    last_finish: 0.0,
                    fifo: VecDeque::new(),
                    served: 0,
                })
                .collect(),
            len: 0,
        }
    }

    /// Enqueues an admitted request into its tenant's lane.
    pub fn push(&mut self, request: Request) {
        let tenant = &mut self.tenants[request.tenant];
        let start_tag = self.virtual_time.max(tenant.last_finish);
        let finish_tag = start_tag + 1.0 / tenant.weight;
        tenant.last_finish = finish_tag;
        tenant.fifo.push_back(Queued {
            request,
            start_tag,
            finish_tag,
        });
        self.len += 1;
    }

    /// Dequeues the request with the smallest head finish tag.
    pub fn pop(&mut self) -> Option<Request> {
        let mut best: Option<usize> = None;
        for (index, tenant) in self.tenants.iter().enumerate() {
            let Some(head) = tenant.fifo.front() else {
                continue;
            };
            match best {
                None => best = Some(index),
                Some(current) => {
                    let leader = self.tenants[current].fifo.front().expect("head exists");
                    if head.finish_tag.total_cmp(&leader.finish_tag).is_lt() {
                        best = Some(index);
                    }
                }
            }
        }
        let index = best?;
        let queued = self.tenants[index].fifo.pop_front().expect("head exists");
        self.virtual_time = self.virtual_time.max(queued.start_tag);
        self.tenants[index].served += 1;
        self.len -= 1;
        Some(queued.request)
    }

    /// Total queued requests across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no lane holds a request.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued requests in one tenant's lane.
    pub fn backlog(&self, tenant: usize) -> usize {
        self.tenants[tenant].fifo.len()
    }

    /// Lifetime pops per tenant, for fairness accounting.
    pub fn served(&self) -> Vec<u64> {
        self.tenants.iter().map(|t| t.served).collect()
    }

    /// Drains every queued request (used when the whole cluster is
    /// lost and the backlog must be failed out).
    pub fn drain(&mut self) -> Vec<Request> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(request) = self.pop() {
            out.push(request);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, tenant: usize) -> Request {
        Request {
            id,
            tenant,
            class: 0,
            arrival_us: id as f64,
            attempt: 0,
        }
    }

    #[test]
    fn service_share_tracks_weights() {
        let mut wfq = WeightedFairQueue::new(&[3.0, 1.0]);
        for id in 0..400 {
            wfq.push(request(id, (id % 2) as usize));
        }
        for _ in 0..100 {
            wfq.pop().expect("backlogged");
        }
        let served = wfq.served();
        // 3:1 weights over 100 pops: expect roughly 75/25.
        assert!((70..=80).contains(&(served[0] as i64)), "{served:?}");
        assert!((20..=30).contains(&(served[1] as i64)), "{served:?}");
    }

    #[test]
    fn fifo_within_a_tenant() {
        let mut wfq = WeightedFairQueue::new(&[1.0]);
        for id in 0..10 {
            wfq.push(request(id, 0));
        }
        for id in 0..10 {
            assert_eq!(wfq.pop().expect("queued").id, id);
        }
        assert!(wfq.is_empty());
    }

    #[test]
    fn idle_tenant_does_not_bank_credit() {
        // Tenant 1 stays idle while tenant 0 is served; when tenant 1
        // wakes up its start tag catches up to V, so it gets its fair
        // share from now on but no retroactive burst beyond one quantum.
        let mut wfq = WeightedFairQueue::new(&[1.0, 1.0]);
        for id in 0..50 {
            wfq.push(request(id, 0));
        }
        for _ in 0..40 {
            wfq.pop().expect("queued");
        }
        for id in 50..60 {
            wfq.push(request(id, 1));
        }
        // Interleave from here: tenant 1 must not be served 10 times
        // in a row just because it was idle.
        let mut tenant1_run = 0;
        let mut max_run = 0;
        while let Some(popped) = wfq.pop() {
            if popped.tenant == 1 {
                tenant1_run += 1;
                max_run = max_run.max(tenant1_run);
            } else {
                tenant1_run = 0;
            }
        }
        assert!(max_run <= 2, "tenant 1 burst {max_run} pops in a row");
    }

    #[test]
    fn drain_empties_every_lane() {
        let mut wfq = WeightedFairQueue::new(&[2.0, 1.0, 1.0]);
        for id in 0..30 {
            wfq.push(request(id, (id % 3) as usize));
        }
        let drained = wfq.drain();
        assert_eq!(drained.len(), 30);
        assert!(wfq.is_empty());
        assert_eq!(wfq.len(), 0);
    }
}
