//! Admission control: static deadline-feasibility, per-tenant token
//! buckets, and shared queue-depth backpressure, all on the virtual
//! clock.
//!
//! The check order matters. Static infeasibility is evaluated first —
//! it is a property of the class, not of the moment, so a provably-late
//! request neither burns a token nor occupies a queue slot. Queue-depth
//! backpressure comes next, before the token bucket, so a request
//! refused for `QueueFull` does not also burn one of its tenant's
//! tokens — the tenant keeps its budget for when the queue drains.

use crate::request::{KernelClass, ShedReason, TenantSpec};

/// A token bucket refilled continuously on virtual time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_us: f64,
    capacity: f64,
    tokens: f64,
    last_us: f64,
}

impl TokenBucket {
    /// Creates a bucket that starts full (a fresh tenant may burst).
    pub fn new(rate_rps: f64, burst: f64) -> TokenBucket {
        let capacity = burst.max(1.0);
        TokenBucket {
            rate_per_us: rate_rps.max(0.0) / 1.0e6,
            capacity,
            tokens: capacity,
            last_us: 0.0,
        }
    }

    fn refill(&mut self, now_us: f64) {
        if now_us > self.last_us {
            self.tokens =
                (self.tokens + (now_us - self.last_us) * self.rate_per_us).min(self.capacity);
            self.last_us = now_us;
        }
    }

    /// Takes one token if available; returns whether the take succeeded.
    pub fn try_take(&mut self, now_us: f64) -> bool {
        self.refill(now_us);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now_us`).
    pub fn available(&mut self, now_us: f64) -> f64 {
        self.refill(now_us);
        self.tokens
    }
}

/// Knobs for the admission controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum requests waiting in the fair queues plus the batcher
    /// before new arrivals are shed with [`ShedReason::QueueFull`].
    pub max_queue_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_queue_depth: 256,
        }
    }
}

/// The front door: decides, per arrival, admit or shed (typed).
#[derive(Debug)]
pub struct AdmissionController {
    buckets: Vec<TokenBucket>,
    /// Per-class deadline feasibility, precomputed from the proven
    /// static worst-case bounds ([`KernelClass::statically_infeasible`]).
    infeasible: Vec<bool>,
    max_queue_depth: usize,
}

impl AdmissionController {
    /// Builds one bucket per tenant from the tenant table and
    /// precomputes per-class deadline feasibility from the class
    /// table's static worst-case bounds.
    pub fn new(
        tenants: &[TenantSpec],
        classes: &[KernelClass],
        config: &AdmissionConfig,
    ) -> AdmissionController {
        AdmissionController {
            buckets: tenants
                .iter()
                .map(|t| TokenBucket::new(t.rate_rps, t.burst))
                .collect(),
            infeasible: classes.iter().map(|c| c.statically_infeasible()).collect(),
            max_queue_depth: config.max_queue_depth,
        }
    }

    /// Admission check for one arrival. `queue_depth` is the current
    /// number of admitted-but-unserved requests; `overload_cap` is the
    /// adaptive concurrency limiter's door cap, when one is active.
    ///
    /// Statically infeasible classes are refused before any stateful
    /// check: the refusal is a compile-time fact, so it consumes
    /// neither a token nor a queue slot. The structural queue limit is
    /// checked before the limiter's cap so the two backpressure sheds
    /// stay distinctly typed (`QueueFull` means the shared queue is
    /// physically saturated; `Overloaded` means the limiter pulled the
    /// door in early). Neither backpressure shed burns a token.
    pub fn admit(
        &mut self,
        tenant: usize,
        class: usize,
        now_us: f64,
        queue_depth: usize,
        overload_cap: Option<usize>,
    ) -> Result<(), ShedReason> {
        if self.infeasible.get(class).copied().unwrap_or(false) {
            return Err(ShedReason::StaticallyInfeasible);
        }
        if queue_depth >= self.max_queue_depth {
            return Err(ShedReason::QueueFull);
        }
        if overload_cap.is_some_and(|cap| queue_depth >= cap) {
            return Err(ShedReason::Overloaded);
        }
        if self.buckets[tenant].try_take(now_us) {
            Ok(())
        } else {
            Err(ShedReason::RateLimited)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bursts_then_throttles() {
        let mut bucket = TokenBucket::new(1_000.0, 4.0);
        for _ in 0..4 {
            assert!(bucket.try_take(0.0));
        }
        assert!(!bucket.try_take(0.0));
        // 1000 rps = one token per millisecond.
        assert!(!bucket.try_take(500.0));
        assert!(bucket.try_take(1_000.0));
    }

    #[test]
    fn bucket_caps_at_capacity() {
        let mut bucket = TokenBucket::new(1_000.0, 2.0);
        assert!((bucket.available(1.0e9) - 2.0).abs() < 1e-9);
    }

    fn one_class() -> Vec<KernelClass> {
        vec![KernelClass::new("infer", 400.0, 40.0, 120.0, 5_000.0, 4096)]
    }

    #[test]
    fn queue_full_does_not_consume_a_token() {
        let tenants = vec![TenantSpec::new("t", 1.0, 1_000.0, 1.0)];
        let config = AdmissionConfig { max_queue_depth: 1 };
        let mut ctl = AdmissionController::new(&tenants, &one_class(), &config);
        assert_eq!(ctl.admit(0, 0, 0.0, 1, None), Err(ShedReason::QueueFull));
        // The token survived the backpressure rejection.
        assert_eq!(ctl.admit(0, 0, 0.0, 0, None), Ok(()));
        assert_eq!(ctl.admit(0, 0, 0.0, 0, None), Err(ShedReason::RateLimited));
    }

    #[test]
    fn infeasible_class_is_refused_without_burning_a_token() {
        let tenants = vec![TenantSpec::new("t", 1.0, 1_000.0, 1.0)];
        let classes = vec![
            // Proven bound 9 ms against a 5 ms deadline: infeasible.
            KernelClass::new("late", 400.0, 40.0, 120.0, 5_000.0, 4096).with_static_bound(9_000.0),
            // Proven bound comfortably inside the deadline: feasible.
            KernelClass::new("ok", 400.0, 40.0, 120.0, 5_000.0, 4096).with_static_bound(1_000.0),
        ];
        let config = AdmissionConfig::default();
        let mut ctl = AdmissionController::new(&tenants, &classes, &config);
        // Static refusal precedes the bucket (burst of one stays whole).
        assert_eq!(
            ctl.admit(0, 0, 0.0, 0, None),
            Err(ShedReason::StaticallyInfeasible)
        );
        assert_eq!(ctl.admit(0, 1, 0.0, 0, None), Ok(()));
        // And precedes backpressure too: the refusal is class-typed
        // even when the queue is saturated.
        assert_eq!(
            ctl.admit(0, 0, 0.0, usize::MAX, None),
            Err(ShedReason::StaticallyInfeasible)
        );
    }

    #[test]
    fn overload_cap_sheds_typed_and_keeps_the_token() {
        let tenants = vec![TenantSpec::new("t", 1.0, 1_000.0, 1.0)];
        let config = AdmissionConfig { max_queue_depth: 8 };
        let mut ctl = AdmissionController::new(&tenants, &one_class(), &config);
        // Depth 4 is under the structural limit but at the limiter's
        // cap: the shed is typed Overloaded, not QueueFull.
        assert_eq!(
            ctl.admit(0, 0, 0.0, 4, Some(4)),
            Err(ShedReason::Overloaded)
        );
        // The structural limit still wins when both are exceeded.
        assert_eq!(ctl.admit(0, 0, 0.0, 8, Some(4)), Err(ShedReason::QueueFull));
        // Neither backpressure shed burned the single token.
        assert_eq!(ctl.admit(0, 0, 0.0, 0, Some(4)), Ok(()));
    }

    #[test]
    fn class_without_a_bound_stays_feasible() {
        let tenants = vec![TenantSpec::new("t", 1.0, 1_000.0, 4.0)];
        let config = AdmissionConfig::default();
        let mut ctl = AdmissionController::new(&tenants, &one_class(), &config);
        assert_eq!(ctl.admit(0, 0, 0.0, 0, None), Ok(()));
    }
}
