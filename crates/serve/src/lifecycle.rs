//! Request-lifecycle robustness: retry budgets, hedged dispatch,
//! adaptive concurrency, and brownout degradation tiers.
//!
//! The EVEREST runtime keeps meeting deadlines while nodes fail and
//! reconfigure; this module gives the *serve tier* the per-request
//! primitives that story needs (ExaWorks frames robustness as a
//! property of the whole stack, not one layer):
//!
//! * [`RetryBudget`] — a per-tenant token bucket spent by retries and
//!   refilled by *successes*, so retry storms self-limit: a tenant that
//!   stops completing work stops earning the right to retry. Backoff
//!   reuses [`everest_faults::RetryPolicy`] and draws jitter from the
//!   fault plan's dedicated substream
//!   ([`everest_faults::FaultPlan::jitter_rng`]), keeping serve-tier
//!   retries on the same replay-stable contract as the scheduler's.
//! * [`HedgeConfig`] + [`LatencyWindow`] — hedged dispatch for
//!   latency-critical classes: when a batch outlives the class's
//!   observed p95 service time, a duplicate is dispatched to a healthy
//!   node and the losing copy is cancelled.
//! * [`AimdLimiter`] — an adaptive concurrency limiter: additive
//!   increase while observed batch latency meets the class deadline,
//!   multiplicative decrease when it does not. It gates dispatch ahead
//!   of the circuit breakers and backs new arrivals off at the door
//!   with the typed [`crate::ShedReason::Overloaded`].
//! * [`BrownoutController`] — degradation tiers driven by
//!   `everest-health` state: as the fraction of unhealthy nodes grows
//!   the tier climbs, shrinking batch ceilings first, then disabling
//!   hedging, then shedding the lowest-weight tenants
//!   ([`crate::ShedReason::Brownout`]) — graceful steps instead of a
//!   cliff edge.
//!
//! Everything here is deterministic on the virtual clock: no wall
//! time, no ambient randomness, every threshold a pure function of
//! configuration and observed virtual-time history — which is what
//! lets `basecamp serve --hedge` replay byte-identically.

use everest_faults::RetryPolicy;

/// Retry knobs for fault-failed requests at the serve tier.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryConfig {
    /// Backoff schedule and per-request attempt cap (reused from the
    /// scheduler tier; jitter draws come from the fault plan's
    /// dedicated substream so replays stay byte-identical).
    pub policy: RetryPolicy,
    /// Token capacity of each tenant's [`RetryBudget`] (buckets start
    /// full, so a tenant can absorb one early fault burst).
    pub budget_cap: f64,
    /// Tokens earned back per completed request, up to the cap.
    pub refill_per_success: f64,
}

impl Default for RetryConfig {
    /// Default scheduler backoff, 32-token budgets, 0.25 tokens per
    /// success (a sustained fault wave needs four completions per
    /// retry to keep retrying).
    fn default() -> RetryConfig {
        RetryConfig {
            policy: RetryPolicy::default(),
            budget_cap: 32.0,
            refill_per_success: 0.25,
        }
    }
}

/// A per-tenant retry token bucket, refilled by successes rather than
/// by time: retries spend, completions earn. Under a fault storm the
/// bucket drains and stays drained until real work completes again —
/// exactly the self-limiting behaviour a retry storm needs.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryBudget {
    tokens: f64,
    cap: f64,
    refill_per_success: f64,
}

impl RetryBudget {
    /// A full bucket.
    pub fn new(config: &RetryConfig) -> RetryBudget {
        let cap = config.budget_cap.max(0.0);
        RetryBudget {
            tokens: cap,
            cap,
            refill_per_success: config.refill_per_success.max(0.0),
        }
    }

    /// Takes one token for a retry attempt; `false` means the budget
    /// is exhausted and the request must fail terminally.
    pub fn try_take(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Credits one completed request.
    pub fn on_success(&mut self) {
        self.tokens = (self.tokens + self.refill_per_success).min(self.cap);
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// Hedged-dispatch knobs for latency-critical classes
/// ([`crate::KernelClass::latency_critical`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeConfig {
    /// Multiplier on the p95-derived delay before a duplicate is
    /// dispatched (1.0 hedges exactly at the observed p95).
    pub delay_factor: f64,
    /// Before [`HedgeConfig::min_samples`] service times have been
    /// observed for a class, the hedge delay falls back to the
    /// dispatcher's expected service time scaled by this factor.
    pub cold_start_factor: f64,
    /// Observed service times retained per class for the p95 estimate.
    pub window: usize,
    /// Observations required before the p95 estimate is trusted.
    pub min_samples: usize,
}

impl Default for HedgeConfig {
    /// Hedge at 1× the observed p95 (3× expected while cold), over a
    /// 64-sample window warmed by 8 observations.
    fn default() -> HedgeConfig {
        HedgeConfig {
            delay_factor: 1.0,
            cold_start_factor: 3.0,
            window: 64,
            min_samples: 8,
        }
    }
}

/// A bounded window of recent latency observations with deterministic
/// nearest-rank quantiles. The ring keeps insertion order; quantiles
/// sort a scratch copy with `total_cmp`, so two replays of the same
/// run always agree.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyWindow {
    ring: Vec<f64>,
    cap: usize,
    next: usize,
}

impl LatencyWindow {
    /// An empty window holding at most `cap` observations.
    pub fn new(cap: usize) -> LatencyWindow {
        LatencyWindow {
            ring: Vec::with_capacity(cap.max(1)),
            cap: cap.max(1),
            next: 0,
        }
    }

    /// Records one observation, evicting the oldest past capacity.
    pub fn push(&mut self, value_us: f64) {
        if self.ring.len() < self.cap {
            self.ring.push(value_us);
        } else {
            self.ring[self.next] = value_us;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Observations currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Nearest-rank quantile of the window, `q` in `[0, 1]`; `None`
    /// while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.ring.is_empty() {
            return None;
        }
        let mut sorted = self.ring.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.max(1).min(sorted.len()) - 1])
    }
}

/// Adaptive-concurrency knobs (AIMD on observed batch latency vs the
/// class deadline).
#[derive(Debug, Clone, PartialEq)]
pub struct LimiterConfig {
    /// Concurrency limit the run starts at.
    pub initial: usize,
    /// Ceiling the additive increase may reach.
    pub max_inflight: usize,
    /// Added to the limit after a batch that met its deadline target.
    pub increase: f64,
    /// Multiplied into the limit after a batch that missed it (the
    /// multiplicative-decrease half; clamped to a floor of one).
    pub decrease: f64,
    /// Fraction of the class deadline a batch's service latency must
    /// stay within to count as "good" (1.0 = the whole deadline).
    pub headroom: f64,
    /// Queued requests tolerated per concurrency slot before new
    /// arrivals are shed [`crate::ShedReason::Overloaded`] at the door.
    pub queue_per_slot: usize,
}

impl Default for LimiterConfig {
    /// Start at 8 in flight, grow +1 to 64, halve on a deadline miss,
    /// allow 16 queued requests per slot at the door.
    fn default() -> LimiterConfig {
        LimiterConfig {
            initial: 8,
            max_inflight: 64,
            increase: 1.0,
            decrease: 0.5,
            headroom: 1.0,
            queue_per_slot: 16,
        }
    }
}

/// The AIMD concurrency limiter: one scalar limit over concurrently
/// executing batches, raised additively while batches meet their
/// deadline target and cut multiplicatively when they miss.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdLimiter {
    limit: f64,
    floor: usize,
    cfg: LimiterConfig,
}

impl AimdLimiter {
    /// A limiter at its configured initial limit.
    pub fn new(cfg: LimiterConfig) -> AimdLimiter {
        let initial = (cfg.initial.max(1) as f64).min(cfg.max_inflight.max(1) as f64);
        AimdLimiter {
            limit: initial,
            floor: 1,
            cfg,
        }
    }

    /// Raises the lower bound the multiplicative decrease can reach.
    /// The serving engine floors at one batch per node: the limiter
    /// exists to throttle queueing, never to idle hardware.
    #[must_use]
    pub fn with_floor(mut self, floor: usize) -> AimdLimiter {
        self.floor = floor.max(1);
        self
    }

    /// The current whole-batch concurrency limit (never below the
    /// floor).
    pub fn limit(&self) -> usize {
        (self.limit.floor() as usize).max(self.floor)
    }

    /// Arrivals are shed `Overloaded` at the door once the queue holds
    /// this many admitted-but-unserved requests.
    pub fn door_cap(&self) -> usize {
        self.limit().saturating_mul(self.cfg.queue_per_slot.max(1))
    }

    /// Feeds one completed batch's observed service latency against
    /// its class deadline. Returns `true` when the integer limit
    /// changed (so the caller can publish the gauge only on change).
    pub fn on_batch(&mut self, latency_us: f64, deadline_us: f64) -> bool {
        let before = self.limit();
        if latency_us <= deadline_us * self.cfg.headroom {
            self.limit = (self.limit + self.cfg.increase).min(self.cfg.max_inflight.max(1) as f64);
        } else {
            self.limit = (self.limit * self.cfg.decrease).max(1.0);
        }
        self.limit() != before
    }
}

/// Brownout-ladder knobs: which unhealthy-node fraction reaches which
/// tier, and how hard tiered operation shrinks the batch ceilings.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutConfig {
    /// Unhealthy fraction at which tier 1 (shrunk batch ceilings)
    /// engages.
    pub tier1_frac: f64,
    /// Unhealthy fraction at which tier 2 (hedging disabled) engages.
    pub tier2_frac: f64,
    /// Unhealthy fraction at which tier 3 (lowest-weight tenants shed)
    /// engages.
    pub tier3_frac: f64,
    /// Per-tier divisor applied to batch ceilings while tiered
    /// (ceiling = configured / divisor^tier, floored at one).
    pub batch_divisor: usize,
}

impl Default for BrownoutConfig {
    /// Tiers at 25 / 50 / 75 % unhealthy, halving ceilings per tier.
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            tier1_frac: 0.25,
            tier2_frac: 0.5,
            tier3_frac: 0.75,
            batch_divisor: 2,
        }
    }
}

/// Tracks the current brownout tier from the cluster's health state.
/// Tier 0 is normal operation; tiers 1–3 progressively trade quality
/// for survival. The controller is memoryless in health (the tier is a
/// pure function of the current unhealthy fraction), so recovery walks
/// back down the same ladder it climbed.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutController {
    cfg: BrownoutConfig,
    tier: u8,
}

impl BrownoutController {
    /// A controller at tier 0.
    pub fn new(cfg: BrownoutConfig) -> BrownoutController {
        BrownoutController { cfg, tier: 0 }
    }

    /// The tier the configured ladder assigns to `unhealthy` of
    /// `total` nodes.
    pub fn tier_for(&self, unhealthy: usize, total: usize) -> u8 {
        if total == 0 {
            return 0;
        }
        let frac = unhealthy as f64 / total as f64;
        if frac >= self.cfg.tier3_frac {
            3
        } else if frac >= self.cfg.tier2_frac {
            2
        } else if frac >= self.cfg.tier1_frac {
            1
        } else {
            0
        }
    }

    /// Re-evaluates the tier against the current health state.
    /// Returns `Some((from, to))` when the tier changed.
    pub fn observe(&mut self, unhealthy: usize, total: usize) -> Option<(u8, u8)> {
        let next = self.tier_for(unhealthy, total);
        if next == self.tier {
            return None;
        }
        let from = self.tier;
        self.tier = next;
        Some((from, next))
    }

    /// Current tier, 0–3.
    pub fn tier(&self) -> u8 {
        self.tier
    }

    /// Batch ceiling after the tier's shrink is applied to a chosen
    /// ceiling (tier 0 passes through).
    pub fn batch_ceiling(&self, chosen: usize) -> usize {
        let divisor = self
            .cfg
            .batch_divisor
            .max(1)
            .saturating_pow(u32::from(self.tier));
        (chosen / divisor.max(1)).max(1)
    }

    /// Whether hedged dispatch is still allowed at this tier.
    pub fn hedging_enabled(&self) -> bool {
        self.tier < 2
    }

    /// Whether lowest-weight tenants are shed at the door at this
    /// tier.
    pub fn shed_lowest_weight(&self) -> bool {
        self.tier >= 3
    }
}

/// The lifecycle feature set of a serving run. Every feature defaults
/// to off, so a [`crate::ServeConfig`] without lifecycle knobs behaves
/// exactly as before this layer existed (and replays byte-identically
/// against old traces).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LifecycleConfig {
    /// Retry fault-failed requests under per-tenant budgets instead of
    /// failing them terminally.
    pub retry: Option<RetryConfig>,
    /// Hedge latency-critical batches after the observed p95.
    pub hedge: Option<HedgeConfig>,
    /// Gate dispatch behind an AIMD concurrency limit.
    pub limiter: Option<LimiterConfig>,
    /// Degrade through brownout tiers on health verdicts.
    pub brownout: Option<BrownoutConfig>,
}

impl LifecycleConfig {
    /// Every lifecycle feature enabled at its default tuning.
    pub fn all_on() -> LifecycleConfig {
        LifecycleConfig {
            retry: Some(RetryConfig::default()),
            hedge: Some(HedgeConfig::default()),
            limiter: Some(LimiterConfig::default()),
            brownout: Some(BrownoutConfig::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_budget_spends_and_earns() {
        let cfg = RetryConfig {
            budget_cap: 2.0,
            refill_per_success: 0.5,
            ..RetryConfig::default()
        };
        let mut budget = RetryBudget::new(&cfg);
        assert!(budget.try_take());
        assert!(budget.try_take());
        assert!(!budget.try_take(), "cap of two is spent");
        budget.on_success();
        assert!(!budget.try_take(), "half a token is not a retry");
        budget.on_success();
        assert!(budget.try_take(), "two successes earn one retry");
        for _ in 0..100 {
            budget.on_success();
        }
        assert!(budget.available() <= 2.0, "refill never exceeds the cap");
    }

    #[test]
    fn latency_window_evicts_oldest_and_ranks() {
        let mut w = LatencyWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.95), None);
        for v in [10.0, 20.0, 30.0, 40.0] {
            w.push(v);
        }
        assert_eq!(w.quantile(1.0), Some(40.0));
        assert_eq!(w.quantile(0.5), Some(20.0));
        // Pushing past capacity evicts the oldest observation (10.0).
        w.push(50.0);
        assert_eq!(w.len(), 4);
        assert_eq!(w.quantile(0.25), Some(20.0));
        assert_eq!(w.quantile(1.0), Some(50.0));
    }

    #[test]
    fn aimd_limiter_grows_additively_and_cuts_multiplicatively() {
        let mut lim = AimdLimiter::new(LimiterConfig {
            initial: 4,
            max_inflight: 8,
            ..LimiterConfig::default()
        });
        assert_eq!(lim.limit(), 4);
        for _ in 0..10 {
            lim.on_batch(100.0, 1_000.0);
        }
        assert_eq!(lim.limit(), 8, "additive increase caps at max_inflight");
        assert!(lim.on_batch(2_000.0, 1_000.0));
        assert_eq!(lim.limit(), 4, "one miss halves the limit");
        for _ in 0..10 {
            lim.on_batch(2_000.0, 1_000.0);
        }
        assert_eq!(lim.limit(), 1, "the floor is one, never zero");
        assert_eq!(lim.door_cap(), LimiterConfig::default().queue_per_slot);
    }

    #[test]
    fn brownout_ladder_climbs_and_recovers() {
        let mut b = BrownoutController::new(BrownoutConfig::default());
        assert_eq!(b.tier(), 0);
        assert!(b.hedging_enabled());
        assert_eq!(b.observe(0, 4), None);
        assert_eq!(b.observe(1, 4), Some((0, 1)));
        assert_eq!(b.batch_ceiling(8), 4, "tier 1 halves the ceiling");
        assert!(b.hedging_enabled());
        assert_eq!(b.observe(2, 4), Some((1, 2)));
        assert!(!b.hedging_enabled(), "tier 2 disables hedging");
        assert!(!b.shed_lowest_weight());
        assert_eq!(b.observe(3, 4), Some((2, 3)));
        assert!(b.shed_lowest_weight(), "tier 3 sheds lowest weights");
        assert_eq!(b.batch_ceiling(8), 1);
        // Recovery walks the same ladder back down.
        assert_eq!(b.observe(0, 4), Some((3, 0)));
        assert_eq!(b.batch_ceiling(8), 8);
    }

    #[test]
    fn lifecycle_defaults_are_off() {
        let cfg = LifecycleConfig::default();
        assert!(cfg.retry.is_none());
        assert!(cfg.hedge.is_none());
        assert!(cfg.limiter.is_none());
        assert!(cfg.brownout.is_none());
        let on = LifecycleConfig::all_on();
        assert!(on.retry.is_some() && on.hedge.is_some());
        assert!(on.limiter.is_some() && on.brownout.is_some());
    }
}
