//! Dynamic batching: coalesce compatible requests (same kernel class)
//! into one accelerator invocation, closing a batch when it reaches
//! `max_batch` requests or when `max_wait_us` elapses since it opened —
//! whichever comes first.
//!
//! The batcher is passive on the clock: it never sleeps. The engine
//! schedules a `BatchTimeout` event when [`DynamicBatcher::offer`]
//! opens a new batch, and delivers it via [`DynamicBatcher::expire`];
//! batch ids make stale timeouts (the batch already closed on size)
//! harmless no-ops.

use std::collections::VecDeque;

use crate::request::Request;

/// Per-class batching knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPolicy {
    /// Close the batch as soon as it holds this many requests. The
    /// autotuner retunes this knob at runtime; the configured value is
    /// the ceiling it explores under.
    pub max_batch: usize,
    /// Close the batch this long after it opened even if short,
    /// bounding the queueing latency a batch can add. Microseconds.
    pub max_wait_us: f64,
}

impl BatchPolicy {
    /// Creates a policy.
    pub fn new(max_batch: usize, max_wait_us: f64) -> BatchPolicy {
        BatchPolicy {
            max_batch: max_batch.max(1),
            max_wait_us: max_wait_us.max(0.0),
        }
    }
}

/// A closed batch, ready for dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Batcher-unique id (also used to match completion events).
    pub id: u64,
    /// Kernel-class index shared by every request in the batch.
    pub class: usize,
    /// The coalesced requests, in WFQ pop order.
    pub requests: Vec<Request>,
    /// When the first request opened the batch, microseconds.
    pub opened_us: f64,
    /// When the batch closed (size or timeout), microseconds.
    pub closed_us: f64,
}

/// What [`DynamicBatcher::offer`] did with the request, so the engine
/// can keep its timeout bookkeeping exact: schedule a timeout when a
/// batch opens, cancel it when the batch later closes on size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Joined an already-open batch; no timeout action needed.
    Joined,
    /// Opened a new batch that is still open — schedule a timeout for
    /// it at `now_us + max_wait_us`.
    Opened(u64),
    /// The offer closed this batch on size. Any timeout scheduled for
    /// it is now stale and can be cancelled.
    Closed(u64),
}

#[derive(Debug)]
struct OpenBatch {
    id: u64,
    requests: Vec<Request>,
    opened_us: f64,
}

#[derive(Debug)]
struct ClassLane {
    max_batch: usize,
    max_wait_us: f64,
    open: Option<OpenBatch>,
}

/// The batching stage between the fair queues and dispatch.
#[derive(Debug)]
pub struct DynamicBatcher {
    lanes: Vec<ClassLane>,
    ready: VecDeque<Batch>,
    next_id: u64,
    pending: usize,
}

impl DynamicBatcher {
    /// Creates a batcher with one lane per kernel class.
    pub fn new(policies: &[BatchPolicy]) -> DynamicBatcher {
        DynamicBatcher {
            lanes: policies
                .iter()
                .map(|p| ClassLane {
                    max_batch: p.max_batch.max(1),
                    max_wait_us: p.max_wait_us.max(0.0),
                    open: None,
                })
                .collect(),
            ready: VecDeque::new(),
            next_id: 0,
            pending: 0,
        }
    }

    /// Retunes a class's batch-size ceiling (autotuner hook). Takes
    /// effect from the next close decision; an open batch larger than
    /// the new ceiling closes on its next offer or timeout.
    pub fn set_max_batch(&mut self, class: usize, max_batch: usize) {
        self.lanes[class].max_batch = max_batch.max(1);
    }

    /// Current batch-size ceiling for a class.
    pub fn max_batch(&self, class: usize) -> usize {
        self.lanes[class].max_batch
    }

    /// Wait ceiling for a class, microseconds.
    pub fn max_wait_us(&self, class: usize) -> f64 {
        self.lanes[class].max_wait_us
    }

    /// Adds a request to its class lane. The returned [`OfferOutcome`]
    /// tells the caller exactly what timeout bookkeeping to do:
    /// [`OfferOutcome::Opened`] means schedule a timeout at
    /// `now_us + max_wait_us`; [`OfferOutcome::Closed`] means the batch
    /// closed on size and any timeout scheduled for it is stale;
    /// [`OfferOutcome::Joined`] needs nothing. A fresh batch under a
    /// unit ceiling (`max_batch <= 1`) reports `Closed`, not `Opened` —
    /// it never waits, so no timeout was ever owed.
    pub fn offer(&mut self, request: Request, now_us: f64) -> OfferOutcome {
        let class = request.class;
        self.pending += 1;
        let lane = &mut self.lanes[class];
        let mut opened = false;
        match &mut lane.open {
            Some(open) => open.requests.push(request),
            None => {
                let id = self.next_id;
                self.next_id += 1;
                lane.open = Some(OpenBatch {
                    id,
                    requests: vec![request],
                    opened_us: now_us,
                });
                opened = true;
            }
        }
        let open = lane.open.as_ref().expect("lane holds an open batch");
        let id = open.id;
        if open.requests.len() >= lane.max_batch {
            self.close(class, now_us);
            OfferOutcome::Closed(id)
        } else if opened {
            OfferOutcome::Opened(id)
        } else {
            OfferOutcome::Joined
        }
    }

    /// Delivers a timeout for `batch_id` in `class`. Closes the batch
    /// only if that exact batch is still open; returns whether it did.
    pub fn expire(&mut self, class: usize, batch_id: u64, now_us: f64) -> bool {
        let matches = self.lanes[class]
            .open
            .as_ref()
            .map(|open| open.id == batch_id)
            .unwrap_or(false);
        if matches {
            self.close(class, now_us);
        }
        matches
    }

    fn close(&mut self, class: usize, now_us: f64) {
        let lane = &mut self.lanes[class];
        if let Some(open) = lane.open.take() {
            self.ready.push_back(Batch {
                id: open.id,
                class,
                requests: open.requests,
                opened_us: open.opened_us,
                closed_us: now_us,
            });
        }
    }

    /// Pops the oldest closed batch, if any.
    pub fn pop_ready(&mut self) -> Option<Batch> {
        let batch = self.ready.pop_front()?;
        self.pending -= batch.requests.len();
        Some(batch)
    }

    /// Closed batches awaiting dispatch.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Requests held in the batcher (open plus closed batches).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Drains every request, open or closed (cluster-loss path).
    pub fn drain(&mut self) -> Vec<Request> {
        let mut out = Vec::with_capacity(self.pending);
        while let Some(batch) = self.pop_ready() {
            out.extend(batch.requests);
        }
        for class in 0..self.lanes.len() {
            if let Some(open) = self.lanes[class].open.take() {
                self.pending -= open.requests.len();
                out.extend(open.requests);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, class: usize) -> Request {
        Request {
            id,
            tenant: 0,
            class,
            arrival_us: 0.0,
            attempt: 0,
        }
    }

    fn batcher() -> DynamicBatcher {
        DynamicBatcher::new(&[BatchPolicy::new(3, 100.0), BatchPolicy::new(1, 100.0)])
    }

    #[test]
    fn closes_on_size() {
        let mut b = batcher();
        assert_eq!(b.offer(request(0, 0), 0.0), OfferOutcome::Opened(0));
        assert_eq!(b.offer(request(1, 0), 1.0), OfferOutcome::Joined);
        assert_eq!(b.ready_len(), 0);
        assert_eq!(b.offer(request(2, 0), 2.0), OfferOutcome::Closed(0));
        let batch = b.pop_ready().expect("full batch closed");
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(batch.opened_us, 0.0);
        assert_eq!(batch.closed_us, 2.0);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn closes_on_timeout_and_ignores_stale() {
        let mut b = batcher();
        let OfferOutcome::Opened(id) = b.offer(request(0, 0), 5.0) else {
            panic!("first offer opens");
        };
        assert!(b.expire(0, id, 105.0));
        let batch = b.pop_ready().expect("timed out");
        assert_eq!(batch.requests.len(), 1);
        assert_eq!(batch.closed_us, 105.0);
        // Stale timeout for the already-closed batch is a no-op.
        assert!(!b.expire(0, id, 200.0));
    }

    #[test]
    fn unit_batch_closes_immediately() {
        let mut b = batcher();
        assert_eq!(b.offer(request(0, 1), 0.0), OfferOutcome::Closed(0));
        assert_eq!(b.ready_len(), 1);
    }

    #[test]
    fn retune_lowers_the_ceiling() {
        let mut b = batcher();
        b.set_max_batch(0, 2);
        assert_eq!(b.offer(request(0, 0), 0.0), OfferOutcome::Opened(0));
        assert_eq!(b.offer(request(1, 0), 1.0), OfferOutcome::Closed(0));
        assert_eq!(b.ready_len(), 1);
    }

    #[test]
    fn drain_returns_open_and_closed() {
        let mut b = batcher();
        b.offer(request(0, 1), 0.0); // closes immediately
        b.offer(request(1, 0), 0.0); // stays open
        assert_eq!(b.pending(), 2);
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.ready_len(), 0);
    }
}
