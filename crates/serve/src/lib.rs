//! # everest-serve
//!
//! The multi-tenant request-serving front end of the EVEREST SDK: the
//! missing layer between "millions of users" (ROADMAP north star) and
//! the virtualized runtime of paper §VI. Where the scheduler runs
//! closed, pre-planned campaigns, this crate takes an *open-loop
//! stream of requests* and turns it into placed work:
//!
//! * [`admission`] — per-tenant token buckets plus shared queue-depth
//!   backpressure; refusals are typed ([`ShedReason`]) so clients can
//!   tell "slow down" from "saturated" from "too late";
//! * [`wfq`] — start-time fair queueing across tenants: service share
//!   proportional to weight, no starvation for any positive weight;
//! * [`batcher`] — dynamic batching per kernel class (close on size or
//!   wait-timeout), amortising FPGA launch overhead across requests;
//! * [`engine`] — the seeded, virtual-clock discrete-event simulation
//!   tying it together with `everest-health` circuit breakers,
//!   `everest-faults` chaos plans, an `everest-autotuner` operating
//!   point for batch size vs latency, and `serve.*` telemetry;
//! * [`lifecycle`] — optional request-lifecycle robustness: per-tenant
//!   retry budgets with seeded backoff, hedged dispatch for
//!   latency-critical classes, an AIMD concurrency limiter, and
//!   brownout degradation tiers driven by cluster health.
//!
//! Determinism is the design axiom: a run is a pure function of its
//! [`ServeConfig`] and fault plan, so `basecamp serve` replays
//! byte-identically and CI can diff two runs of the same seed. See
//! `docs/SERVING.md` for the architecture and knob reference.
//!
//! # Examples
//!
//! ```
//! use everest_serve::{ServeConfig, ServeEngine};
//!
//! let outcome = ServeEngine::new(ServeConfig {
//!     offered_rps: 6_000.0,
//!     horizon_us: 50_000.0,
//!     ..ServeConfig::default()
//! })
//! .run();
//! assert!(outcome.conserved());
//! assert!(outcome.completed > 0);
//! assert!(outcome.latency_quantile(0.99).expect("completions") > 0.0);
//! ```

#![warn(clippy::unwrap_used)]

pub mod admission;
pub mod batcher;
pub mod engine;
pub mod lifecycle;
pub mod request;
pub mod wfq;

pub use admission::{AdmissionConfig, AdmissionController, TokenBucket};
pub use batcher::{Batch, BatchPolicy, DynamicBatcher, OfferOutcome};
pub use engine::{BatchRecord, ServeConfig, ServeEngine, ServeOutcome, TenantOutcome};
pub use everest_cluster::ClusterConfig;
pub use lifecycle::{
    AimdLimiter, BrownoutConfig, BrownoutController, HedgeConfig, LatencyWindow, LifecycleConfig,
    LimiterConfig, RetryBudget, RetryConfig,
};
pub use request::{ArrivalTrace, ClassKind, KernelClass, Outcome, Request, ShedReason, TenantSpec};
pub use wfq::WeightedFairQueue;
