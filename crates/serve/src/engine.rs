//! The serving engine: a seeded discrete-event simulation that pushes
//! an open-loop arrival trace through admission control, weighted-fair
//! queueing and dynamic batching onto a heterogeneous cluster.
//!
//! # Determinism
//!
//! The engine is a pure function of its [`ServeConfig`] and
//! [`everest_faults::FaultPlan`]: the clock is virtual, every random
//! draw comes from forked [`everest_faults::DetRng`] substreams, the
//! event queue breaks timestamp ties by insertion sequence, and all
//! float orderings use `f64::total_cmp`. Two runs with the same inputs
//! produce identical [`ServeOutcome`]s — the property `basecamp serve`
//! replays and CI diffs byte-for-byte.
//!
//! # Hot path
//!
//! The event loop is the SDK's throughput ceiling (the `e16_serving`
//! bench measures it in wall events per second), so the engine keeps it
//! allocation- and string-free:
//!
//! * arrivals are not heap events — the sorted trace is walked with a
//!   cursor, merged against [`everest_runtime::EventQueue::peek_time`]
//!   (arrivals win timestamp ties, matching their insertion order in
//!   the old all-events-in-one-heap design);
//! * dynamic events (batch timeouts, completions, faults) live in an
//!   indexed [`everest_runtime::EventQueue`], and the engine *cancels*
//!   events that can no longer matter — the wait-timeout of a batch
//!   that closed on size, the completion of a batch a fault already
//!   failed — instead of popping tombstones;
//! * `serve.*` telemetry goes through pre-resolved
//!   [`everest_telemetry::CounterHandle`]s (no name lookups), and the
//!   two per-request histograms are deterministically sampled;
//! * the autotuner is fed through resolved [`TunerSlot`]s, cached per
//!   class until a retune changes the active operating point.
//!
//! Cancelling stale events is outcome-preserving: a stale pop only
//! re-runs the pull/dispatch pump at a later virtual time, and the
//! pump is at a fixed point whenever no node freed and no breaker
//! cooldown elapsed in between — conditions that can only change at a
//! *live* event. The one observable difference is `end_us`, which used
//! to be the time of the last popped event; the engine now tracks the
//! maximum scheduled time explicitly so `end_us` is unchanged.
//!
//! # Integration
//!
//! * `everest-health` — per-node [`CircuitBreaker`]s make suspect nodes
//!   ineligible for dispatch; a [`HealthMonitor`] convicts gray
//!   failures from achieved batch inflation and trips the breakers.
//! * `everest-faults` — a [`FaultPlan`] injects crashes, transient
//!   errors and gray degradations into the run; the dispatcher's
//!   placement model stays gray-blind while actual timings inflate.
//! * `everest-autotuner` — one mARGOt tuner per kernel class retunes
//!   the batch-size ceiling online, minimising per-request cost under
//!   the class's latency SLO.
//! * `everest-telemetry` — `serve.*` counters, gauges, histograms and
//!   events (see `docs/OBSERVABILITY.md`).
//! * `crate::lifecycle` — optional request-lifecycle robustness:
//!   per-tenant retry budgets with seeded backoff re-enqueue, hedged
//!   dispatch for latency-critical classes (losers cancelled through
//!   the same [`EventToken`] machinery as stale timeouts), an AIMD
//!   concurrency limiter gating dispatch ahead of the breakers, and
//!   brownout tiers driven by the health layer. All lifecycle features
//!   default off; a config without them behaves bit-for-bit as before.
//! * `everest-cluster` — optional partition tolerance: a SWIM-style
//!   gossip detector ticks on the virtual clock (the engine's
//!   `GossipRound` event), lease-based shard ownership gates the door (a
//!   tenant whose shard holds no live lease is shed typed,
//!   [`ShedReason::PartitionedAway`]), membership confirms flow into
//!   the health pipeline as [`VerdictKind::Unreachable`] verdicts, and
//!   a confirmed-dead node's in-flight leg is *fenced*: its completion
//!   is cancelled (so the partitioned node's eventual result can never
//!   double-count) and its requests re-enter the fair queue. Like the
//!   lifecycle features, the cluster layer defaults off and a config
//!   without it behaves bit-for-bit as before.

use std::sync::Arc;

use everest_autotuner::{
    config, Autotuner, Constraint, Features, KnobValue, Objective, OperatingPoint, TunerSlot,
};
use everest_cluster::{ClusterConfig, ClusterController};
use everest_faults::{FaultKind, FaultPlan};
use everest_health::{
    Admission as BreakerAdmission, BreakerConfig, CircuitBreaker, HealthConfig, HealthMonitor,
    VerdictKind,
};
use everest_runtime::cluster::Cluster;
use everest_runtime::{EventQueue, EventToken};
use everest_telemetry::{CounterHandle, GaugeHandle, HistogramHandle, Registry};

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::batcher::{BatchPolicy, DynamicBatcher, OfferOutcome};
use crate::lifecycle::{
    AimdLimiter, BrownoutController, LatencyWindow, LifecycleConfig, RetryBudget,
};
use crate::request::{ArrivalTrace, ClassKind, KernelClass, Request, ShedReason, TenantSpec};
use crate::wfq::WeightedFairQueue;

/// Full configuration of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Seed for the arrival trace and every derived substream.
    pub seed: u64,
    /// Cluster size; the second half of the nodes carry FPGAs
    /// (`Cluster::everest(nodes - nodes/2, nodes/2, cores)`).
    pub nodes: usize,
    /// CPU cores per node.
    pub cores: u32,
    /// The tenants sharing the cluster.
    pub tenants: Vec<TenantSpec>,
    /// The kernel classes requests may target.
    pub classes: Vec<KernelClass>,
    /// Per-class batching policy (parallel to `classes`).
    pub batch: Vec<BatchPolicy>,
    /// Admission knobs.
    pub admission: AdmissionConfig,
    /// Aggregate offered load, requests per second (split across
    /// tenants by weight).
    pub offered_rps: f64,
    /// Arrival horizon on the virtual clock, microseconds. The run
    /// itself continues past the horizon until the backlog drains.
    pub horizon_us: f64,
    /// Whether the per-class autotuners retune the batch ceiling.
    pub autotune: bool,
    /// Retune cadence, in completed batches per class.
    pub retune_every: u64,
    /// Circuit-breaker tuning for dispatch eligibility.
    pub breaker: BreakerConfig,
    /// Health-monitor tuning (gray-failure conviction thresholds).
    pub health: HealthConfig,
    /// Request-lifecycle robustness features (retry budgets, hedged
    /// dispatch, adaptive concurrency, brownout tiers). All default
    /// off.
    pub lifecycle: LifecycleConfig,
    /// Partition-tolerant cluster membership: gossip failure
    /// detection, lease-based shard ownership and fenced failover.
    /// `None` (the default) runs the engine exactly as before — no
    /// gossip events, no ownership gate, no fencing.
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServeConfig {
    /// A 4-node (2 CPU + 2 FPGA) cluster serving three weighted
    /// tenants (gold 4×, silver 2×, bronze 1×) with two kernel
    /// classes, 10 000 rps offered over a 200 ms horizon.
    fn default() -> ServeConfig {
        ServeConfig {
            seed: 42,
            nodes: 4,
            cores: 4,
            tenants: vec![
                TenantSpec::new("gold", 4.0, 8_000.0, 64.0),
                TenantSpec::new("silver", 2.0, 4_000.0, 32.0),
                TenantSpec::new("bronze", 1.0, 2_000.0, 16.0),
            ],
            classes: vec![
                KernelClass::new("infer", 400.0, 40.0, 120.0, 5_000.0, 4_096),
                KernelClass::new("analytics", 1_600.0, 160.0, 320.0, 20_000.0, 16_384)
                    .with_kind(ClassKind::Analytics),
            ],
            batch: vec![BatchPolicy::new(8, 400.0), BatchPolicy::new(8, 800.0)],
            admission: AdmissionConfig::default(),
            offered_rps: 10_000.0,
            horizon_us: 200_000.0,
            autotune: true,
            retune_every: 16,
            breaker: BreakerConfig::default(),
            health: HealthConfig::default(),
            lifecycle: LifecycleConfig::default(),
            cluster: None,
        }
    }
}

/// One dispatched batch, as recorded in the replay trace (dispatch
/// order; times in virtual µs).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Batcher-unique id.
    pub id: u64,
    /// Kernel-class index.
    pub class: usize,
    /// Serving node index.
    pub node: usize,
    /// Requests coalesced into the batch.
    pub size: usize,
    /// Dispatch time.
    pub start_us: f64,
    /// Completion (or failure) time.
    pub finish_us: f64,
    /// Whether this was a half-open breaker probe.
    pub probe: bool,
    /// Whether a fault killed the batch before completion.
    pub failed: bool,
    /// Whether this record is a hedge duplicate of another record with
    /// the same id (hedged batches appear twice in the trace: primary
    /// leg and hedge leg).
    pub hedge: bool,
    /// Whether this leg lost the hedge race and was cancelled; its
    /// requests completed exactly once, on the winning leg.
    pub cancelled: bool,
    /// Cluster fencing epoch at dispatch time (0 when the cluster
    /// layer is off or no failover has happened yet). Work stamped
    /// with an old epoch is recognizably stale after a failover.
    pub epoch: u64,
    /// Whether a membership confirm fenced this leg: its node was
    /// declared unreachable while the leg was in flight, the
    /// completion was cancelled, and (for a sole surviving leg) the
    /// requests were re-enqueued.
    pub fenced: bool,
}

/// Per-tenant accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// WFQ weight (copied for reporting).
    pub weight: f64,
    /// Requests offered by the arrival trace.
    pub offered: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed (any [`ShedReason`]).
    pub shed: u64,
    /// Requests lost to faults.
    pub failed: u64,
    /// Retry re-enqueues charged to this tenant's budget. Not a
    /// terminal state: a retried request still ends completed, failed
    /// or deadline-shed.
    pub retried: u64,
}

/// The result of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Requests offered by the arrival trace.
    pub offered: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests lost to faults after admission.
    pub failed: u64,
    /// Sheds at the door: empty token bucket.
    pub shed_rate_limited: u64,
    /// Sheds at the door: queue-depth backpressure.
    pub shed_queue_full: u64,
    /// Sheds at the door: class statically proven unable to meet its
    /// deadline (worst-case bound from `everest-analysis` exceeds the
    /// class deadline).
    pub shed_static: u64,
    /// Sheds at the door: the adaptive concurrency limiter's cap
    /// (observed batch latency says the cluster is past its useful
    /// concurrency).
    pub shed_overloaded: u64,
    /// Sheds at the door: a brownout tier sacrificed the tenant to
    /// keep higher-weight tenants inside their deadlines.
    pub shed_brownout: u64,
    /// Sheds at the door: the tenant's shard holds no live lease (its
    /// owner is partitioned away, or the coordinator's component lost
    /// quorum) — refused typed, before any token or queue slot is
    /// spent.
    pub shed_partitioned: u64,
    /// Sheds in queue: class deadline lapsed before dispatch.
    pub shed_deadline: u64,
    /// Completions that finished past their class deadline.
    pub slo_violations: u64,
    /// Fault-failed requests re-enqueued by the retry layer (charged
    /// to their tenant's retry budget).
    pub retries: u64,
    /// Fault-failed requests the retry layer refused (attempt cap or
    /// budget exhausted) and failed terminally.
    pub retry_denied: u64,
    /// Hedge duplicates dispatched.
    pub hedges: u64,
    /// Hedge races the duplicate won.
    pub hedge_wins: u64,
    /// Losing legs cancelled after a hedge race resolved (primary or
    /// duplicate).
    pub hedge_cancelled: u64,
    /// Hedge timers that fired but found no healthy idle node.
    pub hedge_denied: u64,
    /// Brownout tier changes during the run.
    pub brownout_transitions: u64,
    /// Highest brownout tier the run reached (0 = never browned out).
    pub brownout_peak_tier: u8,
    /// Breaker trips during the run.
    pub breaker_opens: u64,
    /// Half-open probe dispatches.
    pub probes: u64,
    /// Gossip rounds the membership layer ran (0 with the cluster
    /// layer off).
    pub gossip_rounds: u64,
    /// Alive→Suspect transitions across all observer views.
    pub suspects: u64,
    /// Suspect→Dead confirms (suspicion outlived the suspect timeout).
    pub confirms: u64,
    /// Incarnation-bump refutations (a probed node cleared its own
    /// suspicion).
    pub refutations: u64,
    /// Shard lease failovers (each bumps the fencing epoch).
    pub failovers: u64,
    /// Lease grants made through the degraded-mode escape hatch
    /// (no quorum, grace expired).
    pub degraded_grants: u64,
    /// Requests whose in-flight leg was fenced off a confirmed-dead
    /// node and re-enqueued into the fair queue. Not a terminal state:
    /// each re-enqueued request still ends completed, failed or
    /// deadline-shed exactly once.
    pub partition_orphans: u64,
    /// Batch legs fenced by a membership confirm (completion
    /// cancelled; the partitioned node's result can never land).
    pub fenced_batches: u64,
    /// Final fencing epoch (0 when no failover ever happened).
    pub cluster_epoch: u64,
    /// Autotuner retune evaluations.
    pub retunes: u64,
    /// Per-tenant accounting, in tenant-table order.
    pub tenants: Vec<TenantOutcome>,
    /// Every dispatched batch, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// End-to-end latency of every completion, in completion order.
    pub latencies_us: Vec<f64>,
    /// Arrival horizon, microseconds.
    pub horizon_us: f64,
    /// Virtual time the last event settled, microseconds.
    pub end_us: f64,
    /// Final autotuned batch ceiling per class.
    pub final_max_batch: Vec<usize>,
}

impl ServeOutcome {
    /// Requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate_limited
            + self.shed_queue_full
            + self.shed_static
            + self.shed_overloaded
            + self.shed_brownout
            + self.shed_partitioned
            + self.shed_deadline
    }

    /// Shed fraction of offered load, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed_total() as f64 / self.offered as f64
        }
    }

    /// Completed requests per second of virtual run time.
    pub fn throughput_rps(&self) -> f64 {
        if self.end_us <= 0.0 {
            0.0
        } else {
            self.completed as f64 * 1.0e6 / self.end_us
        }
    }

    /// Exact (nearest-rank) latency quantile, `q` in `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.latencies_us.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.max(1).min(sorted.len()) - 1])
    }

    /// Mean end-to-end latency, microseconds.
    pub fn mean_latency_us(&self) -> Option<f64> {
        if self.latencies_us.is_empty() {
            None
        } else {
            Some(self.latencies_us.iter().sum::<f64>() / self.latencies_us.len() as f64)
        }
    }

    /// The conservation invariant: every offered request reached
    /// exactly one terminal state, globally and per tenant. Retries
    /// and hedges must not bend it: a retried request is still counted
    /// once at the door and reaches one terminal state, and a hedged
    /// batch's requests complete exactly once (on the winning leg).
    /// Partitions must not bend it either: a `PartitionedAway` shed is
    /// a door-side terminal state, and a fenced orphan re-enters the
    /// queue without leaving the `admitted` population.
    pub fn conserved(&self) -> bool {
        let door = self.offered
            == self.admitted
                + self.shed_rate_limited
                + self.shed_queue_full
                + self.shed_static
                + self.shed_overloaded
                + self.shed_brownout
                + self.shed_partitioned;
        let queue = self.admitted == self.completed + self.failed + self.shed_deadline;
        let hedges = self.hedge_wins <= self.hedges
            && self.hedge_cancelled <= self.hedges
            && self.hedge_wins <= self.hedge_cancelled;
        let tenants = self.tenants.iter().all(|t| {
            t.offered == t.completed + t.shed + t.failed && t.admitted >= t.completed + t.failed
        });
        let sums = self.offered == self.tenants.iter().map(|t| t.offered).sum::<u64>()
            && self.completed == self.tenants.iter().map(|t| t.completed).sum::<u64>()
            && self.failed == self.tenants.iter().map(|t| t.failed).sum::<u64>()
            && self.shed_total() == self.tenants.iter().map(|t| t.shed).sum::<u64>()
            && self.completed as usize == self.latencies_us.len()
            && self.retries == self.tenants.iter().map(|t| t.retried).sum::<u64>();
        door && queue && tenants && sums && hedges
    }
}

/// The serving engine. Build one from a [`ServeConfig`], optionally
/// attach a fault plan and a shared telemetry registry, then
/// [`ServeEngine::run`].
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    plan: FaultPlan,
    registry: Arc<Registry>,
}

impl ServeEngine {
    /// An engine with no faults and a private telemetry registry.
    pub fn new(config: ServeConfig) -> ServeEngine {
        let seed = config.seed;
        ServeEngine {
            config,
            plan: FaultPlan::new(seed),
            registry: Registry::new(),
        }
    }

    /// Injects a chaos plan into the run.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> ServeEngine {
        self.plan = plan;
        self
    }

    /// Records telemetry into a shared registry (e.g. the process
    /// global behind `basecamp --trace`).
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> ServeEngine {
        self.registry = registry;
        self
    }

    /// Runs the simulation to completion (arrivals exhausted and the
    /// admitted backlog fully drained).
    pub fn run(&self) -> ServeOutcome {
        let span = self.registry.span("serve.run");
        span.arg("seed", self.config.seed as f64)
            .arg("nodes", self.config.nodes as f64)
            .arg("offered_rps", self.config.offered_rps);
        let sim = Sim::new(&self.config, &self.plan, self.registry.clone());
        let outcome = sim.run();
        span.arg("completed", outcome.completed as f64)
            .arg("shed", outcome.shed_total() as f64)
            .record_sim_us(outcome.end_us);
        outcome
    }
}

// ---------------------------------------------------------------------
// Events and telemetry
// ---------------------------------------------------------------------

/// Dynamic events on the indexed queue. Arrivals are deliberately not
/// events: the sorted trace is merged in by cursor.
#[derive(Debug)]
enum EventKind {
    BatchTimeout {
        class: usize,
        batch: u64,
    },
    /// A leg of `batch` finished. `hedged` marks the event scheduled
    /// for a hedge duplicate; after a primary-leg fault promotes the
    /// duplicate, its (still `hedged`) event completes the batch.
    Completion {
        batch: u64,
        hedged: bool,
    },
    Fault(usize),
    /// The hedge delay for `batch` elapsed with the batch still in
    /// flight: dispatch a duplicate if a healthy idle node exists.
    HedgeTimer {
        batch: u64,
    },
    /// A fault-failed request re-enters the fair queue after backoff.
    Retry(Request),
    /// One membership round: probe, merge, expire suspects, renew or
    /// fail over leases. Scheduled only when the cluster layer is on;
    /// reschedules itself while the run still has work to converge on.
    GossipRound,
}

/// Every Nth per-request observation lands in the `serve.queue_wait_us`
/// and `serve.latency_us` histograms (deterministic, not randomized —
/// replays stay byte-identical). Counters and the outcome's exact
/// latency vector are never sampled.
const REQUEST_SAMPLE_EVERY: u64 = 8;

/// Pre-resolved `serve.*` instruments: one name lookup each at
/// construction, atomic increments on the hot path.
#[derive(Debug)]
struct ServeMetrics {
    requests_offered: CounterHandle,
    requests_admitted: CounterHandle,
    requests_completed: CounterHandle,
    requests_shed: CounterHandle,
    requests_failed: CounterHandle,
    /// Indexed by [`ShedReason::index`].
    shed_reason: [CounterHandle; ShedReason::COUNT],
    slo_violations: CounterHandle,
    batches_dispatched: CounterHandle,
    probes: CounterHandle,
    breaker_opens: CounterHandle,
    retunes: CounterHandle,
    faults: CounterHandle,
    retry_attempts: CounterHandle,
    retry_denied: CounterHandle,
    hedge_launched: CounterHandle,
    hedge_wins: CounterHandle,
    hedge_cancelled: CounterHandle,
    hedge_denied: CounterHandle,
    brownout_transitions: CounterHandle,
    queue_depth: GaugeHandle,
    brownout_tier: GaugeHandle,
    limiter_limit: GaugeHandle,
    queue_wait_us: HistogramHandle,
    latency_us: HistogramHandle,
    batch_size: HistogramHandle,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            requests_offered: registry.counter_handle("serve.requests_offered"),
            requests_admitted: registry.counter_handle("serve.requests_admitted"),
            requests_completed: registry.counter_handle("serve.requests_completed"),
            requests_shed: registry.counter_handle("serve.requests_shed"),
            requests_failed: registry.counter_handle("serve.requests_failed"),
            shed_reason: [
                registry.counter_handle("serve.shed.rate_limited"),
                registry.counter_handle("serve.shed.queue_full"),
                registry.counter_handle("serve.shed.deadline_lapsed"),
                registry.counter_handle("serve.shed.statically_infeasible"),
                registry.counter_handle("serve.shed.overloaded"),
                registry.counter_handle("serve.shed.brownout"),
                registry.counter_handle("serve.shed.partitioned_away"),
            ],
            slo_violations: registry.counter_handle("serve.slo_violations"),
            batches_dispatched: registry.counter_handle("serve.batches_dispatched"),
            probes: registry.counter_handle("serve.probes"),
            breaker_opens: registry.counter_handle("serve.breaker_opens"),
            retunes: registry.counter_handle("serve.retunes"),
            faults: registry.counter_handle("serve.faults"),
            retry_attempts: registry.counter_handle("serve.retry.attempts"),
            retry_denied: registry.counter_handle("serve.retry.denied"),
            hedge_launched: registry.counter_handle("serve.hedge.launched"),
            hedge_wins: registry.counter_handle("serve.hedge.wins"),
            hedge_cancelled: registry.counter_handle("serve.hedge.cancelled"),
            hedge_denied: registry.counter_handle("serve.hedge.denied"),
            brownout_transitions: registry.counter_handle("serve.brownout.transitions"),
            queue_depth: registry.gauge_handle("serve.queue_depth"),
            brownout_tier: registry.gauge_handle("serve.brownout.tier"),
            limiter_limit: registry.gauge_handle("serve.limiter.limit"),
            queue_wait_us: registry
                .histogram_handle_sampled("serve.queue_wait_us", REQUEST_SAMPLE_EVERY),
            latency_us: registry.histogram_handle_sampled("serve.latency_us", REQUEST_SAMPLE_EVERY),
            batch_size: registry.histogram_handle("serve.batch_size"),
        }
    }
}

/// Pre-resolved `cluster.*` instruments. Registered only when the
/// cluster layer is on, so a features-off run records exactly the same
/// telemetry namespace as before.
#[derive(Debug)]
struct ClusterMetrics {
    gossip_rounds: CounterHandle,
    probes: CounterHandle,
    probe_failures: CounterHandle,
    suspects: CounterHandle,
    confirms: CounterHandle,
    refutations: CounterHandle,
    lease_renewals: CounterHandle,
    failovers: CounterHandle,
    degraded_grants: CounterHandle,
    orphaned_requests: CounterHandle,
    fenced_batches: CounterHandle,
    fencing_epoch: GaugeHandle,
}

impl ClusterMetrics {
    fn new(registry: &Registry) -> ClusterMetrics {
        ClusterMetrics {
            gossip_rounds: registry.counter_handle("cluster.gossip_rounds"),
            probes: registry.counter_handle("cluster.probes"),
            probe_failures: registry.counter_handle("cluster.probe_failures"),
            suspects: registry.counter_handle("cluster.suspects"),
            confirms: registry.counter_handle("cluster.confirms"),
            refutations: registry.counter_handle("cluster.refutations"),
            lease_renewals: registry.counter_handle("cluster.lease_renewals"),
            failovers: registry.counter_handle("cluster.failovers"),
            degraded_grants: registry.counter_handle("cluster.degraded_grants"),
            orphaned_requests: registry.counter_handle("cluster.orphaned_requests"),
            fenced_batches: registry.counter_handle("cluster.fenced_batches"),
            fencing_epoch: registry.gauge_handle("cluster.fencing_epoch"),
        }
    }
}

// ---------------------------------------------------------------------
// Simulation state
// ---------------------------------------------------------------------

#[derive(Debug)]
struct NodeState {
    fpga: bool,
    crashed: bool,
    free_at_us: f64,
    current: Option<u64>,
    breaker: CircuitBreaker,
    /// Gray slowdown windows `(from_us, to_us, factor)`.
    slow: Vec<(f64, f64, f64)>,
    /// Link degradation windows `(from_us, to_us, factor)`.
    link: Vec<(f64, f64, f64)>,
    /// Progressive VF degradation `(onset_us, per_ms)`.
    creep: Option<(f64, f64)>,
}

/// A hedge duplicate running alongside a batch's primary leg. Exactly
/// one may exist per batch (the hedge timer fires once); whichever leg
/// completes first wins and the other is cancelled.
#[derive(Debug)]
struct HedgeLeg {
    node: usize,
    start_us: f64,
    expected_us: f64,
    actual_us: f64,
    fpga_path: bool,
    record: usize,
    completion: EventToken,
}

#[derive(Debug)]
struct Inflight {
    node: usize,
    class: usize,
    requests: Vec<Request>,
    start_us: f64,
    expected_us: f64,
    actual_us: f64,
    probe: bool,
    fpga_path: bool,
    record: usize,
    /// The scheduled completion event, cancelled if a fault fails the
    /// batch first or a hedge duplicate wins the race.
    completion: EventToken,
    /// The hedge duplicate, once one has been dispatched.
    hedge: Option<HedgeLeg>,
    /// Pending hedge-delay timer, cancelled when the batch reaches a
    /// terminal state (or consumed when it fires).
    hedge_timer: Option<EventToken>,
}

/// Cached autotuner slots for one class: valid while the active batch
/// ceiling is unchanged.
#[derive(Debug, Clone, Copy)]
struct SlotCache {
    batch: usize,
    latency: TunerSlot,
    per_request: TunerSlot,
}

struct Sim<'a> {
    cfg: &'a ServeConfig,
    cluster: Cluster,
    registry: Arc<Registry>,
    queue: EventQueue<EventKind>,
    arrivals: Vec<Request>,
    cursor: usize,
    /// Max time any dynamic event was ever scheduled for; keeps
    /// `end_us` identical whether or not stale events were cancelled.
    max_sched_us: f64,
    admission: AdmissionController,
    wfq: WeightedFairQueue,
    batcher: DynamicBatcher,
    nodes: Vec<NodeState>,
    /// Indexed by batch id (batcher ids are dense from 0).
    inflight: Vec<Option<Inflight>>,
    /// Pending wait-timeout per open batch, indexed by batch id.
    timeout_tokens: Vec<Option<EventToken>>,
    monitor: HealthMonitor,
    tuners: Vec<Autotuner>,
    tuner_cache: Vec<Option<SlotCache>>,
    class_completions: Vec<u64>,
    /// Per-tenant retry token buckets (empty when retries are off).
    retry_budgets: Vec<RetryBudget>,
    /// Jitter substream for retry backoff — the fault plan's dedicated
    /// stream ([`FaultPlan::jitter_rng`]), so serve-tier retries share
    /// the scheduler tier's replay-stability contract.
    retry_rng: everest_faults::DetRng,
    /// AIMD concurrency limiter, when enabled.
    limiter: Option<AimdLimiter>,
    /// Brownout ladder, when enabled.
    brownout: Option<BrownoutController>,
    /// Per-class windows of winning-leg service times feeding the
    /// hedge delay's p95 estimate.
    hedge_windows: Vec<LatencyWindow>,
    /// Tenants a tier-3 brownout sheds at the door (strictly lowest
    /// weight; all-false when every tenant shares one weight).
    lowest_weight: Vec<bool>,
    /// The batch ceiling the tuner (or config) chose per class, before
    /// any brownout cap. Kept so recovery restores the chosen ceiling.
    chosen_batch: Vec<usize>,
    /// Batches currently executing (primary legs; hedge duplicates do
    /// not count — the limiter bounds admitted work, not copies).
    inflight_count: usize,
    metrics: ServeMetrics,
    /// Partition-tolerant membership + shard leases, when enabled.
    membership: Option<ClusterController>,
    /// `cluster.*` instruments, present exactly when `membership` is.
    cluster_metrics: Option<ClusterMetrics>,
    /// Last depth published to the `serve.queue_depth` gauge; the
    /// store is skipped while the depth is unchanged.
    last_depth: usize,
    /// Dispatch scratch (reused across pumps; no per-batch allocation).
    scratch_idle: Vec<usize>,
    scratch_admitted: Vec<usize>,
    /// Gossip scratch: per-node crash flags handed to the membership
    /// tick (reused; no per-round allocation).
    scratch_crashed: Vec<bool>,
    plan: &'a FaultPlan,
    outcome: ServeOutcome,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a ServeConfig, plan: &'a FaultPlan, registry: Arc<Registry>) -> Sim<'a> {
        assert_eq!(
            cfg.classes.len(),
            cfg.batch.len(),
            "one batch policy per kernel class"
        );
        assert!(cfg.nodes > 0, "serving needs at least one node");
        assert!(!cfg.tenants.is_empty(), "serving needs at least one tenant");
        let fpga_nodes = cfg.nodes / 2;
        let cluster = Cluster::everest(cfg.nodes - fpga_nodes, fpga_nodes, cfg.cores);
        let nodes: Vec<NodeState> = cluster
            .nodes
            .iter()
            .map(|spec| NodeState {
                fpga: spec.fpga.is_some(),
                crashed: false,
                free_at_us: 0.0,
                current: None,
                breaker: CircuitBreaker::new(cfg.breaker),
                slow: Vec::new(),
                link: Vec::new(),
                creep: None,
            })
            .collect();
        let weights: Vec<f64> = cfg.tenants.iter().map(|t| t.weight).collect();
        let monitor = HealthMonitor::new(cfg.nodes, cfg.health.clone(), cfg.seed, registry.clone());
        let tuners = cfg
            .classes
            .iter()
            .zip(&cfg.batch)
            .map(|(class, policy)| {
                Self::class_tuner(class, policy, &cluster, fpga_nodes > 0, &registry)
            })
            .collect();
        let arrivals = ArrivalTrace::synthesize(
            cfg.seed,
            &cfg.tenants,
            &cfg.classes,
            cfg.horizon_us,
            cfg.offered_rps,
        )
        .into_requests();
        let outcome = ServeOutcome {
            offered: 0,
            admitted: 0,
            completed: 0,
            failed: 0,
            shed_rate_limited: 0,
            shed_queue_full: 0,
            shed_static: 0,
            shed_overloaded: 0,
            shed_brownout: 0,
            shed_partitioned: 0,
            shed_deadline: 0,
            slo_violations: 0,
            retries: 0,
            retry_denied: 0,
            hedges: 0,
            hedge_wins: 0,
            hedge_cancelled: 0,
            hedge_denied: 0,
            brownout_transitions: 0,
            brownout_peak_tier: 0,
            breaker_opens: 0,
            probes: 0,
            gossip_rounds: 0,
            suspects: 0,
            confirms: 0,
            refutations: 0,
            failovers: 0,
            degraded_grants: 0,
            partition_orphans: 0,
            fenced_batches: 0,
            cluster_epoch: 0,
            retunes: 0,
            tenants: cfg
                .tenants
                .iter()
                .map(|t| TenantOutcome {
                    name: t.name.clone(),
                    weight: t.weight,
                    offered: 0,
                    admitted: 0,
                    completed: 0,
                    shed: 0,
                    failed: 0,
                    retried: 0,
                })
                .collect(),
            batches: Vec::new(),
            latencies_us: Vec::new(),
            horizon_us: cfg.horizon_us,
            end_us: 0.0,
            final_max_batch: cfg.batch.iter().map(|p| p.max_batch).collect(),
        };
        let metrics = ServeMetrics::new(&registry);
        let membership = cfg
            .cluster
            .map(|c| ClusterController::new(c, cfg.nodes, plan));
        let cluster_metrics = cfg.cluster.map(|_| ClusterMetrics::new(&registry));
        let retry_budgets: Vec<RetryBudget> = match &cfg.lifecycle.retry {
            Some(retry) => cfg
                .tenants
                .iter()
                .map(|_| RetryBudget::new(retry))
                .collect(),
            None => Vec::new(),
        };
        let hedge_window_cap = cfg.lifecycle.hedge.as_ref().map_or(1, |h| h.window);
        // Tier-3 brownout sheds the strictly-lowest-weight tenants;
        // when every tenant shares one weight there is no "lowest" to
        // sacrifice and the tier-3 door stays open.
        let min_weight = cfg
            .tenants
            .iter()
            .map(|t| t.weight)
            .fold(f64::INFINITY, f64::min);
        let max_weight = cfg
            .tenants
            .iter()
            .map(|t| t.weight)
            .fold(f64::NEG_INFINITY, f64::max);
        let lowest_weight = cfg
            .tenants
            .iter()
            .map(|t| max_weight > min_weight && t.weight <= min_weight)
            .collect();
        Sim {
            cfg,
            cluster,
            registry,
            queue: EventQueue::with_capacity(64 + plan.len()),
            arrivals,
            cursor: 0,
            max_sched_us: 0.0,
            admission: AdmissionController::new(&cfg.tenants, &cfg.classes, &cfg.admission),
            wfq: WeightedFairQueue::new(&weights),
            batcher: DynamicBatcher::new(&cfg.batch),
            nodes,
            inflight: Vec::new(),
            timeout_tokens: Vec::new(),
            monitor,
            tuners,
            tuner_cache: vec![None; cfg.classes.len()],
            class_completions: vec![0; cfg.classes.len()],
            retry_budgets,
            retry_rng: plan.jitter_rng(),
            limiter: cfg
                .lifecycle
                .limiter
                .clone()
                .map(|l| AimdLimiter::new(l).with_floor(cfg.nodes.max(1))),
            brownout: cfg.lifecycle.brownout.clone().map(BrownoutController::new),
            hedge_windows: cfg
                .classes
                .iter()
                .map(|_| LatencyWindow::new(hedge_window_cap))
                .collect(),
            lowest_weight,
            chosen_batch: cfg.batch.iter().map(|p| p.max_batch).collect(),
            inflight_count: 0,
            metrics,
            membership,
            cluster_metrics,
            last_depth: usize::MAX,
            scratch_idle: Vec::with_capacity(cfg.nodes),
            scratch_admitted: Vec::with_capacity(cfg.nodes),
            scratch_crashed: Vec::with_capacity(cfg.nodes),
            plan,
            outcome,
        }
    }

    /// Design-time operating points for one class: batch sizes in
    /// powers of two up to the configured ceiling, expected latency =
    /// half the wait window plus batch service, expected per-request
    /// cost = service amortised over the batch. The tuner minimises
    /// per-request cost subject to the class deadline.
    fn class_tuner(
        class: &KernelClass,
        policy: &BatchPolicy,
        cluster: &Cluster,
        has_fpga: bool,
        registry: &Arc<Registry>,
    ) -> Autotuner {
        let mut tuner = Autotuner::new().with_registry(registry.clone());
        let mut sizes = Vec::new();
        let mut b = 1;
        while b < policy.max_batch {
            sizes.push(b);
            b *= 2;
        }
        sizes.push(policy.max_batch);
        for &n in &sizes {
            let compute = if has_fpga {
                class.fpga_batch_us(n)
            } else {
                class.cpu_batch_us(n)
            };
            let service = compute + cluster.transfer_us(class.payload_bytes * n as u64);
            let wait = if n <= 1 {
                0.0
            } else {
                0.5 * policy.max_wait_us
            };
            tuner.add_point(
                OperatingPoint::new(config([("batch", n as i64)]))
                    .expect("latency_us", wait + service)
                    .expect("per_request_us", service / n as f64),
            );
        }
        tuner.set_objective(Objective::minimize("per_request_us"));
        tuner.add_constraint(Constraint::le("latency_us", class.deadline_us));
        tuner
    }

    /// Get-or-grow a dense `Option` slot, used for the by-batch-id
    /// side tables (batcher ids are assigned densely from zero).
    fn slot<T>(table: &mut Vec<Option<T>>, id: u64) -> &mut Option<T> {
        let id = id as usize;
        if table.len() <= id {
            table.resize_with(id + 1, || None);
        }
        &mut table[id]
    }

    fn push_event(&mut self, at_us: f64, kind: EventKind) -> EventToken {
        self.max_sched_us = self.max_sched_us.max(at_us);
        self.queue.push(at_us, kind)
    }

    fn run(mut self) -> ServeOutcome {
        for (index, fault) in self.plan.faults().iter().enumerate() {
            self.push_event(fault.at_us, EventKind::Fault(index));
        }
        if let Some(ctrl) = &self.membership {
            let period = ctrl.period_us();
            self.push_event(period, EventKind::GossipRound);
        }
        if self.cfg.autotune {
            for class in 0..self.cfg.classes.len() {
                self.retune(class, 0.0);
            }
        }
        let mut now = 0.0_f64;
        loop {
            // Merge the arrival cursor against the event queue;
            // arrivals win timestamp ties (they were pushed first in
            // the single-heap design, so they carried the lowest seqs).
            let arrival_due = self.cursor < self.arrivals.len()
                && self
                    .queue
                    .peek_time()
                    .is_none_or(|t| self.arrivals[self.cursor].arrival_us <= t);
            if arrival_due {
                let request = self.arrivals[self.cursor];
                self.cursor += 1;
                now = now.max(request.arrival_us);
                if !self.handle_arrival(request, now) {
                    // Shed at the door: no queue, batcher or node state
                    // changed, so the pump below would run straight to
                    // its entry fixed point. Skipping it here keeps the
                    // (dominant, at saturation) shed path free of the
                    // pull/dispatch scan. The one time-dependent admit
                    // condition — a breaker cooldown expiring — is
                    // re-checked at the next state-changing event.
                    continue;
                }
            } else if let Some((at_us, kind)) = self.queue.pop() {
                now = now.max(at_us);
                match kind {
                    EventKind::BatchTimeout { class, batch } => {
                        *Self::slot(&mut self.timeout_tokens, batch) = None;
                        self.batcher.expire(class, batch, now);
                    }
                    EventKind::Completion { batch, hedged } => {
                        self.handle_completion(batch, hedged, now);
                    }
                    EventKind::Fault(index) => self.handle_fault(index, now),
                    EventKind::HedgeTimer { batch } => self.handle_hedge_timer(batch, now),
                    EventKind::Retry(request) => self.handle_retry(request),
                    EventKind::GossipRound => self.handle_gossip(now),
                }
            } else {
                break;
            }
            self.pump(now);
            let depth = self.queue_depth();
            if depth != self.last_depth {
                self.last_depth = depth;
                self.metrics.queue_depth.set(depth as f64);
            }
        }
        debug_assert!(self.wfq.is_empty(), "fair queues drained");
        debug_assert_eq!(self.batcher.pending(), 0, "batcher drained");
        debug_assert!(
            self.inflight.iter().all(Option::is_none),
            "no work in flight"
        );
        debug_assert_eq!(self.inflight_count, 0, "inflight count drained");
        if let Some(ctrl) = &self.membership {
            let swim = ctrl.swim_stats();
            let lease = ctrl.lease_stats();
            self.outcome.gossip_rounds = swim.rounds;
            self.outcome.suspects = swim.suspects;
            self.outcome.confirms = swim.confirms;
            self.outcome.refutations = swim.refutations;
            self.outcome.failovers = lease.failovers;
            self.outcome.degraded_grants = lease.degraded_grants;
            self.outcome.cluster_epoch = ctrl.fencing_epoch();
        }
        self.flush_metrics();
        self.outcome.end_us = now.max(self.max_sched_us).max(self.cfg.horizon_us);
        self.outcome.final_max_batch = (0..self.cfg.classes.len())
            .map(|c| self.batcher.max_batch(c))
            .collect();
        self.outcome
    }

    fn queue_depth(&self) -> usize {
        self.wfq.len() + self.batcher.pending()
    }

    /// Publishes the counters whose totals mirror [`ServeOutcome`]
    /// fields exactly. Publishing once after the drain instead of
    /// incrementing per request keeps the final registry values
    /// identical while dropping several atomic adds from every
    /// arrival and completion. `serve.faults` (no outcome mirror) and
    /// the histograms are still recorded at event time.
    fn flush_metrics(&self) {
        let o = &self.outcome;
        self.metrics.requests_offered.add(o.offered);
        self.metrics.requests_admitted.add(o.admitted);
        self.metrics.requests_completed.add(o.completed);
        self.metrics.requests_shed.add(o.shed_total());
        self.metrics.requests_failed.add(o.failed);
        self.metrics.shed_reason[ShedReason::RateLimited.index()].add(o.shed_rate_limited);
        self.metrics.shed_reason[ShedReason::QueueFull.index()].add(o.shed_queue_full);
        self.metrics.shed_reason[ShedReason::DeadlineLapsed.index()].add(o.shed_deadline);
        self.metrics.shed_reason[ShedReason::StaticallyInfeasible.index()].add(o.shed_static);
        self.metrics.shed_reason[ShedReason::Overloaded.index()].add(o.shed_overloaded);
        self.metrics.shed_reason[ShedReason::Brownout.index()].add(o.shed_brownout);
        self.metrics.shed_reason[ShedReason::PartitionedAway.index()].add(o.shed_partitioned);
        self.metrics.retry_attempts.add(o.retries);
        self.metrics.retry_denied.add(o.retry_denied);
        self.metrics.hedge_launched.add(o.hedges);
        self.metrics.hedge_wins.add(o.hedge_wins);
        self.metrics.hedge_cancelled.add(o.hedge_cancelled);
        self.metrics.hedge_denied.add(o.hedge_denied);
        self.metrics
            .brownout_transitions
            .add(o.brownout_transitions);
        self.metrics.slo_violations.add(o.slo_violations);
        self.metrics.batches_dispatched.add(o.batches.len() as u64);
        self.metrics.probes.add(o.probes);
        self.metrics.breaker_opens.add(o.breaker_opens);
        self.metrics.retunes.add(o.retunes);
        if let (Some(cm), Some(ctrl)) = (&self.cluster_metrics, &self.membership) {
            let swim = ctrl.swim_stats();
            let lease = ctrl.lease_stats();
            cm.gossip_rounds.add(swim.rounds);
            cm.probes.add(swim.probes);
            cm.probe_failures.add(swim.probe_failures);
            cm.suspects.add(swim.suspects);
            cm.confirms.add(swim.confirms);
            cm.refutations.add(swim.refutations);
            cm.lease_renewals.add(lease.renewals);
            cm.failovers.add(lease.failovers);
            cm.degraded_grants.add(lease.degraded_grants);
            cm.orphaned_requests.add(o.partition_orphans);
            cm.fenced_batches.add(o.fenced_batches);
            cm.fencing_epoch.set(ctrl.fencing_epoch() as f64);
        }
    }

    // -- arrivals ------------------------------------------------------

    /// Returns `true` when the request was admitted (and so changed
    /// queue state); `false` when it was shed at the door.
    fn handle_arrival(&mut self, request: Request, now: f64) -> bool {
        self.outcome.offered += 1;
        self.outcome.tenants[request.tenant].offered += 1;
        // A tier-3 brownout sheds the lowest-weight tenants before any
        // stateful admission check: the sacrifice is a policy fact, so
        // it burns neither a token nor a queue slot.
        if self.lowest_weight[request.tenant]
            && self
                .brownout
                .as_ref()
                .is_some_and(BrownoutController::shed_lowest_weight)
        {
            self.shed(&request, ShedReason::Brownout);
            return false;
        }
        // No live lease over the tenant's shard means no node is
        // authorized to execute its work: refuse at the door, typed,
        // before a token or queue slot is spent. Availability returns
        // when the shard fails over (or degraded mode re-grants it).
        if self
            .membership
            .as_ref()
            .is_some_and(|c| c.tenant_owner(request.tenant, now).is_none())
        {
            self.shed(&request, ShedReason::PartitionedAway);
            return false;
        }
        let depth = self.queue_depth();
        let overload_cap = self.limiter.as_ref().map(AimdLimiter::door_cap);
        match self
            .admission
            .admit(request.tenant, request.class, now, depth, overload_cap)
        {
            Ok(()) => {
                self.outcome.admitted += 1;
                self.outcome.tenants[request.tenant].admitted += 1;
                self.wfq.push(request);
                true
            }
            Err(reason) => {
                self.shed(&request, reason);
                false
            }
        }
    }

    fn shed(&mut self, request: &Request, reason: ShedReason) {
        match reason {
            ShedReason::RateLimited => self.outcome.shed_rate_limited += 1,
            ShedReason::QueueFull => self.outcome.shed_queue_full += 1,
            ShedReason::StaticallyInfeasible => self.outcome.shed_static += 1,
            ShedReason::Overloaded => self.outcome.shed_overloaded += 1,
            ShedReason::Brownout => self.outcome.shed_brownout += 1,
            ShedReason::PartitionedAway => self.outcome.shed_partitioned += 1,
            ShedReason::DeadlineLapsed => self.outcome.shed_deadline += 1,
        }
        self.outcome.tenants[request.tenant].shed += 1;
    }

    fn fail(&mut self, request: &Request) {
        self.outcome.failed += 1;
        self.outcome.tenants[request.tenant].failed += 1;
    }

    // -- the pump: queues → batcher → nodes ----------------------------

    /// Work-conserving transfer: shed lapsed requests, keep the batcher
    /// stocked (bounded so WFQ backlog builds queue-depth backpressure
    /// instead of hiding inside batches), dispatch ready batches onto
    /// idle breaker-admitted nodes. Runs to a fixed point at each event.
    fn pump(&mut self, now: f64) {
        if self.nodes.iter().all(|n| n.crashed) {
            self.drain_all_failed(now);
            return;
        }
        loop {
            let pulled = self.pull(now);
            let dispatched = self.dispatch(now);
            if pulled == 0 && dispatched == 0 {
                break;
            }
        }
    }

    fn pull(&mut self, now: f64) -> usize {
        let mut pulled = 0;
        while self.batcher.ready_len() < self.nodes.len() {
            let Some(request) = self.wfq.pop() else {
                break;
            };
            pulled += 1;
            let class = request.class;
            if now > request.arrival_us + self.cfg.classes[class].deadline_us {
                self.shed(&request, ShedReason::DeadlineLapsed);
                continue;
            }
            match self.batcher.offer(request, now) {
                OfferOutcome::Opened(batch) => {
                    let deadline = now + self.batcher.max_wait_us(class);
                    let token = self.push_event(deadline, EventKind::BatchTimeout { class, batch });
                    *Self::slot(&mut self.timeout_tokens, batch) = Some(token);
                }
                OfferOutcome::Closed(batch) => {
                    // Closed on size: the wait-timeout (if one was ever
                    // scheduled) can no longer matter — drop it from
                    // the queue instead of popping a tombstone later.
                    if let Some(token) = Self::slot(&mut self.timeout_tokens, batch).take() {
                        self.queue.cancel(token);
                    }
                }
                OfferOutcome::Joined => {}
            }
        }
        pulled
    }

    fn dispatch(&mut self, now: f64) -> usize {
        let mut dispatched = 0;
        while self.batcher.ready_len() > 0 {
            // The AIMD limiter gates dispatch *ahead* of the breakers:
            // when observed latency says the cluster is saturated,
            // ready batches wait even though idle nodes exist.
            if self
                .limiter
                .as_ref()
                .is_some_and(|l| self.inflight_count >= l.limit())
            {
                break;
            }
            self.scratch_idle.clear();
            self.scratch_admitted.clear();
            for index in 0..self.nodes.len() {
                let node = &self.nodes[index];
                if node.crashed || node.current.is_some() || node.free_at_us > now {
                    continue;
                }
                // Membership gates dispatch ahead of the breakers: a
                // node the coordinator cannot see Alive (or a
                // component with neither quorum nor the degraded
                // escape hatch) takes no new work, full stop — the
                // availability-beats-isolation override below never
                // reaches across a partition.
                if self
                    .membership
                    .as_ref()
                    .is_some_and(|c| !c.dispatchable(index))
                {
                    continue;
                }
                let admitted = node.breaker.peek(now) != BreakerAdmission::Refuse;
                self.scratch_idle.push(index);
                if admitted {
                    self.scratch_admitted.push(index);
                }
            }
            if self.scratch_idle.is_empty() {
                break;
            }
            let use_idle = if self.scratch_admitted.is_empty() {
                // Every idle node is breaker-refused. If some other
                // non-crashed node is still working, wait for it; if the
                // whole surviving cluster is refused, availability beats
                // isolation — dispatch anyway rather than deadlock.
                let busy_exists = self
                    .nodes
                    .iter()
                    .any(|n| !n.crashed && (n.current.is_some() || n.free_at_us > now));
                if busy_exists {
                    break;
                }
                true
            } else {
                false
            };
            let batch = self.batcher.pop_ready().expect("ready batch");
            let size = batch.requests.len();
            let pool = if use_idle {
                &self.scratch_idle
            } else {
                &self.scratch_admitted
            };
            let node = pool
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    self.healthy_service_us(a, batch.class, size)
                        .total_cmp(&self.healthy_service_us(b, batch.class, size))
                        .then(a.cmp(&b))
                })
                .expect("pool non-empty");
            let probe = match self.nodes[node].breaker.admit(now) {
                BreakerAdmission::Probe => true,
                // `Refuse` only on the availability-override path.
                BreakerAdmission::Admit | BreakerAdmission::Refuse => false,
            };
            if probe {
                self.outcome.probes += 1;
            }
            let expected = self.healthy_service_us(node, batch.class, size);
            let actual = self.actual_service_us(node, batch.class, size, now);
            let finish = now + actual;
            self.nodes[node].free_at_us = finish;
            self.nodes[node].current = Some(batch.id);
            for request in &batch.requests {
                self.metrics.queue_wait_us.record(now - request.arrival_us);
            }
            self.metrics.batch_size.record(size as f64);
            self.outcome.batches.push(BatchRecord {
                id: batch.id,
                class: batch.class,
                node,
                size,
                start_us: now,
                finish_us: finish,
                probe,
                failed: false,
                hedge: false,
                cancelled: false,
                epoch: self
                    .membership
                    .as_ref()
                    .map_or(0, ClusterController::fencing_epoch),
                fenced: false,
            });
            let completion = self.push_event(
                finish,
                EventKind::Completion {
                    batch: batch.id,
                    hedged: false,
                },
            );
            let hedge_timer = if self.hedge_eligible(batch.class, probe) {
                let delay = self.hedge_delay_us(batch.class, expected);
                Some(self.push_event(now + delay, EventKind::HedgeTimer { batch: batch.id }))
            } else {
                None
            };
            *Self::slot(&mut self.inflight, batch.id) = Some(Inflight {
                node,
                class: batch.class,
                requests: batch.requests,
                start_us: now,
                expected_us: expected,
                actual_us: actual,
                probe,
                fpga_path: self.nodes[node].fpga,
                record: self.outcome.batches.len() - 1,
                completion,
                hedge: None,
                hedge_timer,
            });
            self.inflight_count += 1;
            dispatched += 1;
        }
        dispatched
    }

    /// Whether a freshly dispatched batch gets a hedge timer: hedging
    /// enabled, the class an interactive latency-critical one, a
    /// second node exists to duplicate onto, the batch is not a
    /// breaker probe, and no brownout tier has disabled hedging.
    ///
    /// The kind match is deliberately exhaustive (no `_` arm): a new
    /// [`ClassKind`] forces an explicit hedging decision here.
    fn hedge_eligible(&self, class: usize, probe: bool) -> bool {
        let spec = &self.cfg.classes[class];
        let kind_hedges = match spec.kind {
            ClassKind::Interactive => spec.latency_critical,
            // Throughput work never races duplicates: hedging spends
            // capacity to buy tail latency, which batch analytics and
            // lowered queries do not pay for.
            ClassKind::Analytics | ClassKind::Query => false,
        };
        self.cfg.lifecycle.hedge.is_some()
            && !probe
            && self.nodes.len() > 1
            && kind_hedges
            && self
                .brownout
                .as_ref()
                .is_none_or(BrownoutController::hedging_enabled)
    }

    /// Hedge delay for a class: the observed p95 of winning-leg
    /// service times once the window is warm, else the dispatcher's
    /// expected service time scaled by the cold-start factor.
    fn hedge_delay_us(&self, class: usize, expected_us: f64) -> f64 {
        let hedge = self
            .cfg
            .lifecycle
            .hedge
            .as_ref()
            .expect("hedge_delay_us requires hedging enabled");
        let window = &self.hedge_windows[class];
        let base = if window.len() >= hedge.min_samples {
            window.quantile(0.95).unwrap_or(expected_us)
        } else {
            expected_us * hedge.cold_start_factor
        };
        (base * hedge.delay_factor).max(1.0)
    }

    /// The dispatcher's placement model: healthy service time for a
    /// batch on a node. Deliberately gray-blind — slowdowns, lossy
    /// links and VF creep never appear here, only in actual timings;
    /// catching the divergence is the health monitor's job.
    fn healthy_service_us(&self, node: usize, class: usize, size: usize) -> f64 {
        let class = &self.cfg.classes[class];
        let compute = if self.nodes[node].fpga {
            class.fpga_batch_us(size)
        } else {
            class.cpu_batch_us(size)
        };
        compute + self.cluster.transfer_us(class.payload_bytes * size as u64)
    }

    /// What the batch actually costs, with every gray window applied.
    fn actual_service_us(&self, node: usize, class: usize, size: usize, start: f64) -> f64 {
        let spec = &self.cfg.classes[class];
        let state = &self.nodes[node];
        let slow = Self::window_factor(&state.slow, start);
        let link = Self::window_factor(&state.link, start);
        let compute = if state.fpga {
            spec.fpga_batch_us(size) * self.creep_factor(node, start)
        } else {
            spec.cpu_batch_us(size)
        };
        compute * slow + self.cluster.transfer_us(spec.payload_bytes * size as u64) * link
    }

    fn window_factor(windows: &[(f64, f64, f64)], t: f64) -> f64 {
        windows
            .iter()
            .filter(|(from, to, _)| t >= *from && t < *to)
            .map(|(_, _, factor)| *factor)
            .fold(1.0, f64::max)
    }

    fn creep_factor(&self, node: usize, t: f64) -> f64 {
        match self.nodes[node].creep {
            Some((onset, per_ms)) if t > onset => 1.0 + per_ms * (t - onset) / 1_000.0,
            _ => 1.0,
        }
    }

    // -- completions ---------------------------------------------------

    fn handle_completion(&mut self, batch: u64, hedged: bool, now: f64) {
        let Some(mut inflight) = Self::slot(&mut self.inflight, batch).take() else {
            // A fault already failed the batch and cancelled its
            // completion; only a reused slot can land here.
            return;
        };
        if let Some(token) = inflight.hedge_timer.take() {
            self.queue.cancel(token);
        }
        // Resolve the hedge race. Four cases: the duplicate won (cancel
        // the primary, promote the duplicate's leg), the primary won
        // with the duplicate still running (cancel the duplicate), a
        // promoted duplicate completed as the only surviving leg
        // (`hedged` but no duplicate left), or there never was a race.
        if hedged && inflight.hedge.is_some() {
            let leg = inflight
                .hedge
                .take()
                .expect("checked hedge leg present above");
            self.queue.cancel(inflight.completion);
            self.nodes[inflight.node].current = None;
            self.nodes[inflight.node].free_at_us = now;
            self.outcome.batches[inflight.record].cancelled = true;
            self.outcome.batches[inflight.record].finish_us = now;
            self.outcome.hedge_wins += 1;
            self.outcome.hedge_cancelled += 1;
            inflight.node = leg.node;
            inflight.start_us = leg.start_us;
            inflight.expected_us = leg.expected_us;
            inflight.actual_us = leg.actual_us;
            inflight.fpga_path = leg.fpga_path;
            inflight.record = leg.record;
        } else if let Some(leg) = inflight.hedge.take() {
            self.queue.cancel(leg.completion);
            self.nodes[leg.node].current = None;
            self.nodes[leg.node].free_at_us = now;
            self.outcome.batches[leg.record].cancelled = true;
            self.outcome.batches[leg.record].finish_us = now;
            self.outcome.hedge_cancelled += 1;
        }
        let node = inflight.node;
        self.nodes[node].current = None;
        let mut latency_sum = 0.0;
        let mut latency_max = 0.0_f64;
        for request in &inflight.requests {
            let latency = now - request.arrival_us;
            latency_sum += latency;
            latency_max = latency_max.max(latency);
            self.outcome.completed += 1;
            self.outcome.tenants[request.tenant].completed += 1;
            self.outcome.latencies_us.push(latency);
            self.metrics.latency_us.record(latency);
            if latency > self.cfg.classes[request.class].deadline_us {
                self.outcome.slo_violations += 1;
            }
        }
        // Completions earn retry-budget refill: a tenant that keeps
        // finishing work keeps the right to retry its failures.
        if !self.retry_budgets.is_empty() {
            for request in &inflight.requests {
                self.retry_budgets[request.tenant].on_success();
            }
        }
        let service_us = now - inflight.start_us;
        if self.cfg.lifecycle.hedge.is_some() {
            self.hedge_windows[inflight.class].push(service_us);
        }
        if let Some(limiter) = self.limiter.as_mut() {
            // The limiter watches end-to-end latency (queue wait
            // included), not bare service time: under overload the
            // deadline is lost in the queue, and that is exactly the
            // signal that must pull the door in.
            let deadline = self.cfg.classes[inflight.class].deadline_us;
            if limiter.on_batch(latency_max, deadline) {
                self.metrics.limiter_limit.set(limiter.limit() as f64);
            }
        }
        self.inflight_count -= 1;
        let size = inflight.requests.len();
        let inflation = if inflight.expected_us > 0.0 {
            inflight.actual_us / inflight.expected_us
        } else {
            1.0
        };
        self.monitor.record_task(node, inflation, now);
        if inflight.fpga_path {
            self.monitor
                .record_fpga(node, self.creep_factor(node, inflight.start_us), now);
        }
        if inflight.probe {
            if inflation <= self.cfg.health.straggler_ratio {
                self.nodes[node].breaker.probe_succeeded();
                self.registry
                    .event("serve.breaker_close", format!("node{node} probe healthy"));
            } else {
                self.nodes[node].breaker.probe_failed(now);
                self.outcome.breaker_opens += 1;
                self.registry
                    .event("serve.breaker_open", format!("node{node} probe still slow"));
            }
        }
        self.apply_verdicts(now);
        // Feed the tuner what the active operating point achieved,
        // through slots resolved once per (class, active-ceiling).
        let class = inflight.class;
        let cache = self.tuner_slots(class);
        self.tuners[class].observe_slot(cache.latency, latency_sum / size as f64);
        self.tuners[class].observe_slot(cache.per_request, inflight.actual_us / size as f64);
        self.class_completions[class] += 1;
        if self.cfg.autotune && self.class_completions[class].is_multiple_of(self.cfg.retune_every)
        {
            self.retune(class, now);
        }
        // Probe results and verdicts above may have moved breakers:
        // re-evaluate the brownout tier at this health edge.
        self.update_brownout(now);
    }

    /// Re-evaluates the brownout ladder against the cluster's current
    /// health (crashed nodes plus any breaker not Closed). On a tier
    /// transition the batch ceilings are re-capped and the change is
    /// published; recovery walks the ladder back down the same way.
    fn update_brownout(&mut self, now: f64) {
        if self.brownout.is_none() {
            return;
        }
        let total = self.nodes.len();
        let unhealthy = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(index, n)| {
                n.crashed
                    || n.breaker.state() != everest_health::BreakerState::Closed
                    || self
                        .membership
                        .as_ref()
                        .is_some_and(|c| c.confirmed_dead(*index))
            })
            .count();
        let transition = self
            .brownout
            .as_mut()
            .and_then(|b| b.observe(unhealthy, total));
        let Some((from, to)) = transition else {
            return;
        };
        self.outcome.brownout_transitions += 1;
        self.outcome.brownout_peak_tier = self.outcome.brownout_peak_tier.max(to);
        self.metrics.brownout_tier.set(f64::from(to));
        self.registry.event(
            "serve.brownout",
            format!("tier {from} -> {to} ({unhealthy}/{total} nodes unhealthy) at={now:.3}"),
        );
        for class in 0..self.cfg.classes.len() {
            self.apply_batch_ceiling(class);
        }
    }

    /// Applies the brownout-capped version of the chosen batch ceiling
    /// to the batcher (the chosen ceiling itself is preserved so a
    /// recovery restores it).
    fn apply_batch_ceiling(&mut self, class: usize) {
        let chosen = self.chosen_batch[class];
        let applied = match self.brownout.as_ref() {
            Some(b) => b.batch_ceiling(chosen),
            None => chosen,
        };
        if applied != self.batcher.max_batch(class) {
            self.batcher.set_max_batch(class, applied);
        }
    }

    /// Resolved tuner slots for a class's *active* operating point.
    /// Cache hit while the batch ceiling is unchanged; a retune that
    /// moves the ceiling misses once and re-resolves.
    fn tuner_slots(&mut self, class: usize) -> SlotCache {
        let active = self.batcher.max_batch(class);
        if let Some(cache) = self.tuner_cache[class] {
            if cache.batch == active {
                return cache;
            }
        }
        let key = config([("batch", active as i64)]);
        let cache = SlotCache {
            batch: active,
            latency: self.tuners[class].resolve_slot(&key, "latency_us"),
            per_request: self.tuners[class].resolve_slot(&key, "per_request_us"),
        };
        self.tuner_cache[class] = Some(cache);
        cache
    }

    fn apply_verdicts(&mut self, now: f64) {
        for verdict in self.monitor.drain_new() {
            let node = verdict.node;
            if node >= self.nodes.len() || self.nodes[node].crashed {
                continue;
            }
            if self.nodes[node].breaker.state() == everest_health::BreakerState::Closed {
                self.nodes[node].breaker.trip(now);
                self.outcome.breaker_opens += 1;
                self.registry.event(
                    "serve.breaker_open",
                    format!("node{node} convicted: {:?}", verdict.kind),
                );
            }
        }
    }

    fn retune(&mut self, class: usize, now: f64) {
        self.outcome.retunes += 1;
        let chosen = match self.tuners[class].best(&Features::new()) {
            Ok(best) => match best.get("batch") {
                Some(KnobValue::Int(n)) => (*n).max(1) as usize,
                _ => 1,
            },
            // Nothing meets the deadline: serve unbatched, the
            // lowest-latency point available.
            Err(_) => 1,
        };
        if chosen != self.chosen_batch[class] {
            self.chosen_batch[class] = chosen;
            self.registry.event(
                "serve.retune",
                format!(
                    "class={} batch={} at={:.3}",
                    self.cfg.classes[class].name, chosen, now
                ),
            );
        }
        // The batcher gets the brownout-capped view of the choice;
        // without brownout this is the choice itself, preserving the
        // pre-lifecycle behaviour exactly.
        self.apply_batch_ceiling(class);
    }

    // -- faults --------------------------------------------------------

    fn handle_fault(&mut self, index: usize, now: f64) {
        let spec = self.plan.faults()[index].clone();
        let node = spec.node;
        if node >= self.nodes.len() {
            return;
        }
        self.metrics.faults.add(1);
        self.registry.event("serve.fault", spec.describe());
        match spec.kind {
            FaultKind::NodeCrash => {
                self.nodes[node].crashed = true;
                self.nodes[node].fpga = false;
                self.fail_current(node, now);
            }
            FaultKind::LinkDegrade {
                factor,
                duration_us,
            }
            | FaultKind::GrayLink {
                factor,
                duration_us,
            } => {
                self.nodes[node].link.push((now, now + duration_us, factor));
            }
            FaultKind::SlowNode {
                factor,
                duration_us,
            } => {
                self.nodes[node].slow.push((now, now + duration_us, factor));
            }
            FaultKind::VfCreep { per_ms } => {
                if self.nodes[node].creep.is_none() {
                    self.nodes[node].creep = Some((now, per_ms));
                }
            }
            FaultKind::VfUnplug { .. } | FaultKind::PartialReconfigFail => {
                // Which leg of the current batch runs on this node?
                // Only an FPGA-path leg is lost with the VF.
                let lost_inflight = self.nodes[node].fpga
                    && self.nodes[node]
                        .current
                        .and_then(|b| self.inflight.get(b as usize))
                        .and_then(|slot| slot.as_ref())
                        .map(|i| {
                            if i.node == node {
                                i.fpga_path
                            } else {
                                i.hedge.as_ref().is_some_and(|leg| leg.fpga_path)
                            }
                        })
                        .unwrap_or(false);
                self.nodes[node].fpga = false;
                if lost_inflight {
                    self.fail_current(node, now);
                }
            }
            FaultKind::DmaTimeout | FaultKind::TransientKernelError | FaultKind::MemoryEcc => {
                self.fail_current(node, now);
            }
            FaultKind::PartitionSym { .. }
            | FaultKind::PartitionAsym { .. }
            | FaultKind::MsgDelay { .. }
            | FaultKind::MsgLoss { .. } => {
                // Network faults act on the membership layer's message
                // model (`everest_cluster::NetModel`), not on any one
                // node's compute or link state. The gossip rounds
                // observe the cut on their own cadence; here there is
                // nothing to apply.
            }
        }
        // Crashes (and the breaker churn faults cause downstream) move
        // cluster health; re-check the brownout tier at the edge.
        self.update_brownout(now);
    }

    // -- cluster membership --------------------------------------------

    /// One membership round on the virtual clock: probe and merge the
    /// SWIM views, expire suspects, elect the coordinator, renew or
    /// fail over shard leases — then apply the consequences to the
    /// serving tier. A fresh confirm flows into the health pipeline as
    /// an [`VerdictKind::Unreachable`] verdict (same breaker trip and
    /// brownout feed as a gray conviction) and fences the dead node's
    /// in-flight leg. The round reschedules itself while the run still
    /// has arrivals, queued work, in-flight batches or pending events:
    /// the degraded-mode escape hatch guarantees the backlog drains
    /// even under a permanent partition, so this always terminates.
    fn handle_gossip(&mut self, now: f64) {
        if self.membership.is_none() {
            return;
        }
        self.scratch_crashed.clear();
        for node in &self.nodes {
            self.scratch_crashed.push(node.crashed);
        }
        let (tick, period) = {
            let ctrl = self
                .membership
                .as_mut()
                .expect("checked non-None at handler entry");
            (ctrl.tick(now, &self.scratch_crashed), ctrl.period_us())
        };
        for &node in &tick.newly_dead {
            self.registry.event(
                "cluster.member_dead",
                format!("node{node} confirmed unreachable at={now:.3}"),
            );
            // The confirm is health evidence like any other: it rides
            // the monitor's verdict pipeline so the breaker trips and
            // the brownout ladder sees the node exactly as it would a
            // gray conviction.
            self.monitor.flag(VerdictKind::Unreachable, node, now, 1.0);
            self.orphan_node(node, now);
        }
        for &node in &tick.revived {
            self.registry.event(
                "cluster.member_revived",
                format!("node{node} rejoined at={now:.3}"),
            );
        }
        for failover in &tick.failovers {
            self.registry.event(
                "cluster.failover",
                format!(
                    "shard={} from=node{} to=node{} epoch={} degraded={}",
                    failover.shard, failover.from, failover.to, failover.epoch, failover.degraded
                ),
            );
        }
        self.apply_verdicts(now);
        self.update_brownout(now);
        let live = self.cursor < self.arrivals.len()
            || self.queue_depth() > 0
            || self.inflight_count > 0
            || self.queue.peek_time().is_some();
        if live {
            self.push_event(now + period, EventKind::GossipRound);
        }
    }

    /// Fences `node` out of the serving tier after a membership
    /// confirm. A partitioned node is not crashed: the simulation's
    /// completion event for its in-flight leg would still fire, and —
    /// after the shard fails over — would complete the same requests a
    /// new owner may also serve. That is exactly the double execution
    /// the fence exists to prevent, so the leg's completion is
    /// cancelled here (the cancelled event *is* the fence) and the
    /// record marked. A sole surviving leg's requests re-enter the
    /// fair queue: admitted exactly once, terminal exactly once, no
    /// retry budget burned and no attempt charged — the tenant did
    /// nothing wrong.
    fn orphan_node(&mut self, node: usize, now: f64) {
        let Some(batch) = self.nodes[node].current.take() else {
            if !self.nodes[node].crashed {
                self.nodes[node].free_at_us = now;
            }
            return;
        };
        enum OrphanFate {
            /// The sole surviving leg ran on the fenced node:
            /// re-enqueue its requests.
            Requeue,
            /// The primary ran there but a hedge duplicate survives
            /// elsewhere: promote the duplicate.
            PromoteHedge,
            /// Only the hedge duplicate ran there; the primary keeps
            /// running.
            DropHedgeLeg,
            /// The slot was already drained (stale `current`).
            Gone,
        }
        let fate = match Self::slot(&mut self.inflight, batch).as_ref() {
            None => OrphanFate::Gone,
            Some(inflight) if inflight.node != node => OrphanFate::DropHedgeLeg,
            Some(inflight) if inflight.hedge.is_some() => OrphanFate::PromoteHedge,
            Some(_) => OrphanFate::Requeue,
        };
        match fate {
            OrphanFate::Gone => {}
            OrphanFate::DropHedgeLeg => {
                let inflight = Self::slot(&mut self.inflight, batch)
                    .as_mut()
                    .expect("fate checked the slot is live");
                let leg = inflight
                    .hedge
                    .take()
                    .expect("DropHedgeLeg implies the duplicate runs here");
                self.queue.cancel(leg.completion);
                self.outcome.batches[leg.record].fenced = true;
                self.outcome.batches[leg.record].finish_us = now;
                self.outcome.fenced_batches += 1;
            }
            OrphanFate::PromoteHedge => {
                let inflight = Self::slot(&mut self.inflight, batch)
                    .as_mut()
                    .expect("fate checked the slot is live");
                let leg = inflight
                    .hedge
                    .take()
                    .expect("PromoteHedge implies a hedge leg");
                let dead_completion = inflight.completion;
                let dead_record = inflight.record;
                let dead_timer = inflight.hedge_timer.take();
                inflight.node = leg.node;
                inflight.start_us = leg.start_us;
                inflight.expected_us = leg.expected_us;
                inflight.actual_us = leg.actual_us;
                inflight.fpga_path = leg.fpga_path;
                inflight.record = leg.record;
                inflight.completion = leg.completion;
                self.queue.cancel(dead_completion);
                if let Some(token) = dead_timer {
                    self.queue.cancel(token);
                }
                self.outcome.batches[dead_record].fenced = true;
                self.outcome.batches[dead_record].finish_us = now;
                self.outcome.fenced_batches += 1;
            }
            OrphanFate::Requeue => {
                let inflight = Self::slot(&mut self.inflight, batch)
                    .take()
                    .expect("fate checked the slot is live");
                self.queue.cancel(inflight.completion);
                if let Some(token) = inflight.hedge_timer {
                    self.queue.cancel(token);
                }
                self.inflight_count -= 1;
                self.outcome.batches[inflight.record].fenced = true;
                self.outcome.batches[inflight.record].finish_us = now;
                self.outcome.fenced_batches += 1;
                self.outcome.partition_orphans += inflight.requests.len() as u64;
                for request in inflight.requests {
                    self.wfq.push(request);
                }
            }
        }
        if !self.nodes[node].crashed {
            self.nodes[node].free_at_us = now;
        }
    }

    /// Fails whatever leg is executing on `node` right now. A hedged
    /// batch only dies with its *last* surviving leg: losing the
    /// primary promotes the duplicate, losing the duplicate leaves the
    /// primary running, and only a sole leg's death makes the requests
    /// terminal (or retried, when the retry layer is on).
    fn fail_current(&mut self, node: usize, now: f64) {
        let Some(batch) = self.nodes[node].current.take() else {
            if !self.nodes[node].crashed {
                self.nodes[node].free_at_us = now;
            }
            return;
        };
        enum LegFate {
            /// The sole surviving leg died: the batch is over.
            Terminal,
            /// The primary died but the duplicate survives: promote it.
            PrimaryDied,
            /// The duplicate died; the primary keeps running.
            HedgeDied,
            /// The slot was already drained (stale `current`).
            Gone,
        }
        let fate = match Self::slot(&mut self.inflight, batch).as_ref() {
            None => LegFate::Gone,
            Some(inflight) if inflight.node != node => LegFate::HedgeDied,
            Some(inflight) if inflight.hedge.is_some() => LegFate::PrimaryDied,
            Some(_) => LegFate::Terminal,
        };
        match fate {
            LegFate::Gone => {}
            LegFate::PrimaryDied => {
                let inflight = Self::slot(&mut self.inflight, batch)
                    .as_mut()
                    .expect("fate checked the slot is live");
                let leg = inflight
                    .hedge
                    .take()
                    .expect("PrimaryDied implies a hedge leg");
                let dead_completion = inflight.completion;
                let dead_record = inflight.record;
                // A promoted duplicate will not be hedged again.
                let dead_timer = inflight.hedge_timer.take();
                inflight.node = leg.node;
                inflight.start_us = leg.start_us;
                inflight.expected_us = leg.expected_us;
                inflight.actual_us = leg.actual_us;
                inflight.fpga_path = leg.fpga_path;
                inflight.record = leg.record;
                inflight.completion = leg.completion;
                self.queue.cancel(dead_completion);
                if let Some(token) = dead_timer {
                    self.queue.cancel(token);
                }
                self.outcome.batches[dead_record].failed = true;
                self.outcome.batches[dead_record].finish_us = now;
            }
            LegFate::HedgeDied => {
                let inflight = Self::slot(&mut self.inflight, batch)
                    .as_mut()
                    .expect("fate checked the slot is live");
                let leg = inflight
                    .hedge
                    .take()
                    .expect("HedgeDied implies the hedge leg runs here");
                self.queue.cancel(leg.completion);
                self.outcome.batches[leg.record].failed = true;
                self.outcome.batches[leg.record].finish_us = now;
            }
            LegFate::Terminal => {
                let inflight = Self::slot(&mut self.inflight, batch)
                    .take()
                    .expect("fate checked the slot is live");
                self.queue.cancel(inflight.completion);
                if let Some(token) = inflight.hedge_timer {
                    self.queue.cancel(token);
                }
                self.inflight_count -= 1;
                for request in &inflight.requests {
                    self.retry_or_fail(*request, now);
                }
                self.outcome.batches[inflight.record].failed = true;
                self.outcome.batches[inflight.record].finish_us = now;
            }
        }
        if !self.nodes[node].crashed {
            self.nodes[node].free_at_us = now;
        }
    }

    /// A fault took this request's batch. With retries on, an attempt
    /// under the policy cap that can take a budget token is re-enqueued
    /// after seeded backoff; anything else fails terminally.
    fn retry_or_fail(&mut self, request: Request, now: f64) {
        let Some(retry) = self.cfg.lifecycle.retry.as_ref() else {
            self.fail(&request);
            return;
        };
        if request.attempt >= retry.policy.max_retries {
            self.outcome.retry_denied += 1;
            self.fail(&request);
            return;
        }
        let backoff = retry
            .policy
            .backoff_us(request.attempt, &mut self.retry_rng);
        // Deadline-aware: a retry that would re-enter the queue with
        // its deadline already spent can only be shed later — refusing
        // it here keeps doomed work from displacing live requests (and
        // from burning a budget token).
        let doomed =
            now + backoff >= request.arrival_us + self.cfg.classes[request.class].deadline_us;
        if doomed || !self.retry_budgets[request.tenant].try_take() {
            self.outcome.retry_denied += 1;
            self.fail(&request);
            return;
        }
        self.outcome.retries += 1;
        self.outcome.tenants[request.tenant].retried += 1;
        let mut next = request;
        next.attempt += 1;
        self.push_event(now + backoff, EventKind::Retry(next));
    }

    /// A retry's backoff elapsed: the request re-enters the fair queue.
    /// It was admitted once at the door and stays admitted — the
    /// conservation door equation is untouched, and the queue equation
    /// still holds because the retried request ends completed, failed
    /// or deadline-shed like any other queued request.
    fn handle_retry(&mut self, request: Request) {
        self.wfq.push(request);
    }

    /// The hedge delay elapsed with the batch still in flight: launch
    /// a duplicate on the best healthy idle node, if one exists.
    fn handle_hedge_timer(&mut self, batch: u64, now: f64) {
        let (primary_node, class, size) = {
            let Some(inflight) = Self::slot(&mut self.inflight, batch).as_mut() else {
                // Terminal paths cancel their timer; nothing to do.
                return;
            };
            inflight.hedge_timer = None;
            if inflight.hedge.is_some() {
                return;
            }
            (inflight.node, inflight.class, inflight.requests.len())
        };
        // The tier may have climbed past hedging since the timer was
        // scheduled.
        if self.brownout.as_ref().is_some_and(|b| !b.hedging_enabled()) {
            return;
        }
        // A duplicate only helps on a node the breakers fully admit:
        // idle, alive, not the primary's node, and not a probe slot.
        let mut candidate: Option<usize> = None;
        for index in 0..self.nodes.len() {
            let state = &self.nodes[index];
            if index == primary_node
                || state.crashed
                || state.current.is_some()
                || state.free_at_us > now
                || state.breaker.peek(now) != BreakerAdmission::Admit
                || self
                    .membership
                    .as_ref()
                    .is_some_and(|c| !c.dispatchable(index))
            {
                continue;
            }
            let better = match candidate {
                None => true,
                Some(best) => self
                    .healthy_service_us(index, class, size)
                    .total_cmp(&self.healthy_service_us(best, class, size))
                    .is_lt(),
            };
            if better {
                candidate = Some(index);
            }
        }
        let Some(node) = candidate else {
            self.outcome.hedge_denied += 1;
            return;
        };
        let expected = self.healthy_service_us(node, class, size);
        let actual = self.actual_service_us(node, class, size, now);
        let finish = now + actual;
        self.nodes[node].free_at_us = finish;
        self.nodes[node].current = Some(batch);
        let fpga_path = self.nodes[node].fpga;
        self.outcome.batches.push(BatchRecord {
            id: batch,
            class,
            node,
            size,
            start_us: now,
            finish_us: finish,
            probe: false,
            failed: false,
            hedge: true,
            cancelled: false,
            epoch: self
                .membership
                .as_ref()
                .map_or(0, ClusterController::fencing_epoch),
            fenced: false,
        });
        let record = self.outcome.batches.len() - 1;
        let completion = self.push_event(
            finish,
            EventKind::Completion {
                batch,
                hedged: true,
            },
        );
        let inflight = Self::slot(&mut self.inflight, batch)
            .as_mut()
            .expect("slot verified live at the top of the handler");
        inflight.hedge = Some(HedgeLeg {
            node,
            start_us: now,
            expected_us: expected,
            actual_us: actual,
            fpga_path,
            record,
            completion,
        });
        self.outcome.hedges += 1;
    }

    /// The whole cluster is gone: every queued or batched request is
    /// terminal `Failed` (conservation still holds; nothing vanishes).
    fn drain_all_failed(&mut self, _now: f64) {
        let queued = self.wfq.drain();
        for request in &queued {
            self.fail(request);
        }
        let batched = self.batcher.drain();
        for request in &batched {
            self.fail(request);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_faults::FaultSpec;

    fn small_config() -> ServeConfig {
        ServeConfig {
            seed: 7,
            offered_rps: 6_000.0,
            horizon_us: 60_000.0,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn run_is_deterministic() {
        let a = ServeEngine::new(small_config()).run();
        let b = ServeEngine::new(small_config()).run();
        assert_eq!(a, b);
        assert!(a.offered > 0);
        assert!(a.completed > 0);
    }

    #[test]
    fn outcome_is_conserved() {
        let outcome = ServeEngine::new(small_config()).run();
        assert!(outcome.conserved(), "conservation: {outcome:?}");
    }

    #[test]
    fn shed_rate_grows_with_offered_load() {
        let mut rates = Vec::new();
        for load in [4_000.0, 10_000.0, 20_000.0, 40_000.0] {
            let outcome = ServeEngine::new(ServeConfig {
                offered_rps: load,
                horizon_us: 100_000.0,
                ..ServeConfig::default()
            })
            .run();
            assert!(outcome.conserved());
            rates.push(outcome.shed_rate());
        }
        for pair in rates.windows(2) {
            assert!(
                pair[0] <= pair[1] + 1e-9,
                "shed rate must be monotone in load: {rates:?}"
            );
        }
        assert!(rates[3] > 0.3, "heavy overload must shed hard: {rates:?}");
    }

    #[test]
    fn batching_amortises_launch_overhead() {
        // Unit batches vs batch-8 ceilings at the same overload: the
        // batched run must complete more requests.
        let unbatched = ServeEngine::new(ServeConfig {
            batch: vec![BatchPolicy::new(1, 0.0), BatchPolicy::new(1, 0.0)],
            autotune: false,
            offered_rps: 20_000.0,
            horizon_us: 100_000.0,
            ..ServeConfig::default()
        })
        .run();
        let batched = ServeEngine::new(ServeConfig {
            autotune: false,
            offered_rps: 20_000.0,
            horizon_us: 100_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(
            batched.completed > unbatched.completed,
            "batched {} vs unbatched {}",
            batched.completed,
            unbatched.completed
        );
    }

    #[test]
    fn node_crash_fails_inflight_but_serving_continues() {
        let plan = FaultPlan::new(9).with_fault(FaultSpec {
            at_us: 20_000.0,
            node: 0,
            kind: FaultKind::NodeCrash,
        });
        let outcome = ServeEngine::new(small_config()).with_plan(plan).run();
        assert!(outcome.conserved());
        assert!(outcome.completed > 0, "survivors keep serving");
    }

    #[test]
    fn all_nodes_crashed_fails_the_backlog() {
        let mut plan = FaultPlan::new(11);
        for node in 0..4 {
            plan.push(FaultSpec {
                at_us: 10_000.0,
                node,
                kind: FaultKind::NodeCrash,
            });
        }
        let outcome = ServeEngine::new(small_config()).with_plan(plan).run();
        assert!(outcome.conserved());
        assert!(outcome.failed > 0, "post-crash admissions must fail");
        // No batch ever completes after the crash instant.
        for batch in &outcome.batches {
            assert!(batch.failed || batch.finish_us <= 10_000.0 + 1e-6);
        }
    }

    #[test]
    fn slow_node_trips_a_breaker() {
        let plan = FaultPlan::new(13).with_fault(FaultSpec {
            at_us: 5_000.0,
            node: 1,
            kind: FaultKind::SlowNode {
                factor: 8.0,
                duration_us: 150_000.0,
            },
        });
        let outcome = ServeEngine::new(ServeConfig {
            seed: 13,
            offered_rps: 12_000.0,
            horizon_us: 150_000.0,
            ..ServeConfig::default()
        })
        .with_plan(plan)
        .run();
        assert!(outcome.conserved());
        assert!(
            outcome.breaker_opens > 0,
            "an 8x straggler must be convicted: {outcome:?}"
        );
    }

    #[test]
    fn deadline_pressure_sheds_in_queue() {
        // One slow CPU-only node and a tight deadline: queued requests
        // lapse and are shed rather than served dead.
        let outcome = ServeEngine::new(ServeConfig {
            nodes: 1,
            classes: vec![KernelClass::new(
                "infer", 400.0, 40.0, 120.0, 2_000.0, 4_096,
            )],
            batch: vec![BatchPolicy::new(8, 400.0)],
            offered_rps: 8_000.0,
            horizon_us: 60_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved());
        assert!(outcome.shed_deadline > 0, "{outcome:?}");
    }

    #[test]
    fn autotuner_reacts_to_infeasible_latency() {
        // Impossible deadline: every batched point is infeasible once
        // observations arrive, so the tuner must fall back toward
        // unbatched operation.
        let outcome = ServeEngine::new(ServeConfig {
            classes: vec![KernelClass::new("infer", 400.0, 40.0, 120.0, 300.0, 4_096)],
            batch: vec![BatchPolicy::new(8, 400.0)],
            offered_rps: 6_000.0,
            horizon_us: 80_000.0,
            retune_every: 4,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved());
        assert!(outcome.retunes > 0);
        assert_eq!(outcome.final_max_batch, vec![1], "{outcome:?}");
    }

    #[test]
    fn statically_infeasible_class_is_fully_shed_at_the_door() {
        // Two classes: one carries a proven worst-case bound above its
        // deadline, the other a bound safely below. The infeasible
        // class must be shed in full — typed, at the door, before any
        // token or queue slot is spent — while the feasible class
        // serves normally and conservation still holds.
        let outcome = ServeEngine::new(ServeConfig {
            classes: vec![
                KernelClass::new("late", 400.0, 40.0, 120.0, 5_000.0, 4_096)
                    .with_static_bound(9_000.0),
                KernelClass::new("ok", 1_600.0, 160.0, 320.0, 20_000.0, 16_384)
                    .with_static_bound(1_000.0),
            ],
            offered_rps: 6_000.0,
            horizon_us: 60_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved(), "{outcome:?}");
        assert!(outcome.shed_static > 0, "{outcome:?}");
        assert!(outcome.completed > 0, "feasible class keeps serving");
        // Nothing of the infeasible class ever reached a batch.
        assert!(outcome.batches.iter().all(|b| b.class != 0));
    }

    use crate::lifecycle::{
        BrownoutConfig, HedgeConfig, LifecycleConfig, LimiterConfig, RetryConfig,
    };

    /// A burst of transient kernel errors landing while batches are in
    /// flight.
    fn transient_storm() -> FaultPlan {
        let mut plan = FaultPlan::new(21);
        for (i, at_us) in [8_000.0, 14_000.0, 20_000.0, 26_000.0, 32_000.0, 38_000.0]
            .iter()
            .enumerate()
        {
            plan.push(FaultSpec {
                at_us: *at_us,
                node: i % 4,
                kind: FaultKind::TransientKernelError,
            });
        }
        plan
    }

    #[test]
    fn retries_reenqueue_fault_failed_requests() {
        let config = |retry: Option<RetryConfig>| ServeConfig {
            lifecycle: LifecycleConfig {
                retry,
                ..LifecycleConfig::default()
            },
            ..small_config()
        };
        let baseline = ServeEngine::new(config(None))
            .with_plan(transient_storm())
            .run();
        let retried = ServeEngine::new(config(Some(RetryConfig::default())))
            .with_plan(transient_storm())
            .run();
        assert!(baseline.conserved() && retried.conserved());
        assert!(baseline.failed > 0, "the storm must hit in-flight work");
        assert!(retried.retries > 0, "{retried:?}");
        assert!(
            retried.failed < baseline.failed,
            "retries must recover some fault-failed requests: {} vs {}",
            retried.failed,
            baseline.failed
        );
        // Replay identity extends to the retry path.
        let again = ServeEngine::new(config(Some(RetryConfig::default())))
            .with_plan(transient_storm())
            .run();
        assert_eq!(retried, again);
    }

    #[test]
    fn retry_budget_denies_when_spent() {
        let tight = RetryConfig {
            budget_cap: 1.0,
            refill_per_success: 0.0,
            ..RetryConfig::default()
        };
        let outcome = ServeEngine::new(ServeConfig {
            lifecycle: LifecycleConfig {
                retry: Some(tight.clone()),
                ..LifecycleConfig::default()
            },
            ..small_config()
        })
        .with_plan(transient_storm())
        .run();
        assert!(outcome.conserved(), "{outcome:?}");
        assert!(outcome.retry_denied > 0, "{outcome:?}");
        // One token per tenant, no refill: at most one retry each.
        for tenant in &outcome.tenants {
            assert!(tenant.retried <= 1, "{tenant:?}");
        }
    }

    #[test]
    fn hedging_races_a_straggling_primary() {
        let config = ServeConfig {
            seed: 17,
            classes: vec![
                KernelClass::new("infer", 400.0, 40.0, 120.0, 5_000.0, 4_096).latency_critical(),
                KernelClass::new("analytics", 1_600.0, 160.0, 320.0, 20_000.0, 16_384)
                    .with_kind(ClassKind::Analytics),
            ],
            offered_rps: 2_000.0,
            horizon_us: 80_000.0,
            // Blind the health monitor: with no straggler verdict the
            // breaker never isolates the slow node, so hedging is the
            // only line of defense — exactly the gray window it exists
            // to cover.
            health: HealthConfig {
                min_samples: usize::MAX,
                ..HealthConfig::default()
            },
            lifecycle: LifecycleConfig {
                hedge: Some(HedgeConfig::default()),
                ..LifecycleConfig::default()
            },
            ..ServeConfig::default()
        };
        let plan = FaultPlan::new(17).with_fault(FaultSpec {
            at_us: 5_000.0,
            node: 2,
            kind: FaultKind::SlowNode {
                factor: 8.0,
                duration_us: 70_000.0,
            },
        });
        let outcome = ServeEngine::new(config.clone())
            .with_plan(plan.clone())
            .run();
        assert!(outcome.conserved(), "{outcome:?}");
        assert!(outcome.hedges > 0, "{outcome:?}");
        assert!(
            outcome.hedge_wins > 0,
            "a healthy duplicate must beat an 8x straggler"
        );
        // The trace carries both legs; completions count exactly once.
        let hedge_records = outcome.batches.iter().filter(|b| b.hedge).count() as u64;
        assert_eq!(hedge_records, outcome.hedges);
        assert_eq!(outcome.completed as usize, outcome.latencies_us.len());
        let again = ServeEngine::new(config).with_plan(plan).run();
        assert_eq!(outcome, again, "hedged runs must replay identically");
    }

    #[test]
    fn limiter_sheds_typed_overload_at_the_door() {
        let outcome = ServeEngine::new(ServeConfig {
            offered_rps: 30_000.0,
            horizon_us: 80_000.0,
            lifecycle: LifecycleConfig {
                limiter: Some(LimiterConfig {
                    initial: 1,
                    max_inflight: 1,
                    queue_per_slot: 4,
                    ..LimiterConfig::default()
                }),
                ..LifecycleConfig::default()
            },
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved(), "{outcome:?}");
        assert!(outcome.shed_overloaded > 0, "{outcome:?}");
        assert!(outcome.completed > 0, "the limiter throttles, not starves");
    }

    #[test]
    fn brownout_climbs_the_ladder_and_sheds_lowest_weight() {
        let mut plan = FaultPlan::new(23);
        for node in 0..3 {
            plan.push(FaultSpec {
                at_us: 10_000.0,
                node,
                kind: FaultKind::NodeCrash,
            });
        }
        let outcome = ServeEngine::new(ServeConfig {
            lifecycle: LifecycleConfig {
                brownout: Some(BrownoutConfig::default()),
                ..LifecycleConfig::default()
            },
            ..small_config()
        })
        .with_plan(plan)
        .run();
        assert!(outcome.conserved(), "{outcome:?}");
        assert!(outcome.brownout_transitions > 0, "{outcome:?}");
        assert_eq!(
            outcome.brownout_peak_tier, 3,
            "3 of 4 nodes down is a tier-3 brownout: {outcome:?}"
        );
        assert!(
            outcome.shed_brownout > 0,
            "tier 3 must shed the bronze tenant: {outcome:?}"
        );
        // Only the lowest-weight tenant is sacrificed.
        for tenant in &outcome.tenants[..2] {
            assert!(tenant.offered > 0);
        }
    }

    #[test]
    fn full_lifecycle_replays_identically_under_chaos() {
        let config = ServeConfig {
            classes: vec![
                KernelClass::new("infer", 400.0, 40.0, 120.0, 5_000.0, 4_096).latency_critical(),
                KernelClass::new("analytics", 1_600.0, 160.0, 320.0, 20_000.0, 16_384)
                    .with_kind(ClassKind::Analytics),
            ],
            lifecycle: LifecycleConfig::all_on(),
            ..small_config()
        };
        let plan = FaultPlan::random_campaign(99, 4, 60_000.0, 6);
        let a = ServeEngine::new(config.clone())
            .with_plan(plan.clone())
            .run();
        let b = ServeEngine::new(config).with_plan(plan).run();
        assert_eq!(a, b);
        assert!(a.conserved(), "{a:?}");
    }

    fn partition_config(seed: u64) -> ServeConfig {
        ServeConfig {
            seed,
            offered_rps: 6_000.0,
            horizon_us: 60_000.0,
            cluster: Some(ClusterConfig::default()),
            ..ServeConfig::default()
        }
    }

    fn sym_partition(seed: u64, group: u64, at_us: f64, duration_us: f64) -> FaultPlan {
        FaultPlan::new(seed).with_fault(FaultSpec {
            at_us,
            node: 0,
            kind: FaultKind::PartitionSym { group, duration_us },
        })
    }

    #[test]
    fn fault_free_cluster_run_grants_and_never_sheds_partitioned() {
        let outcome = ServeEngine::new(partition_config(7)).run();
        assert!(outcome.conserved(), "{outcome:?}");
        assert!(outcome.gossip_rounds > 0, "membership must tick");
        assert_eq!(outcome.shed_partitioned, 0, "healthy leases never shed");
        assert_eq!(outcome.failovers, 0, "healthy leases never move");
        assert_eq!(outcome.cluster_epoch, 0, "no failover, no fence bump");
        assert!(outcome.completed > 0);
    }

    #[test]
    fn minority_partition_fails_over_and_conserves() {
        // Cut node 0 from the other three for 30 ms: suspicion hardens
        // to a confirm, its shard leases lapse and fail over with
        // epoch bumps, and after the heal the run is still conserved —
        // nothing double-executed, nothing lost.
        let plan = sym_partition(31, 0x1, 10_000.0, 30_000.0);
        let config = partition_config(31);
        let a = ServeEngine::new(config.clone())
            .with_plan(plan.clone())
            .run();
        assert!(a.conserved(), "{a:?}");
        assert!(a.confirms > 0, "the cut must be confirmed: {a:?}");
        assert!(a.failovers > 0, "lapsed shards must move: {a:?}");
        assert!(a.cluster_epoch > 0, "every failover bumps the fence");
        assert!(a.completed > 0, "the majority keeps serving");
        assert_eq!(
            a.batches.iter().filter(|b| b.fenced).count() as u64,
            a.fenced_batches,
            "fenced records mirror the counter"
        );
        let b = ServeEngine::new(config).with_plan(plan).run();
        assert_eq!(a, b, "partitioned runs replay identically");
    }

    #[test]
    fn even_split_sheds_typed_until_degraded_mode() {
        // A 2|2 split lasting past the horizon: no component holds
        // quorum, every lease lapses, and arrivals shed typed until
        // the no-quorum grace opens the degraded escape hatch and
        // service resumes under fresh fencing epochs.
        let plan = sym_partition(33, 0x3, 5_000.0, 200_000.0);
        let outcome = ServeEngine::new(ServeConfig {
            horizon_us: 120_000.0,
            ..partition_config(33)
        })
        .with_plan(plan)
        .run();
        assert!(outcome.conserved(), "{outcome:?}");
        assert!(
            outcome.shed_partitioned > 0,
            "a no-quorum outage must shed typed: {outcome:?}"
        );
        assert!(
            outcome.degraded_grants > 0,
            "the escape hatch must open: {outcome:?}"
        );
        assert!(
            outcome.cluster_epoch > 0,
            "degraded re-grants never keep the old fence"
        );
        assert!(outcome.completed > 0, "service resumes degraded");
    }

    #[test]
    fn partition_campaign_replays_and_conserves_with_all_features() {
        let config = ServeConfig {
            classes: vec![
                KernelClass::new("infer", 400.0, 40.0, 120.0, 5_000.0, 4_096).latency_critical(),
                KernelClass::new("analytics", 1_600.0, 160.0, 320.0, 20_000.0, 16_384)
                    .with_kind(ClassKind::Analytics),
            ],
            lifecycle: LifecycleConfig::all_on(),
            ..partition_config(91)
        };
        let mut plan = FaultPlan::random_campaign(91, 4, 60_000.0, 4);
        for fault in FaultPlan::random_partition_campaign(91, 4, 60_000.0, 2).faults() {
            plan.push(fault.clone());
        }
        let a = ServeEngine::new(config.clone())
            .with_plan(plan.clone())
            .run();
        assert!(a.conserved(), "{a:?}");
        let b = ServeEngine::new(config).with_plan(plan).run();
        assert_eq!(a, b, "chaos + partitions must replay identically");
    }

    #[test]
    fn quantiles_are_ordered() {
        let outcome = ServeEngine::new(small_config()).run();
        let p50 = outcome.latency_quantile(0.5).expect("completions");
        let p99 = outcome.latency_quantile(0.99).expect("completions");
        assert!(p50 <= p99);
        assert!(p50 > 0.0);
    }

    #[test]
    fn cancelled_events_never_linger_in_the_queue() {
        // Under heavy batching, most batches close on size and their
        // wait-timeouts are cancelled; the queue must end empty and the
        // outcome must match a fresh run exactly (cancellation is not
        // allowed to perturb the virtual clock).
        let outcome = ServeEngine::new(ServeConfig {
            offered_rps: 20_000.0,
            horizon_us: 100_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved());
        assert!(
            outcome.end_us >= outcome.horizon_us,
            "end_us covers the horizon: {outcome:?}"
        );
        // Timeout events land after the last dispatch when batches
        // close early; end_us still reflects the maximum scheduled
        // event, not just the last processed one.
        let last_finish = outcome
            .batches
            .iter()
            .map(|b| b.finish_us)
            .fold(0.0, f64::max);
        assert!(outcome.end_us >= last_finish);
    }
}
