//! The serving engine: a seeded discrete-event simulation that pushes
//! an open-loop arrival trace through admission control, weighted-fair
//! queueing and dynamic batching onto a heterogeneous cluster.
//!
//! # Determinism
//!
//! The engine is a pure function of its [`ServeConfig`] and
//! [`everest_faults::FaultPlan`]: the clock is virtual, every random
//! draw comes from forked [`everest_faults::DetRng`] substreams, the
//! event heap breaks timestamp ties by insertion sequence, and all
//! float orderings use `f64::total_cmp`. Two runs with the same inputs
//! produce identical [`ServeOutcome`]s — the property `basecamp serve`
//! replays and CI diffs byte-for-byte.
//!
//! # Integration
//!
//! * `everest-health` — per-node [`CircuitBreaker`]s make suspect nodes
//!   ineligible for dispatch; a [`HealthMonitor`] convicts gray
//!   failures from achieved batch inflation and trips the breakers.
//! * `everest-faults` — a [`FaultPlan`] injects crashes, transient
//!   errors and gray degradations into the run; the dispatcher's
//!   placement model stays gray-blind while actual timings inflate.
//! * `everest-autotuner` — one mARGOt tuner per kernel class retunes
//!   the batch-size ceiling online, minimising per-request cost under
//!   the class's latency SLO.
//! * `everest-telemetry` — `serve.*` counters, gauges, histograms and
//!   events (see `docs/OBSERVABILITY.md`).

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use everest_autotuner::{
    config, Autotuner, Constraint, Features, KnobValue, Objective, OperatingPoint,
};
use everest_faults::{FaultKind, FaultPlan};
use everest_health::{
    Admission as BreakerAdmission, BreakerConfig, CircuitBreaker, HealthConfig, HealthMonitor,
};
use everest_runtime::cluster::Cluster;
use everest_telemetry::Registry;

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::batcher::{BatchPolicy, DynamicBatcher};
use crate::request::{ArrivalTrace, KernelClass, Request, ShedReason, TenantSpec};
use crate::wfq::WeightedFairQueue;

/// Full configuration of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Seed for the arrival trace and every derived substream.
    pub seed: u64,
    /// Cluster size; the second half of the nodes carry FPGAs
    /// (`Cluster::everest(nodes - nodes/2, nodes/2, cores)`).
    pub nodes: usize,
    /// CPU cores per node.
    pub cores: u32,
    /// The tenants sharing the cluster.
    pub tenants: Vec<TenantSpec>,
    /// The kernel classes requests may target.
    pub classes: Vec<KernelClass>,
    /// Per-class batching policy (parallel to `classes`).
    pub batch: Vec<BatchPolicy>,
    /// Admission knobs.
    pub admission: AdmissionConfig,
    /// Aggregate offered load, requests per second (split across
    /// tenants by weight).
    pub offered_rps: f64,
    /// Arrival horizon on the virtual clock, microseconds. The run
    /// itself continues past the horizon until the backlog drains.
    pub horizon_us: f64,
    /// Whether the per-class autotuners retune the batch ceiling.
    pub autotune: bool,
    /// Retune cadence, in completed batches per class.
    pub retune_every: u64,
    /// Circuit-breaker tuning for dispatch eligibility.
    pub breaker: BreakerConfig,
    /// Health-monitor tuning (gray-failure conviction thresholds).
    pub health: HealthConfig,
}

impl Default for ServeConfig {
    /// A 4-node (2 CPU + 2 FPGA) cluster serving three weighted
    /// tenants (gold 4×, silver 2×, bronze 1×) with two kernel
    /// classes, 10 000 rps offered over a 200 ms horizon.
    fn default() -> ServeConfig {
        ServeConfig {
            seed: 42,
            nodes: 4,
            cores: 4,
            tenants: vec![
                TenantSpec::new("gold", 4.0, 8_000.0, 64.0),
                TenantSpec::new("silver", 2.0, 4_000.0, 32.0),
                TenantSpec::new("bronze", 1.0, 2_000.0, 16.0),
            ],
            classes: vec![
                KernelClass::new("infer", 400.0, 40.0, 120.0, 5_000.0, 4_096),
                KernelClass::new("analytics", 1_600.0, 160.0, 320.0, 20_000.0, 16_384),
            ],
            batch: vec![BatchPolicy::new(8, 400.0), BatchPolicy::new(8, 800.0)],
            admission: AdmissionConfig::default(),
            offered_rps: 10_000.0,
            horizon_us: 200_000.0,
            autotune: true,
            retune_every: 16,
            breaker: BreakerConfig::default(),
            health: HealthConfig::default(),
        }
    }
}

/// One dispatched batch, as recorded in the replay trace (dispatch
/// order; times in virtual µs).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Batcher-unique id.
    pub id: u64,
    /// Kernel-class index.
    pub class: usize,
    /// Serving node index.
    pub node: usize,
    /// Requests coalesced into the batch.
    pub size: usize,
    /// Dispatch time.
    pub start_us: f64,
    /// Completion (or failure) time.
    pub finish_us: f64,
    /// Whether this was a half-open breaker probe.
    pub probe: bool,
    /// Whether a fault killed the batch before completion.
    pub failed: bool,
}

/// Per-tenant accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// WFQ weight (copied for reporting).
    pub weight: f64,
    /// Requests offered by the arrival trace.
    pub offered: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed (any [`ShedReason`]).
    pub shed: u64,
    /// Requests lost to faults.
    pub failed: u64,
}

/// The result of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Requests offered by the arrival trace.
    pub offered: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests lost to faults after admission.
    pub failed: u64,
    /// Sheds at the door: empty token bucket.
    pub shed_rate_limited: u64,
    /// Sheds at the door: queue-depth backpressure.
    pub shed_queue_full: u64,
    /// Sheds at the door: class statically proven unable to meet its
    /// deadline (worst-case bound from `everest-analysis` exceeds the
    /// class deadline).
    pub shed_static: u64,
    /// Sheds in queue: class deadline lapsed before dispatch.
    pub shed_deadline: u64,
    /// Completions that finished past their class deadline.
    pub slo_violations: u64,
    /// Breaker trips during the run.
    pub breaker_opens: u64,
    /// Half-open probe dispatches.
    pub probes: u64,
    /// Autotuner retune evaluations.
    pub retunes: u64,
    /// Per-tenant accounting, in tenant-table order.
    pub tenants: Vec<TenantOutcome>,
    /// Every dispatched batch, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// End-to-end latency of every completion, in completion order.
    pub latencies_us: Vec<f64>,
    /// Arrival horizon, microseconds.
    pub horizon_us: f64,
    /// Virtual time the last event settled, microseconds.
    pub end_us: f64,
    /// Final autotuned batch ceiling per class.
    pub final_max_batch: Vec<usize>,
}

impl ServeOutcome {
    /// Requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate_limited + self.shed_queue_full + self.shed_static + self.shed_deadline
    }

    /// Shed fraction of offered load, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed_total() as f64 / self.offered as f64
        }
    }

    /// Completed requests per second of virtual run time.
    pub fn throughput_rps(&self) -> f64 {
        if self.end_us <= 0.0 {
            0.0
        } else {
            self.completed as f64 * 1.0e6 / self.end_us
        }
    }

    /// Exact (nearest-rank) latency quantile, `q` in `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.latencies_us.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.max(1).min(sorted.len()) - 1])
    }

    /// Mean end-to-end latency, microseconds.
    pub fn mean_latency_us(&self) -> Option<f64> {
        if self.latencies_us.is_empty() {
            None
        } else {
            Some(self.latencies_us.iter().sum::<f64>() / self.latencies_us.len() as f64)
        }
    }

    /// The conservation invariant: every offered request reached
    /// exactly one terminal state, globally and per tenant.
    pub fn conserved(&self) -> bool {
        let door = self.offered
            == self.admitted + self.shed_rate_limited + self.shed_queue_full + self.shed_static;
        let queue = self.admitted == self.completed + self.failed + self.shed_deadline;
        let tenants = self.tenants.iter().all(|t| {
            t.offered == t.completed + t.shed + t.failed && t.admitted >= t.completed + t.failed
        });
        let sums = self.offered == self.tenants.iter().map(|t| t.offered).sum::<u64>()
            && self.completed == self.tenants.iter().map(|t| t.completed).sum::<u64>()
            && self.failed == self.tenants.iter().map(|t| t.failed).sum::<u64>()
            && self.shed_total() == self.tenants.iter().map(|t| t.shed).sum::<u64>()
            && self.completed as usize == self.latencies_us.len();
        door && queue && tenants && sums
    }
}

/// The serving engine. Build one from a [`ServeConfig`], optionally
/// attach a fault plan and a shared telemetry registry, then
/// [`ServeEngine::run`].
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    plan: FaultPlan,
    registry: Arc<Registry>,
}

impl ServeEngine {
    /// An engine with no faults and a private telemetry registry.
    pub fn new(config: ServeConfig) -> ServeEngine {
        let seed = config.seed;
        ServeEngine {
            config,
            plan: FaultPlan::new(seed),
            registry: Registry::new(),
        }
    }

    /// Injects a chaos plan into the run.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> ServeEngine {
        self.plan = plan;
        self
    }

    /// Records telemetry into a shared registry (e.g. the process
    /// global behind `basecamp --trace`).
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> ServeEngine {
        self.registry = registry;
        self
    }

    /// Runs the simulation to completion (arrivals exhausted and the
    /// admitted backlog fully drained).
    pub fn run(&self) -> ServeOutcome {
        let span = self.registry.span("serve.run");
        span.arg("seed", self.config.seed as f64)
            .arg("nodes", self.config.nodes as f64)
            .arg("offered_rps", self.config.offered_rps);
        let outcome = Sim::new(&self.config, &self.plan, self.registry.clone()).run();
        span.arg("completed", outcome.completed as f64)
            .arg("shed", outcome.shed_total() as f64)
            .record_sim_us(outcome.end_us);
        outcome
    }
}

// ---------------------------------------------------------------------
// Event heap
// ---------------------------------------------------------------------

#[derive(Debug)]
enum EventKind {
    Arrival(Request),
    BatchTimeout { class: usize, batch: u64 },
    Completion { batch: u64 },
    Fault(usize),
}

#[derive(Debug)]
struct Event {
    at_us: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Event) -> Ordering {
        self.at_us
            .total_cmp(&other.at_us)
            .then(self.seq.cmp(&other.seq))
    }
}

// ---------------------------------------------------------------------
// Simulation state
// ---------------------------------------------------------------------

#[derive(Debug)]
struct NodeState {
    fpga: bool,
    crashed: bool,
    free_at_us: f64,
    current: Option<u64>,
    breaker: CircuitBreaker,
    /// Gray slowdown windows `(from_us, to_us, factor)`.
    slow: Vec<(f64, f64, f64)>,
    /// Link degradation windows `(from_us, to_us, factor)`.
    link: Vec<(f64, f64, f64)>,
    /// Progressive VF degradation `(onset_us, per_ms)`.
    creep: Option<(f64, f64)>,
}

#[derive(Debug)]
struct Inflight {
    node: usize,
    class: usize,
    requests: Vec<Request>,
    start_us: f64,
    expected_us: f64,
    actual_us: f64,
    probe: bool,
    fpga_path: bool,
    record: usize,
}

struct Sim<'a> {
    cfg: &'a ServeConfig,
    cluster: Cluster,
    registry: Arc<Registry>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    admission: AdmissionController,
    wfq: WeightedFairQueue,
    batcher: DynamicBatcher,
    nodes: Vec<NodeState>,
    inflight: BTreeMap<u64, Inflight>,
    monitor: HealthMonitor,
    tuners: Vec<Autotuner>,
    class_completions: Vec<u64>,
    plan: &'a FaultPlan,
    outcome: ServeOutcome,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a ServeConfig, plan: &'a FaultPlan, registry: Arc<Registry>) -> Sim<'a> {
        assert_eq!(
            cfg.classes.len(),
            cfg.batch.len(),
            "one batch policy per kernel class"
        );
        assert!(cfg.nodes > 0, "serving needs at least one node");
        assert!(!cfg.tenants.is_empty(), "serving needs at least one tenant");
        let fpga_nodes = cfg.nodes / 2;
        let cluster = Cluster::everest(cfg.nodes - fpga_nodes, fpga_nodes, cfg.cores);
        let nodes: Vec<NodeState> = cluster
            .nodes
            .iter()
            .map(|spec| NodeState {
                fpga: spec.fpga.is_some(),
                crashed: false,
                free_at_us: 0.0,
                current: None,
                breaker: CircuitBreaker::new(cfg.breaker),
                slow: Vec::new(),
                link: Vec::new(),
                creep: None,
            })
            .collect();
        let weights: Vec<f64> = cfg.tenants.iter().map(|t| t.weight).collect();
        let monitor = HealthMonitor::new(cfg.nodes, cfg.health.clone(), cfg.seed, registry.clone());
        let tuners = cfg
            .classes
            .iter()
            .zip(&cfg.batch)
            .map(|(class, policy)| {
                Self::class_tuner(class, policy, &cluster, fpga_nodes > 0, &registry)
            })
            .collect();
        let outcome = ServeOutcome {
            offered: 0,
            admitted: 0,
            completed: 0,
            failed: 0,
            shed_rate_limited: 0,
            shed_queue_full: 0,
            shed_static: 0,
            shed_deadline: 0,
            slo_violations: 0,
            breaker_opens: 0,
            probes: 0,
            retunes: 0,
            tenants: cfg
                .tenants
                .iter()
                .map(|t| TenantOutcome {
                    name: t.name.clone(),
                    weight: t.weight,
                    offered: 0,
                    admitted: 0,
                    completed: 0,
                    shed: 0,
                    failed: 0,
                })
                .collect(),
            batches: Vec::new(),
            latencies_us: Vec::new(),
            horizon_us: cfg.horizon_us,
            end_us: 0.0,
            final_max_batch: cfg.batch.iter().map(|p| p.max_batch).collect(),
        };
        Sim {
            cfg,
            cluster,
            registry,
            heap: BinaryHeap::new(),
            seq: 0,
            admission: AdmissionController::new(&cfg.tenants, &cfg.classes, &cfg.admission),
            wfq: WeightedFairQueue::new(&weights),
            batcher: DynamicBatcher::new(&cfg.batch),
            nodes,
            inflight: BTreeMap::new(),
            monitor,
            tuners,
            class_completions: vec![0; cfg.classes.len()],
            plan,
            outcome,
        }
    }

    /// Design-time operating points for one class: batch sizes in
    /// powers of two up to the configured ceiling, expected latency =
    /// half the wait window plus batch service, expected per-request
    /// cost = service amortised over the batch. The tuner minimises
    /// per-request cost subject to the class deadline.
    fn class_tuner(
        class: &KernelClass,
        policy: &BatchPolicy,
        cluster: &Cluster,
        has_fpga: bool,
        registry: &Arc<Registry>,
    ) -> Autotuner {
        let mut tuner = Autotuner::new().with_registry(registry.clone());
        let mut sizes = Vec::new();
        let mut b = 1;
        while b < policy.max_batch {
            sizes.push(b);
            b *= 2;
        }
        sizes.push(policy.max_batch);
        for &n in &sizes {
            let compute = if has_fpga {
                class.fpga_batch_us(n)
            } else {
                class.cpu_batch_us(n)
            };
            let service = compute + cluster.transfer_us(class.payload_bytes * n as u64);
            let wait = if n <= 1 {
                0.0
            } else {
                0.5 * policy.max_wait_us
            };
            tuner.add_point(
                OperatingPoint::new(config([("batch", n as i64)]))
                    .expect("latency_us", wait + service)
                    .expect("per_request_us", service / n as f64),
            );
        }
        tuner.set_objective(Objective::minimize("per_request_us"));
        tuner.add_constraint(Constraint::le("latency_us", class.deadline_us));
        tuner
    }

    fn push_event(&mut self, at_us: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { at_us, seq, kind }));
    }

    fn run(mut self) -> ServeOutcome {
        let trace = ArrivalTrace::synthesize(
            self.cfg.seed,
            &self.cfg.tenants,
            &self.cfg.classes,
            self.cfg.horizon_us,
            self.cfg.offered_rps,
        );
        for request in trace.requests() {
            self.push_event(request.arrival_us, EventKind::Arrival(request.clone()));
        }
        for (index, fault) in self.plan.faults().iter().enumerate() {
            self.push_event(fault.at_us, EventKind::Fault(index));
        }
        if self.cfg.autotune {
            for class in 0..self.cfg.classes.len() {
                self.retune(class, 0.0);
            }
        }
        let mut now = 0.0_f64;
        while let Some(Reverse(event)) = self.heap.pop() {
            now = now.max(event.at_us);
            match event.kind {
                EventKind::Arrival(request) => self.handle_arrival(request, now),
                EventKind::BatchTimeout { class, batch } => {
                    self.batcher.expire(class, batch, now);
                }
                EventKind::Completion { batch } => self.handle_completion(batch, now),
                EventKind::Fault(index) => self.handle_fault(index, now),
            }
            self.pump(now);
            self.registry
                .gauge_set("serve.queue_depth", self.queue_depth() as f64);
        }
        debug_assert!(self.wfq.is_empty(), "fair queues drained");
        debug_assert_eq!(self.batcher.pending(), 0, "batcher drained");
        debug_assert!(self.inflight.is_empty(), "no work in flight");
        self.outcome.end_us = now.max(self.cfg.horizon_us);
        self.outcome.final_max_batch = (0..self.cfg.classes.len())
            .map(|c| self.batcher.max_batch(c))
            .collect();
        self.outcome
    }

    fn queue_depth(&self) -> usize {
        self.wfq.len() + self.batcher.pending()
    }

    // -- arrivals ------------------------------------------------------

    fn handle_arrival(&mut self, request: Request, now: f64) {
        self.outcome.offered += 1;
        self.outcome.tenants[request.tenant].offered += 1;
        self.registry.counter_add("serve.requests_offered", 1);
        let depth = self.queue_depth();
        match self
            .admission
            .admit(request.tenant, request.class, now, depth)
        {
            Ok(()) => {
                self.outcome.admitted += 1;
                self.outcome.tenants[request.tenant].admitted += 1;
                self.registry.counter_add("serve.requests_admitted", 1);
                self.wfq.push(request);
            }
            Err(reason) => self.shed(&request, reason),
        }
    }

    fn shed(&mut self, request: &Request, reason: ShedReason) {
        match reason {
            ShedReason::RateLimited => self.outcome.shed_rate_limited += 1,
            ShedReason::QueueFull => self.outcome.shed_queue_full += 1,
            ShedReason::StaticallyInfeasible => self.outcome.shed_static += 1,
            ShedReason::DeadlineLapsed => self.outcome.shed_deadline += 1,
        }
        self.outcome.tenants[request.tenant].shed += 1;
        self.registry.counter_add("serve.requests_shed", 1);
        self.registry
            .counter_add(&format!("serve.shed.{}", reason.id()), 1);
    }

    fn fail(&mut self, request: &Request) {
        self.outcome.failed += 1;
        self.outcome.tenants[request.tenant].failed += 1;
        self.registry.counter_add("serve.requests_failed", 1);
    }

    // -- the pump: queues → batcher → nodes ----------------------------

    /// Work-conserving transfer: shed lapsed requests, keep the batcher
    /// stocked (bounded so WFQ backlog builds queue-depth backpressure
    /// instead of hiding inside batches), dispatch ready batches onto
    /// idle breaker-admitted nodes. Runs to a fixed point at each event.
    fn pump(&mut self, now: f64) {
        if self.nodes.iter().all(|n| n.crashed) {
            self.drain_all_failed(now);
            return;
        }
        loop {
            let pulled = self.pull(now);
            let dispatched = self.dispatch(now);
            if pulled == 0 && dispatched == 0 {
                break;
            }
        }
    }

    fn pull(&mut self, now: f64) -> usize {
        let mut pulled = 0;
        while self.batcher.ready_len() < self.nodes.len() {
            let Some(request) = self.wfq.pop() else {
                break;
            };
            pulled += 1;
            let class = request.class;
            if now > request.arrival_us + self.cfg.classes[class].deadline_us {
                self.shed(&request, ShedReason::DeadlineLapsed);
                continue;
            }
            if let Some(batch) = self.batcher.offer(request, now) {
                let deadline = now + self.batcher.max_wait_us(class);
                self.push_event(deadline, EventKind::BatchTimeout { class, batch });
            }
        }
        pulled
    }

    fn dispatch(&mut self, now: f64) -> usize {
        let mut dispatched = 0;
        while self.batcher.ready_len() > 0 {
            let idle: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| {
                    let n = &self.nodes[i];
                    !n.crashed && n.current.is_none() && n.free_at_us <= now
                })
                .collect();
            if idle.is_empty() {
                break;
            }
            let admitted: Vec<usize> = idle
                .iter()
                .copied()
                .filter(|&i| self.nodes[i].breaker.peek(now) != BreakerAdmission::Refuse)
                .collect();
            let pool = if admitted.is_empty() {
                // Every idle node is breaker-refused. If some other
                // non-crashed node is still working, wait for it; if the
                // whole surviving cluster is refused, availability beats
                // isolation — dispatch anyway rather than deadlock.
                let busy_exists = self
                    .nodes
                    .iter()
                    .any(|n| !n.crashed && (n.current.is_some() || n.free_at_us > now));
                if busy_exists {
                    break;
                }
                idle
            } else {
                admitted
            };
            let batch = self.batcher.pop_ready().expect("ready batch");
            let size = batch.requests.len();
            let node = pool
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    self.healthy_service_us(a, batch.class, size)
                        .total_cmp(&self.healthy_service_us(b, batch.class, size))
                        .then(a.cmp(&b))
                })
                .expect("pool non-empty");
            let probe = match self.nodes[node].breaker.admit(now) {
                BreakerAdmission::Probe => true,
                // `Refuse` only on the availability-override path.
                BreakerAdmission::Admit | BreakerAdmission::Refuse => false,
            };
            if probe {
                self.outcome.probes += 1;
                self.registry.counter_add("serve.probes", 1);
            }
            let expected = self.healthy_service_us(node, batch.class, size);
            let actual = self.actual_service_us(node, batch.class, size, now);
            let finish = now + actual;
            self.nodes[node].free_at_us = finish;
            self.nodes[node].current = Some(batch.id);
            for request in &batch.requests {
                self.registry
                    .histogram_record("serve.queue_wait_us", now - request.arrival_us);
            }
            self.registry.counter_add("serve.batches_dispatched", 1);
            self.registry
                .histogram_record("serve.batch_size", size as f64);
            self.outcome.batches.push(BatchRecord {
                id: batch.id,
                class: batch.class,
                node,
                size,
                start_us: now,
                finish_us: finish,
                probe,
                failed: false,
            });
            self.inflight.insert(
                batch.id,
                Inflight {
                    node,
                    class: batch.class,
                    requests: batch.requests,
                    start_us: now,
                    expected_us: expected,
                    actual_us: actual,
                    probe,
                    fpga_path: self.nodes[node].fpga,
                    record: self.outcome.batches.len() - 1,
                },
            );
            self.push_event(finish, EventKind::Completion { batch: batch.id });
            dispatched += 1;
        }
        dispatched
    }

    /// The dispatcher's placement model: healthy service time for a
    /// batch on a node. Deliberately gray-blind — slowdowns, lossy
    /// links and VF creep never appear here, only in actual timings;
    /// catching the divergence is the health monitor's job.
    fn healthy_service_us(&self, node: usize, class: usize, size: usize) -> f64 {
        let class = &self.cfg.classes[class];
        let compute = if self.nodes[node].fpga {
            class.fpga_batch_us(size)
        } else {
            class.cpu_batch_us(size)
        };
        compute + self.cluster.transfer_us(class.payload_bytes * size as u64)
    }

    /// What the batch actually costs, with every gray window applied.
    fn actual_service_us(&self, node: usize, class: usize, size: usize, start: f64) -> f64 {
        let spec = &self.cfg.classes[class];
        let state = &self.nodes[node];
        let slow = Self::window_factor(&state.slow, start);
        let link = Self::window_factor(&state.link, start);
        let compute = if state.fpga {
            spec.fpga_batch_us(size) * self.creep_factor(node, start)
        } else {
            spec.cpu_batch_us(size)
        };
        compute * slow + self.cluster.transfer_us(spec.payload_bytes * size as u64) * link
    }

    fn window_factor(windows: &[(f64, f64, f64)], t: f64) -> f64 {
        windows
            .iter()
            .filter(|(from, to, _)| t >= *from && t < *to)
            .map(|(_, _, factor)| *factor)
            .fold(1.0, f64::max)
    }

    fn creep_factor(&self, node: usize, t: f64) -> f64 {
        match self.nodes[node].creep {
            Some((onset, per_ms)) if t > onset => 1.0 + per_ms * (t - onset) / 1_000.0,
            _ => 1.0,
        }
    }

    // -- completions ---------------------------------------------------

    fn handle_completion(&mut self, batch: u64, now: f64) {
        // A missing entry means a fault already failed the batch; the
        // stale completion is a tombstone.
        let Some(inflight) = self.inflight.remove(&batch) else {
            return;
        };
        let node = inflight.node;
        self.nodes[node].current = None;
        let mut latency_sum = 0.0;
        for request in &inflight.requests {
            let latency = now - request.arrival_us;
            latency_sum += latency;
            self.outcome.completed += 1;
            self.outcome.tenants[request.tenant].completed += 1;
            self.outcome.latencies_us.push(latency);
            self.registry.histogram_record("serve.latency_us", latency);
            self.registry.counter_add("serve.requests_completed", 1);
            if latency > self.cfg.classes[request.class].deadline_us {
                self.outcome.slo_violations += 1;
                self.registry.counter_add("serve.slo_violations", 1);
            }
        }
        let size = inflight.requests.len();
        let inflation = if inflight.expected_us > 0.0 {
            inflight.actual_us / inflight.expected_us
        } else {
            1.0
        };
        self.monitor.record_task(node, inflation, now);
        if inflight.fpga_path {
            self.monitor
                .record_fpga(node, self.creep_factor(node, inflight.start_us), now);
        }
        if inflight.probe {
            if inflation <= self.cfg.health.straggler_ratio {
                self.nodes[node].breaker.probe_succeeded();
                self.registry
                    .event("serve.breaker_close", format!("node{node} probe healthy"));
            } else {
                self.nodes[node].breaker.probe_failed(now);
                self.outcome.breaker_opens += 1;
                self.registry.counter_add("serve.breaker_opens", 1);
                self.registry
                    .event("serve.breaker_open", format!("node{node} probe still slow"));
            }
        }
        self.apply_verdicts(now);
        // Feed the tuner what the active operating point achieved.
        let class = inflight.class;
        let active = self.batcher.max_batch(class);
        let key = config([("batch", active as i64)]);
        self.tuners[class].observe(&key, "latency_us", latency_sum / size as f64);
        self.tuners[class].observe(&key, "per_request_us", inflight.actual_us / size as f64);
        self.class_completions[class] += 1;
        if self.cfg.autotune && self.class_completions[class].is_multiple_of(self.cfg.retune_every)
        {
            self.retune(class, now);
        }
    }

    fn apply_verdicts(&mut self, now: f64) {
        for verdict in self.monitor.drain_new() {
            let node = verdict.node;
            if node >= self.nodes.len() || self.nodes[node].crashed {
                continue;
            }
            if self.nodes[node].breaker.state() == everest_health::BreakerState::Closed {
                self.nodes[node].breaker.trip(now);
                self.outcome.breaker_opens += 1;
                self.registry.counter_add("serve.breaker_opens", 1);
                self.registry.event(
                    "serve.breaker_open",
                    format!("node{node} convicted: {:?}", verdict.kind),
                );
            }
        }
    }

    fn retune(&mut self, class: usize, now: f64) {
        self.outcome.retunes += 1;
        self.registry.counter_add("serve.retunes", 1);
        let chosen = match self.tuners[class].best(&Features::new()) {
            Ok(best) => match best.get("batch") {
                Some(KnobValue::Int(n)) => (*n).max(1) as usize,
                _ => 1,
            },
            // Nothing meets the deadline: serve unbatched, the
            // lowest-latency point available.
            Err(_) => 1,
        };
        if chosen != self.batcher.max_batch(class) {
            self.batcher.set_max_batch(class, chosen);
            self.registry.event(
                "serve.retune",
                format!(
                    "class={} batch={} at={:.3}",
                    self.cfg.classes[class].name, chosen, now
                ),
            );
        }
    }

    // -- faults --------------------------------------------------------

    fn handle_fault(&mut self, index: usize, now: f64) {
        let spec = self.plan.faults()[index].clone();
        let node = spec.node;
        if node >= self.nodes.len() {
            return;
        }
        self.registry.counter_add("serve.faults", 1);
        self.registry.event("serve.fault", spec.describe());
        match spec.kind {
            FaultKind::NodeCrash => {
                self.nodes[node].crashed = true;
                self.nodes[node].fpga = false;
                self.fail_current(node, now);
            }
            FaultKind::LinkDegrade {
                factor,
                duration_us,
            }
            | FaultKind::GrayLink {
                factor,
                duration_us,
            } => {
                self.nodes[node].link.push((now, now + duration_us, factor));
            }
            FaultKind::SlowNode {
                factor,
                duration_us,
            } => {
                self.nodes[node].slow.push((now, now + duration_us, factor));
            }
            FaultKind::VfCreep { per_ms } => {
                if self.nodes[node].creep.is_none() {
                    self.nodes[node].creep = Some((now, per_ms));
                }
            }
            FaultKind::VfUnplug { .. } | FaultKind::PartialReconfigFail => {
                let lost_inflight = self.nodes[node].fpga
                    && self.nodes[node]
                        .current
                        .and_then(|b| self.inflight.get(&b))
                        .map(|i| i.fpga_path)
                        .unwrap_or(false);
                self.nodes[node].fpga = false;
                if lost_inflight {
                    self.fail_current(node, now);
                }
            }
            FaultKind::DmaTimeout | FaultKind::TransientKernelError | FaultKind::MemoryEcc => {
                self.fail_current(node, now);
            }
        }
    }

    /// Fails whatever batch is executing on `node` right now; its
    /// requests are terminal `Failed` and the eventual completion event
    /// finds a tombstone.
    fn fail_current(&mut self, node: usize, now: f64) {
        let Some(batch) = self.nodes[node].current.take() else {
            if !self.nodes[node].crashed {
                self.nodes[node].free_at_us = now;
            }
            return;
        };
        if let Some(inflight) = self.inflight.remove(&batch) {
            for request in &inflight.requests {
                self.fail(request);
            }
            self.outcome.batches[inflight.record].failed = true;
            self.outcome.batches[inflight.record].finish_us = now;
        }
        if !self.nodes[node].crashed {
            self.nodes[node].free_at_us = now;
        }
    }

    /// The whole cluster is gone: every queued or batched request is
    /// terminal `Failed` (conservation still holds; nothing vanishes).
    fn drain_all_failed(&mut self, _now: f64) {
        let queued = self.wfq.drain();
        for request in &queued {
            self.fail(request);
        }
        let batched = self.batcher.drain();
        for request in &batched {
            self.fail(request);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_faults::FaultSpec;

    fn small_config() -> ServeConfig {
        ServeConfig {
            seed: 7,
            offered_rps: 6_000.0,
            horizon_us: 60_000.0,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn run_is_deterministic() {
        let a = ServeEngine::new(small_config()).run();
        let b = ServeEngine::new(small_config()).run();
        assert_eq!(a, b);
        assert!(a.offered > 0);
        assert!(a.completed > 0);
    }

    #[test]
    fn outcome_is_conserved() {
        let outcome = ServeEngine::new(small_config()).run();
        assert!(outcome.conserved(), "conservation: {outcome:?}");
    }

    #[test]
    fn shed_rate_grows_with_offered_load() {
        let mut rates = Vec::new();
        for load in [4_000.0, 10_000.0, 20_000.0, 40_000.0] {
            let outcome = ServeEngine::new(ServeConfig {
                offered_rps: load,
                horizon_us: 100_000.0,
                ..ServeConfig::default()
            })
            .run();
            assert!(outcome.conserved());
            rates.push(outcome.shed_rate());
        }
        for pair in rates.windows(2) {
            assert!(
                pair[0] <= pair[1] + 1e-9,
                "shed rate must be monotone in load: {rates:?}"
            );
        }
        assert!(rates[3] > 0.3, "heavy overload must shed hard: {rates:?}");
    }

    #[test]
    fn batching_amortises_launch_overhead() {
        // Unit batches vs batch-8 ceilings at the same overload: the
        // batched run must complete more requests.
        let unbatched = ServeEngine::new(ServeConfig {
            batch: vec![BatchPolicy::new(1, 0.0), BatchPolicy::new(1, 0.0)],
            autotune: false,
            offered_rps: 20_000.0,
            horizon_us: 100_000.0,
            ..ServeConfig::default()
        })
        .run();
        let batched = ServeEngine::new(ServeConfig {
            autotune: false,
            offered_rps: 20_000.0,
            horizon_us: 100_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(
            batched.completed > unbatched.completed,
            "batched {} vs unbatched {}",
            batched.completed,
            unbatched.completed
        );
    }

    #[test]
    fn node_crash_fails_inflight_but_serving_continues() {
        let plan = FaultPlan::new(9).with_fault(FaultSpec {
            at_us: 20_000.0,
            node: 0,
            kind: FaultKind::NodeCrash,
        });
        let outcome = ServeEngine::new(small_config()).with_plan(plan).run();
        assert!(outcome.conserved());
        assert!(outcome.completed > 0, "survivors keep serving");
    }

    #[test]
    fn all_nodes_crashed_fails_the_backlog() {
        let mut plan = FaultPlan::new(11);
        for node in 0..4 {
            plan.push(FaultSpec {
                at_us: 10_000.0,
                node,
                kind: FaultKind::NodeCrash,
            });
        }
        let outcome = ServeEngine::new(small_config()).with_plan(plan).run();
        assert!(outcome.conserved());
        assert!(outcome.failed > 0, "post-crash admissions must fail");
        // No batch ever completes after the crash instant.
        for batch in &outcome.batches {
            assert!(batch.failed || batch.finish_us <= 10_000.0 + 1e-6);
        }
    }

    #[test]
    fn slow_node_trips_a_breaker() {
        let plan = FaultPlan::new(13).with_fault(FaultSpec {
            at_us: 5_000.0,
            node: 1,
            kind: FaultKind::SlowNode {
                factor: 8.0,
                duration_us: 150_000.0,
            },
        });
        let outcome = ServeEngine::new(ServeConfig {
            seed: 13,
            offered_rps: 12_000.0,
            horizon_us: 150_000.0,
            ..ServeConfig::default()
        })
        .with_plan(plan)
        .run();
        assert!(outcome.conserved());
        assert!(
            outcome.breaker_opens > 0,
            "an 8x straggler must be convicted: {outcome:?}"
        );
    }

    #[test]
    fn deadline_pressure_sheds_in_queue() {
        // One slow CPU-only node and a tight deadline: queued requests
        // lapse and are shed rather than served dead.
        let outcome = ServeEngine::new(ServeConfig {
            nodes: 1,
            classes: vec![KernelClass::new(
                "infer", 400.0, 40.0, 120.0, 2_000.0, 4_096,
            )],
            batch: vec![BatchPolicy::new(8, 400.0)],
            offered_rps: 8_000.0,
            horizon_us: 60_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved());
        assert!(outcome.shed_deadline > 0, "{outcome:?}");
    }

    #[test]
    fn autotuner_reacts_to_infeasible_latency() {
        // Impossible deadline: every batched point is infeasible once
        // observations arrive, so the tuner must fall back toward
        // unbatched operation.
        let outcome = ServeEngine::new(ServeConfig {
            classes: vec![KernelClass::new("infer", 400.0, 40.0, 120.0, 300.0, 4_096)],
            batch: vec![BatchPolicy::new(8, 400.0)],
            offered_rps: 6_000.0,
            horizon_us: 80_000.0,
            retune_every: 4,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved());
        assert!(outcome.retunes > 0);
        assert_eq!(outcome.final_max_batch, vec![1], "{outcome:?}");
    }

    #[test]
    fn statically_infeasible_class_is_fully_shed_at_the_door() {
        // Two classes: one carries a proven worst-case bound above its
        // deadline, the other a bound safely below. The infeasible
        // class must be shed in full — typed, at the door, before any
        // token or queue slot is spent — while the feasible class
        // serves normally and conservation still holds.
        let outcome = ServeEngine::new(ServeConfig {
            classes: vec![
                KernelClass::new("late", 400.0, 40.0, 120.0, 5_000.0, 4_096)
                    .with_static_bound(9_000.0),
                KernelClass::new("ok", 1_600.0, 160.0, 320.0, 20_000.0, 16_384)
                    .with_static_bound(1_000.0),
            ],
            offered_rps: 6_000.0,
            horizon_us: 60_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved(), "{outcome:?}");
        assert!(outcome.shed_static > 0, "{outcome:?}");
        assert!(outcome.completed > 0, "feasible class keeps serving");
        // Nothing of the infeasible class ever reached a batch.
        assert!(outcome.batches.iter().all(|b| b.class != 0));
    }

    #[test]
    fn quantiles_are_ordered() {
        let outcome = ServeEngine::new(small_config()).run();
        let p50 = outcome.latency_quantile(0.5).expect("completions");
        let p99 = outcome.latency_quantile(0.99).expect("completions");
        assert!(p50 <= p99);
        assert!(p50 > 0.0);
    }
}
