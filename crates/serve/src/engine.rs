//! The serving engine: a seeded discrete-event simulation that pushes
//! an open-loop arrival trace through admission control, weighted-fair
//! queueing and dynamic batching onto a heterogeneous cluster.
//!
//! # Determinism
//!
//! The engine is a pure function of its [`ServeConfig`] and
//! [`everest_faults::FaultPlan`]: the clock is virtual, every random
//! draw comes from forked [`everest_faults::DetRng`] substreams, the
//! event queue breaks timestamp ties by insertion sequence, and all
//! float orderings use `f64::total_cmp`. Two runs with the same inputs
//! produce identical [`ServeOutcome`]s — the property `basecamp serve`
//! replays and CI diffs byte-for-byte.
//!
//! # Hot path
//!
//! The event loop is the SDK's throughput ceiling (the `e16_serving`
//! bench measures it in wall events per second), so the engine keeps it
//! allocation- and string-free:
//!
//! * arrivals are not heap events — the sorted trace is walked with a
//!   cursor, merged against [`everest_runtime::EventQueue::peek_time`]
//!   (arrivals win timestamp ties, matching their insertion order in
//!   the old all-events-in-one-heap design);
//! * dynamic events (batch timeouts, completions, faults) live in an
//!   indexed [`everest_runtime::EventQueue`], and the engine *cancels*
//!   events that can no longer matter — the wait-timeout of a batch
//!   that closed on size, the completion of a batch a fault already
//!   failed — instead of popping tombstones;
//! * `serve.*` telemetry goes through pre-resolved
//!   [`everest_telemetry::CounterHandle`]s (no name lookups), and the
//!   two per-request histograms are deterministically sampled;
//! * the autotuner is fed through resolved [`TunerSlot`]s, cached per
//!   class until a retune changes the active operating point.
//!
//! Cancelling stale events is outcome-preserving: a stale pop only
//! re-runs the pull/dispatch pump at a later virtual time, and the
//! pump is at a fixed point whenever no node freed and no breaker
//! cooldown elapsed in between — conditions that can only change at a
//! *live* event. The one observable difference is `end_us`, which used
//! to be the time of the last popped event; the engine now tracks the
//! maximum scheduled time explicitly so `end_us` is unchanged.
//!
//! # Integration
//!
//! * `everest-health` — per-node [`CircuitBreaker`]s make suspect nodes
//!   ineligible for dispatch; a [`HealthMonitor`] convicts gray
//!   failures from achieved batch inflation and trips the breakers.
//! * `everest-faults` — a [`FaultPlan`] injects crashes, transient
//!   errors and gray degradations into the run; the dispatcher's
//!   placement model stays gray-blind while actual timings inflate.
//! * `everest-autotuner` — one mARGOt tuner per kernel class retunes
//!   the batch-size ceiling online, minimising per-request cost under
//!   the class's latency SLO.
//! * `everest-telemetry` — `serve.*` counters, gauges, histograms and
//!   events (see `docs/OBSERVABILITY.md`).

use std::sync::Arc;

use everest_autotuner::{
    config, Autotuner, Constraint, Features, KnobValue, Objective, OperatingPoint, TunerSlot,
};
use everest_faults::{FaultKind, FaultPlan};
use everest_health::{
    Admission as BreakerAdmission, BreakerConfig, CircuitBreaker, HealthConfig, HealthMonitor,
};
use everest_runtime::cluster::Cluster;
use everest_runtime::{EventQueue, EventToken};
use everest_telemetry::{CounterHandle, GaugeHandle, HistogramHandle, Registry};

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::batcher::{BatchPolicy, DynamicBatcher, OfferOutcome};
use crate::request::{ArrivalTrace, KernelClass, Request, ShedReason, TenantSpec};
use crate::wfq::WeightedFairQueue;

/// Full configuration of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Seed for the arrival trace and every derived substream.
    pub seed: u64,
    /// Cluster size; the second half of the nodes carry FPGAs
    /// (`Cluster::everest(nodes - nodes/2, nodes/2, cores)`).
    pub nodes: usize,
    /// CPU cores per node.
    pub cores: u32,
    /// The tenants sharing the cluster.
    pub tenants: Vec<TenantSpec>,
    /// The kernel classes requests may target.
    pub classes: Vec<KernelClass>,
    /// Per-class batching policy (parallel to `classes`).
    pub batch: Vec<BatchPolicy>,
    /// Admission knobs.
    pub admission: AdmissionConfig,
    /// Aggregate offered load, requests per second (split across
    /// tenants by weight).
    pub offered_rps: f64,
    /// Arrival horizon on the virtual clock, microseconds. The run
    /// itself continues past the horizon until the backlog drains.
    pub horizon_us: f64,
    /// Whether the per-class autotuners retune the batch ceiling.
    pub autotune: bool,
    /// Retune cadence, in completed batches per class.
    pub retune_every: u64,
    /// Circuit-breaker tuning for dispatch eligibility.
    pub breaker: BreakerConfig,
    /// Health-monitor tuning (gray-failure conviction thresholds).
    pub health: HealthConfig,
}

impl Default for ServeConfig {
    /// A 4-node (2 CPU + 2 FPGA) cluster serving three weighted
    /// tenants (gold 4×, silver 2×, bronze 1×) with two kernel
    /// classes, 10 000 rps offered over a 200 ms horizon.
    fn default() -> ServeConfig {
        ServeConfig {
            seed: 42,
            nodes: 4,
            cores: 4,
            tenants: vec![
                TenantSpec::new("gold", 4.0, 8_000.0, 64.0),
                TenantSpec::new("silver", 2.0, 4_000.0, 32.0),
                TenantSpec::new("bronze", 1.0, 2_000.0, 16.0),
            ],
            classes: vec![
                KernelClass::new("infer", 400.0, 40.0, 120.0, 5_000.0, 4_096),
                KernelClass::new("analytics", 1_600.0, 160.0, 320.0, 20_000.0, 16_384),
            ],
            batch: vec![BatchPolicy::new(8, 400.0), BatchPolicy::new(8, 800.0)],
            admission: AdmissionConfig::default(),
            offered_rps: 10_000.0,
            horizon_us: 200_000.0,
            autotune: true,
            retune_every: 16,
            breaker: BreakerConfig::default(),
            health: HealthConfig::default(),
        }
    }
}

/// One dispatched batch, as recorded in the replay trace (dispatch
/// order; times in virtual µs).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Batcher-unique id.
    pub id: u64,
    /// Kernel-class index.
    pub class: usize,
    /// Serving node index.
    pub node: usize,
    /// Requests coalesced into the batch.
    pub size: usize,
    /// Dispatch time.
    pub start_us: f64,
    /// Completion (or failure) time.
    pub finish_us: f64,
    /// Whether this was a half-open breaker probe.
    pub probe: bool,
    /// Whether a fault killed the batch before completion.
    pub failed: bool,
}

/// Per-tenant accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// WFQ weight (copied for reporting).
    pub weight: f64,
    /// Requests offered by the arrival trace.
    pub offered: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed (any [`ShedReason`]).
    pub shed: u64,
    /// Requests lost to faults.
    pub failed: u64,
}

/// The result of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Requests offered by the arrival trace.
    pub offered: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests lost to faults after admission.
    pub failed: u64,
    /// Sheds at the door: empty token bucket.
    pub shed_rate_limited: u64,
    /// Sheds at the door: queue-depth backpressure.
    pub shed_queue_full: u64,
    /// Sheds at the door: class statically proven unable to meet its
    /// deadline (worst-case bound from `everest-analysis` exceeds the
    /// class deadline).
    pub shed_static: u64,
    /// Sheds in queue: class deadline lapsed before dispatch.
    pub shed_deadline: u64,
    /// Completions that finished past their class deadline.
    pub slo_violations: u64,
    /// Breaker trips during the run.
    pub breaker_opens: u64,
    /// Half-open probe dispatches.
    pub probes: u64,
    /// Autotuner retune evaluations.
    pub retunes: u64,
    /// Per-tenant accounting, in tenant-table order.
    pub tenants: Vec<TenantOutcome>,
    /// Every dispatched batch, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// End-to-end latency of every completion, in completion order.
    pub latencies_us: Vec<f64>,
    /// Arrival horizon, microseconds.
    pub horizon_us: f64,
    /// Virtual time the last event settled, microseconds.
    pub end_us: f64,
    /// Final autotuned batch ceiling per class.
    pub final_max_batch: Vec<usize>,
}

impl ServeOutcome {
    /// Requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate_limited + self.shed_queue_full + self.shed_static + self.shed_deadline
    }

    /// Shed fraction of offered load, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed_total() as f64 / self.offered as f64
        }
    }

    /// Completed requests per second of virtual run time.
    pub fn throughput_rps(&self) -> f64 {
        if self.end_us <= 0.0 {
            0.0
        } else {
            self.completed as f64 * 1.0e6 / self.end_us
        }
    }

    /// Exact (nearest-rank) latency quantile, `q` in `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.latencies_us.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.max(1).min(sorted.len()) - 1])
    }

    /// Mean end-to-end latency, microseconds.
    pub fn mean_latency_us(&self) -> Option<f64> {
        if self.latencies_us.is_empty() {
            None
        } else {
            Some(self.latencies_us.iter().sum::<f64>() / self.latencies_us.len() as f64)
        }
    }

    /// The conservation invariant: every offered request reached
    /// exactly one terminal state, globally and per tenant.
    pub fn conserved(&self) -> bool {
        let door = self.offered
            == self.admitted + self.shed_rate_limited + self.shed_queue_full + self.shed_static;
        let queue = self.admitted == self.completed + self.failed + self.shed_deadline;
        let tenants = self.tenants.iter().all(|t| {
            t.offered == t.completed + t.shed + t.failed && t.admitted >= t.completed + t.failed
        });
        let sums = self.offered == self.tenants.iter().map(|t| t.offered).sum::<u64>()
            && self.completed == self.tenants.iter().map(|t| t.completed).sum::<u64>()
            && self.failed == self.tenants.iter().map(|t| t.failed).sum::<u64>()
            && self.shed_total() == self.tenants.iter().map(|t| t.shed).sum::<u64>()
            && self.completed as usize == self.latencies_us.len();
        door && queue && tenants && sums
    }
}

/// The serving engine. Build one from a [`ServeConfig`], optionally
/// attach a fault plan and a shared telemetry registry, then
/// [`ServeEngine::run`].
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    plan: FaultPlan,
    registry: Arc<Registry>,
}

impl ServeEngine {
    /// An engine with no faults and a private telemetry registry.
    pub fn new(config: ServeConfig) -> ServeEngine {
        let seed = config.seed;
        ServeEngine {
            config,
            plan: FaultPlan::new(seed),
            registry: Registry::new(),
        }
    }

    /// Injects a chaos plan into the run.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> ServeEngine {
        self.plan = plan;
        self
    }

    /// Records telemetry into a shared registry (e.g. the process
    /// global behind `basecamp --trace`).
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> ServeEngine {
        self.registry = registry;
        self
    }

    /// Runs the simulation to completion (arrivals exhausted and the
    /// admitted backlog fully drained).
    pub fn run(&self) -> ServeOutcome {
        let span = self.registry.span("serve.run");
        span.arg("seed", self.config.seed as f64)
            .arg("nodes", self.config.nodes as f64)
            .arg("offered_rps", self.config.offered_rps);
        let sim = Sim::new(&self.config, &self.plan, self.registry.clone());
        let outcome = sim.run();
        span.arg("completed", outcome.completed as f64)
            .arg("shed", outcome.shed_total() as f64)
            .record_sim_us(outcome.end_us);
        outcome
    }
}

// ---------------------------------------------------------------------
// Events and telemetry
// ---------------------------------------------------------------------

/// Dynamic events on the indexed queue. Arrivals are deliberately not
/// events: the sorted trace is merged in by cursor.
#[derive(Debug)]
enum EventKind {
    BatchTimeout { class: usize, batch: u64 },
    Completion { batch: u64 },
    Fault(usize),
}

/// Every Nth per-request observation lands in the `serve.queue_wait_us`
/// and `serve.latency_us` histograms (deterministic, not randomized —
/// replays stay byte-identical). Counters and the outcome's exact
/// latency vector are never sampled.
const REQUEST_SAMPLE_EVERY: u64 = 8;

/// Pre-resolved `serve.*` instruments: one name lookup each at
/// construction, atomic increments on the hot path.
#[derive(Debug)]
struct ServeMetrics {
    requests_offered: CounterHandle,
    requests_admitted: CounterHandle,
    requests_completed: CounterHandle,
    requests_shed: CounterHandle,
    requests_failed: CounterHandle,
    /// Indexed by [`ShedReason::index`].
    shed_reason: [CounterHandle; ShedReason::COUNT],
    slo_violations: CounterHandle,
    batches_dispatched: CounterHandle,
    probes: CounterHandle,
    breaker_opens: CounterHandle,
    retunes: CounterHandle,
    faults: CounterHandle,
    queue_depth: GaugeHandle,
    queue_wait_us: HistogramHandle,
    latency_us: HistogramHandle,
    batch_size: HistogramHandle,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            requests_offered: registry.counter_handle("serve.requests_offered"),
            requests_admitted: registry.counter_handle("serve.requests_admitted"),
            requests_completed: registry.counter_handle("serve.requests_completed"),
            requests_shed: registry.counter_handle("serve.requests_shed"),
            requests_failed: registry.counter_handle("serve.requests_failed"),
            shed_reason: [
                registry.counter_handle("serve.shed.rate_limited"),
                registry.counter_handle("serve.shed.queue_full"),
                registry.counter_handle("serve.shed.deadline_lapsed"),
                registry.counter_handle("serve.shed.statically_infeasible"),
            ],
            slo_violations: registry.counter_handle("serve.slo_violations"),
            batches_dispatched: registry.counter_handle("serve.batches_dispatched"),
            probes: registry.counter_handle("serve.probes"),
            breaker_opens: registry.counter_handle("serve.breaker_opens"),
            retunes: registry.counter_handle("serve.retunes"),
            faults: registry.counter_handle("serve.faults"),
            queue_depth: registry.gauge_handle("serve.queue_depth"),
            queue_wait_us: registry
                .histogram_handle_sampled("serve.queue_wait_us", REQUEST_SAMPLE_EVERY),
            latency_us: registry.histogram_handle_sampled("serve.latency_us", REQUEST_SAMPLE_EVERY),
            batch_size: registry.histogram_handle("serve.batch_size"),
        }
    }
}

// ---------------------------------------------------------------------
// Simulation state
// ---------------------------------------------------------------------

#[derive(Debug)]
struct NodeState {
    fpga: bool,
    crashed: bool,
    free_at_us: f64,
    current: Option<u64>,
    breaker: CircuitBreaker,
    /// Gray slowdown windows `(from_us, to_us, factor)`.
    slow: Vec<(f64, f64, f64)>,
    /// Link degradation windows `(from_us, to_us, factor)`.
    link: Vec<(f64, f64, f64)>,
    /// Progressive VF degradation `(onset_us, per_ms)`.
    creep: Option<(f64, f64)>,
}

#[derive(Debug)]
struct Inflight {
    node: usize,
    class: usize,
    requests: Vec<Request>,
    start_us: f64,
    expected_us: f64,
    actual_us: f64,
    probe: bool,
    fpga_path: bool,
    record: usize,
    /// The scheduled completion event, cancelled if a fault fails the
    /// batch first.
    completion: EventToken,
}

/// Cached autotuner slots for one class: valid while the active batch
/// ceiling is unchanged.
#[derive(Debug, Clone, Copy)]
struct SlotCache {
    batch: usize,
    latency: TunerSlot,
    per_request: TunerSlot,
}

struct Sim<'a> {
    cfg: &'a ServeConfig,
    cluster: Cluster,
    registry: Arc<Registry>,
    queue: EventQueue<EventKind>,
    arrivals: Vec<Request>,
    cursor: usize,
    /// Max time any dynamic event was ever scheduled for; keeps
    /// `end_us` identical whether or not stale events were cancelled.
    max_sched_us: f64,
    admission: AdmissionController,
    wfq: WeightedFairQueue,
    batcher: DynamicBatcher,
    nodes: Vec<NodeState>,
    /// Indexed by batch id (batcher ids are dense from 0).
    inflight: Vec<Option<Inflight>>,
    /// Pending wait-timeout per open batch, indexed by batch id.
    timeout_tokens: Vec<Option<EventToken>>,
    monitor: HealthMonitor,
    tuners: Vec<Autotuner>,
    tuner_cache: Vec<Option<SlotCache>>,
    class_completions: Vec<u64>,
    metrics: ServeMetrics,
    /// Last depth published to the `serve.queue_depth` gauge; the
    /// store is skipped while the depth is unchanged.
    last_depth: usize,
    /// Dispatch scratch (reused across pumps; no per-batch allocation).
    scratch_idle: Vec<usize>,
    scratch_admitted: Vec<usize>,
    plan: &'a FaultPlan,
    outcome: ServeOutcome,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a ServeConfig, plan: &'a FaultPlan, registry: Arc<Registry>) -> Sim<'a> {
        assert_eq!(
            cfg.classes.len(),
            cfg.batch.len(),
            "one batch policy per kernel class"
        );
        assert!(cfg.nodes > 0, "serving needs at least one node");
        assert!(!cfg.tenants.is_empty(), "serving needs at least one tenant");
        let fpga_nodes = cfg.nodes / 2;
        let cluster = Cluster::everest(cfg.nodes - fpga_nodes, fpga_nodes, cfg.cores);
        let nodes: Vec<NodeState> = cluster
            .nodes
            .iter()
            .map(|spec| NodeState {
                fpga: spec.fpga.is_some(),
                crashed: false,
                free_at_us: 0.0,
                current: None,
                breaker: CircuitBreaker::new(cfg.breaker),
                slow: Vec::new(),
                link: Vec::new(),
                creep: None,
            })
            .collect();
        let weights: Vec<f64> = cfg.tenants.iter().map(|t| t.weight).collect();
        let monitor = HealthMonitor::new(cfg.nodes, cfg.health.clone(), cfg.seed, registry.clone());
        let tuners = cfg
            .classes
            .iter()
            .zip(&cfg.batch)
            .map(|(class, policy)| {
                Self::class_tuner(class, policy, &cluster, fpga_nodes > 0, &registry)
            })
            .collect();
        let arrivals = ArrivalTrace::synthesize(
            cfg.seed,
            &cfg.tenants,
            &cfg.classes,
            cfg.horizon_us,
            cfg.offered_rps,
        )
        .into_requests();
        let outcome = ServeOutcome {
            offered: 0,
            admitted: 0,
            completed: 0,
            failed: 0,
            shed_rate_limited: 0,
            shed_queue_full: 0,
            shed_static: 0,
            shed_deadline: 0,
            slo_violations: 0,
            breaker_opens: 0,
            probes: 0,
            retunes: 0,
            tenants: cfg
                .tenants
                .iter()
                .map(|t| TenantOutcome {
                    name: t.name.clone(),
                    weight: t.weight,
                    offered: 0,
                    admitted: 0,
                    completed: 0,
                    shed: 0,
                    failed: 0,
                })
                .collect(),
            batches: Vec::new(),
            latencies_us: Vec::new(),
            horizon_us: cfg.horizon_us,
            end_us: 0.0,
            final_max_batch: cfg.batch.iter().map(|p| p.max_batch).collect(),
        };
        let metrics = ServeMetrics::new(&registry);
        Sim {
            cfg,
            cluster,
            registry,
            queue: EventQueue::with_capacity(64 + plan.len()),
            arrivals,
            cursor: 0,
            max_sched_us: 0.0,
            admission: AdmissionController::new(&cfg.tenants, &cfg.classes, &cfg.admission),
            wfq: WeightedFairQueue::new(&weights),
            batcher: DynamicBatcher::new(&cfg.batch),
            nodes,
            inflight: Vec::new(),
            timeout_tokens: Vec::new(),
            monitor,
            tuners,
            tuner_cache: vec![None; cfg.classes.len()],
            class_completions: vec![0; cfg.classes.len()],
            metrics,
            last_depth: usize::MAX,
            scratch_idle: Vec::with_capacity(cfg.nodes),
            scratch_admitted: Vec::with_capacity(cfg.nodes),
            plan,
            outcome,
        }
    }

    /// Design-time operating points for one class: batch sizes in
    /// powers of two up to the configured ceiling, expected latency =
    /// half the wait window plus batch service, expected per-request
    /// cost = service amortised over the batch. The tuner minimises
    /// per-request cost subject to the class deadline.
    fn class_tuner(
        class: &KernelClass,
        policy: &BatchPolicy,
        cluster: &Cluster,
        has_fpga: bool,
        registry: &Arc<Registry>,
    ) -> Autotuner {
        let mut tuner = Autotuner::new().with_registry(registry.clone());
        let mut sizes = Vec::new();
        let mut b = 1;
        while b < policy.max_batch {
            sizes.push(b);
            b *= 2;
        }
        sizes.push(policy.max_batch);
        for &n in &sizes {
            let compute = if has_fpga {
                class.fpga_batch_us(n)
            } else {
                class.cpu_batch_us(n)
            };
            let service = compute + cluster.transfer_us(class.payload_bytes * n as u64);
            let wait = if n <= 1 {
                0.0
            } else {
                0.5 * policy.max_wait_us
            };
            tuner.add_point(
                OperatingPoint::new(config([("batch", n as i64)]))
                    .expect("latency_us", wait + service)
                    .expect("per_request_us", service / n as f64),
            );
        }
        tuner.set_objective(Objective::minimize("per_request_us"));
        tuner.add_constraint(Constraint::le("latency_us", class.deadline_us));
        tuner
    }

    /// Get-or-grow a dense `Option` slot, used for the by-batch-id
    /// side tables (batcher ids are assigned densely from zero).
    fn slot<T>(table: &mut Vec<Option<T>>, id: u64) -> &mut Option<T> {
        let id = id as usize;
        if table.len() <= id {
            table.resize_with(id + 1, || None);
        }
        &mut table[id]
    }

    fn push_event(&mut self, at_us: f64, kind: EventKind) -> EventToken {
        self.max_sched_us = self.max_sched_us.max(at_us);
        self.queue.push(at_us, kind)
    }

    fn run(mut self) -> ServeOutcome {
        for (index, fault) in self.plan.faults().iter().enumerate() {
            self.push_event(fault.at_us, EventKind::Fault(index));
        }
        if self.cfg.autotune {
            for class in 0..self.cfg.classes.len() {
                self.retune(class, 0.0);
            }
        }
        let mut now = 0.0_f64;
        loop {
            // Merge the arrival cursor against the event queue;
            // arrivals win timestamp ties (they were pushed first in
            // the single-heap design, so they carried the lowest seqs).
            let arrival_due = self.cursor < self.arrivals.len()
                && self
                    .queue
                    .peek_time()
                    .is_none_or(|t| self.arrivals[self.cursor].arrival_us <= t);
            if arrival_due {
                let request = self.arrivals[self.cursor];
                self.cursor += 1;
                now = now.max(request.arrival_us);
                if !self.handle_arrival(request, now) {
                    // Shed at the door: no queue, batcher or node state
                    // changed, so the pump below would run straight to
                    // its entry fixed point. Skipping it here keeps the
                    // (dominant, at saturation) shed path free of the
                    // pull/dispatch scan. The one time-dependent admit
                    // condition — a breaker cooldown expiring — is
                    // re-checked at the next state-changing event.
                    continue;
                }
            } else if let Some((at_us, kind)) = self.queue.pop() {
                now = now.max(at_us);
                match kind {
                    EventKind::BatchTimeout { class, batch } => {
                        *Self::slot(&mut self.timeout_tokens, batch) = None;
                        self.batcher.expire(class, batch, now);
                    }
                    EventKind::Completion { batch } => self.handle_completion(batch, now),
                    EventKind::Fault(index) => self.handle_fault(index, now),
                }
            } else {
                break;
            }
            self.pump(now);
            let depth = self.queue_depth();
            if depth != self.last_depth {
                self.last_depth = depth;
                self.metrics.queue_depth.set(depth as f64);
            }
        }
        debug_assert!(self.wfq.is_empty(), "fair queues drained");
        debug_assert_eq!(self.batcher.pending(), 0, "batcher drained");
        debug_assert!(
            self.inflight.iter().all(Option::is_none),
            "no work in flight"
        );
        self.flush_metrics();
        self.outcome.end_us = now.max(self.max_sched_us).max(self.cfg.horizon_us);
        self.outcome.final_max_batch = (0..self.cfg.classes.len())
            .map(|c| self.batcher.max_batch(c))
            .collect();
        self.outcome
    }

    fn queue_depth(&self) -> usize {
        self.wfq.len() + self.batcher.pending()
    }

    /// Publishes the counters whose totals mirror [`ServeOutcome`]
    /// fields exactly. Publishing once after the drain instead of
    /// incrementing per request keeps the final registry values
    /// identical while dropping several atomic adds from every
    /// arrival and completion. `serve.faults` (no outcome mirror) and
    /// the histograms are still recorded at event time.
    fn flush_metrics(&self) {
        let o = &self.outcome;
        self.metrics.requests_offered.add(o.offered);
        self.metrics.requests_admitted.add(o.admitted);
        self.metrics.requests_completed.add(o.completed);
        self.metrics.requests_shed.add(o.shed_total());
        self.metrics.requests_failed.add(o.failed);
        self.metrics.shed_reason[ShedReason::RateLimited.index()].add(o.shed_rate_limited);
        self.metrics.shed_reason[ShedReason::QueueFull.index()].add(o.shed_queue_full);
        self.metrics.shed_reason[ShedReason::DeadlineLapsed.index()].add(o.shed_deadline);
        self.metrics.shed_reason[ShedReason::StaticallyInfeasible.index()].add(o.shed_static);
        self.metrics.slo_violations.add(o.slo_violations);
        self.metrics.batches_dispatched.add(o.batches.len() as u64);
        self.metrics.probes.add(o.probes);
        self.metrics.breaker_opens.add(o.breaker_opens);
        self.metrics.retunes.add(o.retunes);
    }

    // -- arrivals ------------------------------------------------------

    /// Returns `true` when the request was admitted (and so changed
    /// queue state); `false` when it was shed at the door.
    fn handle_arrival(&mut self, request: Request, now: f64) -> bool {
        self.outcome.offered += 1;
        self.outcome.tenants[request.tenant].offered += 1;
        let depth = self.queue_depth();
        match self
            .admission
            .admit(request.tenant, request.class, now, depth)
        {
            Ok(()) => {
                self.outcome.admitted += 1;
                self.outcome.tenants[request.tenant].admitted += 1;
                self.wfq.push(request);
                true
            }
            Err(reason) => {
                self.shed(&request, reason);
                false
            }
        }
    }

    fn shed(&mut self, request: &Request, reason: ShedReason) {
        match reason {
            ShedReason::RateLimited => self.outcome.shed_rate_limited += 1,
            ShedReason::QueueFull => self.outcome.shed_queue_full += 1,
            ShedReason::StaticallyInfeasible => self.outcome.shed_static += 1,
            ShedReason::DeadlineLapsed => self.outcome.shed_deadline += 1,
        }
        self.outcome.tenants[request.tenant].shed += 1;
    }

    fn fail(&mut self, request: &Request) {
        self.outcome.failed += 1;
        self.outcome.tenants[request.tenant].failed += 1;
    }

    // -- the pump: queues → batcher → nodes ----------------------------

    /// Work-conserving transfer: shed lapsed requests, keep the batcher
    /// stocked (bounded so WFQ backlog builds queue-depth backpressure
    /// instead of hiding inside batches), dispatch ready batches onto
    /// idle breaker-admitted nodes. Runs to a fixed point at each event.
    fn pump(&mut self, now: f64) {
        if self.nodes.iter().all(|n| n.crashed) {
            self.drain_all_failed(now);
            return;
        }
        loop {
            let pulled = self.pull(now);
            let dispatched = self.dispatch(now);
            if pulled == 0 && dispatched == 0 {
                break;
            }
        }
    }

    fn pull(&mut self, now: f64) -> usize {
        let mut pulled = 0;
        while self.batcher.ready_len() < self.nodes.len() {
            let Some(request) = self.wfq.pop() else {
                break;
            };
            pulled += 1;
            let class = request.class;
            if now > request.arrival_us + self.cfg.classes[class].deadline_us {
                self.shed(&request, ShedReason::DeadlineLapsed);
                continue;
            }
            match self.batcher.offer(request, now) {
                OfferOutcome::Opened(batch) => {
                    let deadline = now + self.batcher.max_wait_us(class);
                    let token = self.push_event(deadline, EventKind::BatchTimeout { class, batch });
                    *Self::slot(&mut self.timeout_tokens, batch) = Some(token);
                }
                OfferOutcome::Closed(batch) => {
                    // Closed on size: the wait-timeout (if one was ever
                    // scheduled) can no longer matter — drop it from
                    // the queue instead of popping a tombstone later.
                    if let Some(token) = Self::slot(&mut self.timeout_tokens, batch).take() {
                        self.queue.cancel(token);
                    }
                }
                OfferOutcome::Joined => {}
            }
        }
        pulled
    }

    fn dispatch(&mut self, now: f64) -> usize {
        let mut dispatched = 0;
        while self.batcher.ready_len() > 0 {
            self.scratch_idle.clear();
            self.scratch_admitted.clear();
            for index in 0..self.nodes.len() {
                let node = &self.nodes[index];
                if node.crashed || node.current.is_some() || node.free_at_us > now {
                    continue;
                }
                let admitted = node.breaker.peek(now) != BreakerAdmission::Refuse;
                self.scratch_idle.push(index);
                if admitted {
                    self.scratch_admitted.push(index);
                }
            }
            if self.scratch_idle.is_empty() {
                break;
            }
            let use_idle = if self.scratch_admitted.is_empty() {
                // Every idle node is breaker-refused. If some other
                // non-crashed node is still working, wait for it; if the
                // whole surviving cluster is refused, availability beats
                // isolation — dispatch anyway rather than deadlock.
                let busy_exists = self
                    .nodes
                    .iter()
                    .any(|n| !n.crashed && (n.current.is_some() || n.free_at_us > now));
                if busy_exists {
                    break;
                }
                true
            } else {
                false
            };
            let batch = self.batcher.pop_ready().expect("ready batch");
            let size = batch.requests.len();
            let pool = if use_idle {
                &self.scratch_idle
            } else {
                &self.scratch_admitted
            };
            let node = pool
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    self.healthy_service_us(a, batch.class, size)
                        .total_cmp(&self.healthy_service_us(b, batch.class, size))
                        .then(a.cmp(&b))
                })
                .expect("pool non-empty");
            let probe = match self.nodes[node].breaker.admit(now) {
                BreakerAdmission::Probe => true,
                // `Refuse` only on the availability-override path.
                BreakerAdmission::Admit | BreakerAdmission::Refuse => false,
            };
            if probe {
                self.outcome.probes += 1;
            }
            let expected = self.healthy_service_us(node, batch.class, size);
            let actual = self.actual_service_us(node, batch.class, size, now);
            let finish = now + actual;
            self.nodes[node].free_at_us = finish;
            self.nodes[node].current = Some(batch.id);
            for request in &batch.requests {
                self.metrics.queue_wait_us.record(now - request.arrival_us);
            }
            self.metrics.batch_size.record(size as f64);
            self.outcome.batches.push(BatchRecord {
                id: batch.id,
                class: batch.class,
                node,
                size,
                start_us: now,
                finish_us: finish,
                probe,
                failed: false,
            });
            let completion = self.push_event(finish, EventKind::Completion { batch: batch.id });
            *Self::slot(&mut self.inflight, batch.id) = Some(Inflight {
                node,
                class: batch.class,
                requests: batch.requests,
                start_us: now,
                expected_us: expected,
                actual_us: actual,
                probe,
                fpga_path: self.nodes[node].fpga,
                record: self.outcome.batches.len() - 1,
                completion,
            });
            dispatched += 1;
        }
        dispatched
    }

    /// The dispatcher's placement model: healthy service time for a
    /// batch on a node. Deliberately gray-blind — slowdowns, lossy
    /// links and VF creep never appear here, only in actual timings;
    /// catching the divergence is the health monitor's job.
    fn healthy_service_us(&self, node: usize, class: usize, size: usize) -> f64 {
        let class = &self.cfg.classes[class];
        let compute = if self.nodes[node].fpga {
            class.fpga_batch_us(size)
        } else {
            class.cpu_batch_us(size)
        };
        compute + self.cluster.transfer_us(class.payload_bytes * size as u64)
    }

    /// What the batch actually costs, with every gray window applied.
    fn actual_service_us(&self, node: usize, class: usize, size: usize, start: f64) -> f64 {
        let spec = &self.cfg.classes[class];
        let state = &self.nodes[node];
        let slow = Self::window_factor(&state.slow, start);
        let link = Self::window_factor(&state.link, start);
        let compute = if state.fpga {
            spec.fpga_batch_us(size) * self.creep_factor(node, start)
        } else {
            spec.cpu_batch_us(size)
        };
        compute * slow + self.cluster.transfer_us(spec.payload_bytes * size as u64) * link
    }

    fn window_factor(windows: &[(f64, f64, f64)], t: f64) -> f64 {
        windows
            .iter()
            .filter(|(from, to, _)| t >= *from && t < *to)
            .map(|(_, _, factor)| *factor)
            .fold(1.0, f64::max)
    }

    fn creep_factor(&self, node: usize, t: f64) -> f64 {
        match self.nodes[node].creep {
            Some((onset, per_ms)) if t > onset => 1.0 + per_ms * (t - onset) / 1_000.0,
            _ => 1.0,
        }
    }

    // -- completions ---------------------------------------------------

    fn handle_completion(&mut self, batch: u64, now: f64) {
        let Some(inflight) = Self::slot(&mut self.inflight, batch).take() else {
            // A fault already failed the batch and cancelled its
            // completion; only a reused slot can land here.
            return;
        };
        let node = inflight.node;
        self.nodes[node].current = None;
        let mut latency_sum = 0.0;
        for request in &inflight.requests {
            let latency = now - request.arrival_us;
            latency_sum += latency;
            self.outcome.completed += 1;
            self.outcome.tenants[request.tenant].completed += 1;
            self.outcome.latencies_us.push(latency);
            self.metrics.latency_us.record(latency);
            if latency > self.cfg.classes[request.class].deadline_us {
                self.outcome.slo_violations += 1;
            }
        }
        let size = inflight.requests.len();
        let inflation = if inflight.expected_us > 0.0 {
            inflight.actual_us / inflight.expected_us
        } else {
            1.0
        };
        self.monitor.record_task(node, inflation, now);
        if inflight.fpga_path {
            self.monitor
                .record_fpga(node, self.creep_factor(node, inflight.start_us), now);
        }
        if inflight.probe {
            if inflation <= self.cfg.health.straggler_ratio {
                self.nodes[node].breaker.probe_succeeded();
                self.registry
                    .event("serve.breaker_close", format!("node{node} probe healthy"));
            } else {
                self.nodes[node].breaker.probe_failed(now);
                self.outcome.breaker_opens += 1;
                self.registry
                    .event("serve.breaker_open", format!("node{node} probe still slow"));
            }
        }
        self.apply_verdicts(now);
        // Feed the tuner what the active operating point achieved,
        // through slots resolved once per (class, active-ceiling).
        let class = inflight.class;
        let cache = self.tuner_slots(class);
        self.tuners[class].observe_slot(cache.latency, latency_sum / size as f64);
        self.tuners[class].observe_slot(cache.per_request, inflight.actual_us / size as f64);
        self.class_completions[class] += 1;
        if self.cfg.autotune && self.class_completions[class].is_multiple_of(self.cfg.retune_every)
        {
            self.retune(class, now);
        }
    }

    /// Resolved tuner slots for a class's *active* operating point.
    /// Cache hit while the batch ceiling is unchanged; a retune that
    /// moves the ceiling misses once and re-resolves.
    fn tuner_slots(&mut self, class: usize) -> SlotCache {
        let active = self.batcher.max_batch(class);
        if let Some(cache) = self.tuner_cache[class] {
            if cache.batch == active {
                return cache;
            }
        }
        let key = config([("batch", active as i64)]);
        let cache = SlotCache {
            batch: active,
            latency: self.tuners[class].resolve_slot(&key, "latency_us"),
            per_request: self.tuners[class].resolve_slot(&key, "per_request_us"),
        };
        self.tuner_cache[class] = Some(cache);
        cache
    }

    fn apply_verdicts(&mut self, now: f64) {
        for verdict in self.monitor.drain_new() {
            let node = verdict.node;
            if node >= self.nodes.len() || self.nodes[node].crashed {
                continue;
            }
            if self.nodes[node].breaker.state() == everest_health::BreakerState::Closed {
                self.nodes[node].breaker.trip(now);
                self.outcome.breaker_opens += 1;
                self.registry.event(
                    "serve.breaker_open",
                    format!("node{node} convicted: {:?}", verdict.kind),
                );
            }
        }
    }

    fn retune(&mut self, class: usize, now: f64) {
        self.outcome.retunes += 1;
        let chosen = match self.tuners[class].best(&Features::new()) {
            Ok(best) => match best.get("batch") {
                Some(KnobValue::Int(n)) => (*n).max(1) as usize,
                _ => 1,
            },
            // Nothing meets the deadline: serve unbatched, the
            // lowest-latency point available.
            Err(_) => 1,
        };
        if chosen != self.batcher.max_batch(class) {
            self.batcher.set_max_batch(class, chosen);
            self.registry.event(
                "serve.retune",
                format!(
                    "class={} batch={} at={:.3}",
                    self.cfg.classes[class].name, chosen, now
                ),
            );
        }
    }

    // -- faults --------------------------------------------------------

    fn handle_fault(&mut self, index: usize, now: f64) {
        let spec = self.plan.faults()[index].clone();
        let node = spec.node;
        if node >= self.nodes.len() {
            return;
        }
        self.metrics.faults.add(1);
        self.registry.event("serve.fault", spec.describe());
        match spec.kind {
            FaultKind::NodeCrash => {
                self.nodes[node].crashed = true;
                self.nodes[node].fpga = false;
                self.fail_current(node, now);
            }
            FaultKind::LinkDegrade {
                factor,
                duration_us,
            }
            | FaultKind::GrayLink {
                factor,
                duration_us,
            } => {
                self.nodes[node].link.push((now, now + duration_us, factor));
            }
            FaultKind::SlowNode {
                factor,
                duration_us,
            } => {
                self.nodes[node].slow.push((now, now + duration_us, factor));
            }
            FaultKind::VfCreep { per_ms } => {
                if self.nodes[node].creep.is_none() {
                    self.nodes[node].creep = Some((now, per_ms));
                }
            }
            FaultKind::VfUnplug { .. } | FaultKind::PartialReconfigFail => {
                let lost_inflight = self.nodes[node].fpga
                    && self.nodes[node]
                        .current
                        .and_then(|b| self.inflight.get(b as usize))
                        .and_then(|slot| slot.as_ref())
                        .map(|i| i.fpga_path)
                        .unwrap_or(false);
                self.nodes[node].fpga = false;
                if lost_inflight {
                    self.fail_current(node, now);
                }
            }
            FaultKind::DmaTimeout | FaultKind::TransientKernelError | FaultKind::MemoryEcc => {
                self.fail_current(node, now);
            }
        }
    }

    /// Fails whatever batch is executing on `node` right now; its
    /// requests are terminal `Failed` and its scheduled completion is
    /// cancelled outright.
    fn fail_current(&mut self, node: usize, now: f64) {
        let Some(batch) = self.nodes[node].current.take() else {
            if !self.nodes[node].crashed {
                self.nodes[node].free_at_us = now;
            }
            return;
        };
        if let Some(inflight) = Self::slot(&mut self.inflight, batch).take() {
            self.queue.cancel(inflight.completion);
            for request in &inflight.requests {
                self.fail(request);
            }
            self.outcome.batches[inflight.record].failed = true;
            self.outcome.batches[inflight.record].finish_us = now;
        }
        if !self.nodes[node].crashed {
            self.nodes[node].free_at_us = now;
        }
    }

    /// The whole cluster is gone: every queued or batched request is
    /// terminal `Failed` (conservation still holds; nothing vanishes).
    fn drain_all_failed(&mut self, _now: f64) {
        let queued = self.wfq.drain();
        for request in &queued {
            self.fail(request);
        }
        let batched = self.batcher.drain();
        for request in &batched {
            self.fail(request);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_faults::FaultSpec;

    fn small_config() -> ServeConfig {
        ServeConfig {
            seed: 7,
            offered_rps: 6_000.0,
            horizon_us: 60_000.0,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn run_is_deterministic() {
        let a = ServeEngine::new(small_config()).run();
        let b = ServeEngine::new(small_config()).run();
        assert_eq!(a, b);
        assert!(a.offered > 0);
        assert!(a.completed > 0);
    }

    #[test]
    fn outcome_is_conserved() {
        let outcome = ServeEngine::new(small_config()).run();
        assert!(outcome.conserved(), "conservation: {outcome:?}");
    }

    #[test]
    fn shed_rate_grows_with_offered_load() {
        let mut rates = Vec::new();
        for load in [4_000.0, 10_000.0, 20_000.0, 40_000.0] {
            let outcome = ServeEngine::new(ServeConfig {
                offered_rps: load,
                horizon_us: 100_000.0,
                ..ServeConfig::default()
            })
            .run();
            assert!(outcome.conserved());
            rates.push(outcome.shed_rate());
        }
        for pair in rates.windows(2) {
            assert!(
                pair[0] <= pair[1] + 1e-9,
                "shed rate must be monotone in load: {rates:?}"
            );
        }
        assert!(rates[3] > 0.3, "heavy overload must shed hard: {rates:?}");
    }

    #[test]
    fn batching_amortises_launch_overhead() {
        // Unit batches vs batch-8 ceilings at the same overload: the
        // batched run must complete more requests.
        let unbatched = ServeEngine::new(ServeConfig {
            batch: vec![BatchPolicy::new(1, 0.0), BatchPolicy::new(1, 0.0)],
            autotune: false,
            offered_rps: 20_000.0,
            horizon_us: 100_000.0,
            ..ServeConfig::default()
        })
        .run();
        let batched = ServeEngine::new(ServeConfig {
            autotune: false,
            offered_rps: 20_000.0,
            horizon_us: 100_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(
            batched.completed > unbatched.completed,
            "batched {} vs unbatched {}",
            batched.completed,
            unbatched.completed
        );
    }

    #[test]
    fn node_crash_fails_inflight_but_serving_continues() {
        let plan = FaultPlan::new(9).with_fault(FaultSpec {
            at_us: 20_000.0,
            node: 0,
            kind: FaultKind::NodeCrash,
        });
        let outcome = ServeEngine::new(small_config()).with_plan(plan).run();
        assert!(outcome.conserved());
        assert!(outcome.completed > 0, "survivors keep serving");
    }

    #[test]
    fn all_nodes_crashed_fails_the_backlog() {
        let mut plan = FaultPlan::new(11);
        for node in 0..4 {
            plan.push(FaultSpec {
                at_us: 10_000.0,
                node,
                kind: FaultKind::NodeCrash,
            });
        }
        let outcome = ServeEngine::new(small_config()).with_plan(plan).run();
        assert!(outcome.conserved());
        assert!(outcome.failed > 0, "post-crash admissions must fail");
        // No batch ever completes after the crash instant.
        for batch in &outcome.batches {
            assert!(batch.failed || batch.finish_us <= 10_000.0 + 1e-6);
        }
    }

    #[test]
    fn slow_node_trips_a_breaker() {
        let plan = FaultPlan::new(13).with_fault(FaultSpec {
            at_us: 5_000.0,
            node: 1,
            kind: FaultKind::SlowNode {
                factor: 8.0,
                duration_us: 150_000.0,
            },
        });
        let outcome = ServeEngine::new(ServeConfig {
            seed: 13,
            offered_rps: 12_000.0,
            horizon_us: 150_000.0,
            ..ServeConfig::default()
        })
        .with_plan(plan)
        .run();
        assert!(outcome.conserved());
        assert!(
            outcome.breaker_opens > 0,
            "an 8x straggler must be convicted: {outcome:?}"
        );
    }

    #[test]
    fn deadline_pressure_sheds_in_queue() {
        // One slow CPU-only node and a tight deadline: queued requests
        // lapse and are shed rather than served dead.
        let outcome = ServeEngine::new(ServeConfig {
            nodes: 1,
            classes: vec![KernelClass::new(
                "infer", 400.0, 40.0, 120.0, 2_000.0, 4_096,
            )],
            batch: vec![BatchPolicy::new(8, 400.0)],
            offered_rps: 8_000.0,
            horizon_us: 60_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved());
        assert!(outcome.shed_deadline > 0, "{outcome:?}");
    }

    #[test]
    fn autotuner_reacts_to_infeasible_latency() {
        // Impossible deadline: every batched point is infeasible once
        // observations arrive, so the tuner must fall back toward
        // unbatched operation.
        let outcome = ServeEngine::new(ServeConfig {
            classes: vec![KernelClass::new("infer", 400.0, 40.0, 120.0, 300.0, 4_096)],
            batch: vec![BatchPolicy::new(8, 400.0)],
            offered_rps: 6_000.0,
            horizon_us: 80_000.0,
            retune_every: 4,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved());
        assert!(outcome.retunes > 0);
        assert_eq!(outcome.final_max_batch, vec![1], "{outcome:?}");
    }

    #[test]
    fn statically_infeasible_class_is_fully_shed_at_the_door() {
        // Two classes: one carries a proven worst-case bound above its
        // deadline, the other a bound safely below. The infeasible
        // class must be shed in full — typed, at the door, before any
        // token or queue slot is spent — while the feasible class
        // serves normally and conservation still holds.
        let outcome = ServeEngine::new(ServeConfig {
            classes: vec![
                KernelClass::new("late", 400.0, 40.0, 120.0, 5_000.0, 4_096)
                    .with_static_bound(9_000.0),
                KernelClass::new("ok", 1_600.0, 160.0, 320.0, 20_000.0, 16_384)
                    .with_static_bound(1_000.0),
            ],
            offered_rps: 6_000.0,
            horizon_us: 60_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved(), "{outcome:?}");
        assert!(outcome.shed_static > 0, "{outcome:?}");
        assert!(outcome.completed > 0, "feasible class keeps serving");
        // Nothing of the infeasible class ever reached a batch.
        assert!(outcome.batches.iter().all(|b| b.class != 0));
    }

    #[test]
    fn quantiles_are_ordered() {
        let outcome = ServeEngine::new(small_config()).run();
        let p50 = outcome.latency_quantile(0.5).expect("completions");
        let p99 = outcome.latency_quantile(0.99).expect("completions");
        assert!(p50 <= p99);
        assert!(p50 > 0.0);
    }

    #[test]
    fn cancelled_events_never_linger_in_the_queue() {
        // Under heavy batching, most batches close on size and their
        // wait-timeouts are cancelled; the queue must end empty and the
        // outcome must match a fresh run exactly (cancellation is not
        // allowed to perturb the virtual clock).
        let outcome = ServeEngine::new(ServeConfig {
            offered_rps: 20_000.0,
            horizon_us: 100_000.0,
            ..ServeConfig::default()
        })
        .run();
        assert!(outcome.conserved());
        assert!(
            outcome.end_us >= outcome.horizon_us,
            "end_us covers the horizon: {outcome:?}"
        );
        // Timeout events land after the last dispatch when batches
        // close early; end_us still reflects the maximum scheduled
        // event, not just the last processed one.
        let last_finish = outcome
            .batches
            .iter()
            .map(|b| b.finish_us)
            .fold(0.0, f64::max);
        assert!(outcome.end_us >= last_finish);
    }
}
