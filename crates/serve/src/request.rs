//! Request-plane vocabulary: kernel classes, tenants, requests, typed
//! shed reasons, and the seeded open-loop arrival trace.
//!
//! Everything here is deterministic by construction: the arrival trace
//! is synthesized from a seed on the virtual clock, so a serving run is
//! a pure function of its configuration and replays byte-identically.

use everest_faults::DetRng;

/// The workload family a kernel class belongs to.
///
/// Policy sites in the engine key off the kind with **exhaustive
/// matches** (no `_` wildcard arms), so adding a kind — as PR 10 did
/// with [`ClassKind::Query`] — turns every policy decision that must
/// be revisited into a compile error instead of a silent default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    /// Online inference and other interactive request/response work:
    /// deadline-sensitive, the only kind eligible for hedged dispatch.
    Interactive,
    /// Throughput-oriented batch analytics; never hedged.
    Analytics,
    /// Lowered analytic queries from `everest-query`: per-operator dfg
    /// kernels served as a tenant class of their own. Throughput work,
    /// never hedged.
    Query,
}

impl ClassKind {
    /// Stable id used in telemetry and traces.
    pub fn id(&self) -> &'static str {
        match self {
            ClassKind::Interactive => "interactive",
            ClassKind::Analytics => "analytics",
            ClassKind::Query => "query",
        }
    }

    /// All kinds, in declaration order.
    pub const ALL: [ClassKind; 3] = [
        ClassKind::Interactive,
        ClassKind::Analytics,
        ClassKind::Query,
    ];
}

/// A class of inference/analytics kernels that the cluster can serve.
///
/// Requests of the same class are batch-compatible: the dynamic batcher
/// may coalesce them into one accelerator invocation, amortising the
/// per-launch setup cost across the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelClass {
    /// Human-readable class name (used in telemetry and traces).
    pub name: String,
    /// Per-request service cost on a CPU core, microseconds.
    pub cpu_us: f64,
    /// Per-request service cost on an FPGA VF, microseconds.
    pub fpga_us: f64,
    /// One-time FPGA launch overhead per batch (DMA setup, kernel
    /// argument marshalling), microseconds. This is the cost batching
    /// amortises.
    pub fpga_setup_us: f64,
    /// End-to-end deadline for the class (arrival to completion),
    /// microseconds. Completions past it count as SLO violations;
    /// requests that lapse it while still queued are shed.
    pub deadline_us: f64,
    /// Payload moved to the serving node per request, bytes.
    pub payload_bytes: u64,
    /// Statically proven worst-case kernel latency, microseconds, from
    /// the `everest-analysis` latency fixpoint
    /// (`everest_analysis::latency::module_worst_case_us`). `None`
    /// when no bound is known (no compiled module, or the analysis
    /// could not prove one). When the bound itself exceeds
    /// [`KernelClass::deadline_us`], no execution can meet the
    /// deadline and admission sheds the whole class with
    /// [`ShedReason::StaticallyInfeasible`] instead of burning
    /// capacity on provably-late work.
    pub static_bound_us: Option<f64>,
    /// Latency-critical classes are eligible for hedged dispatch: when
    /// a batch outlives the class's observed p95 service time, a
    /// duplicate is sent to a second healthy node and the loser is
    /// cancelled. Off by default — hedging spends capacity to buy tail
    /// latency, a trade only deadline-critical classes should make.
    /// Only [`ClassKind::Interactive`] classes are considered.
    pub latency_critical: bool,
    /// The workload family this class belongs to; policy sites match
    /// on it exhaustively.
    pub kind: ClassKind,
}

impl KernelClass {
    /// Creates a kernel class.
    pub fn new(
        name: &str,
        cpu_us: f64,
        fpga_us: f64,
        fpga_setup_us: f64,
        deadline_us: f64,
        payload_bytes: u64,
    ) -> KernelClass {
        KernelClass {
            name: name.to_string(),
            cpu_us,
            fpga_us,
            fpga_setup_us,
            deadline_us,
            payload_bytes,
            static_bound_us: None,
            latency_critical: false,
            kind: ClassKind::Interactive,
        }
    }

    /// Sets the workload family.
    #[must_use]
    pub fn with_kind(mut self, kind: ClassKind) -> KernelClass {
        self.kind = kind;
        self
    }

    /// Attaches a statically proven worst-case latency bound
    /// (microseconds) from the analysis layer.
    #[must_use]
    pub fn with_static_bound(mut self, bound_us: f64) -> KernelClass {
        self.static_bound_us = Some(bound_us);
        self
    }

    /// Marks the class latency-critical, making it eligible for
    /// hedged dispatch when the engine's hedge feature is enabled.
    #[must_use]
    pub fn latency_critical(mut self) -> KernelClass {
        self.latency_critical = true;
        self
    }

    /// `true` when the proven worst-case bound exceeds the deadline:
    /// no execution of this class can ever meet its SLO.
    pub fn statically_infeasible(&self) -> bool {
        self.static_bound_us
            .is_some_and(|bound| bound > self.deadline_us)
    }

    /// Service time for a batch of `n` requests on an FPGA VF.
    pub fn fpga_batch_us(&self, n: usize) -> f64 {
        self.fpga_setup_us + n as f64 * self.fpga_us
    }

    /// Service time for a batch of `n` requests on CPU cores
    /// (sequential: the serving node dedicates one core per batch).
    pub fn cpu_batch_us(&self, n: usize) -> f64 {
        n as f64 * self.cpu_us
    }
}

/// A tenant sharing the serving cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (used in telemetry and traces).
    pub name: String,
    /// Weighted-fair-queueing weight. Service share under contention is
    /// proportional to weight; any positive weight guarantees progress.
    pub weight: f64,
    /// Token-bucket refill rate, requests per second.
    pub rate_rps: f64,
    /// Token-bucket capacity: the largest burst admitted at once.
    pub burst: f64,
}

impl TenantSpec {
    /// Creates a tenant specification.
    pub fn new(name: &str, weight: f64, rate_rps: f64, burst: f64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            weight,
            rate_rps,
            burst,
        }
    }
}

/// One request in flight through the serving subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Trace-unique id, assigned in arrival order.
    pub id: u64,
    /// Index into the tenant table.
    pub tenant: usize,
    /// Index into the kernel-class table.
    pub class: usize,
    /// Arrival time on the virtual clock, microseconds.
    pub arrival_us: f64,
    /// Dispatch attempt, starting at zero. Incremented each time the
    /// lifecycle layer re-enqueues the request after a fault-failed
    /// batch; bounded by the retry policy's attempt cap and the
    /// tenant's retry budget.
    pub attempt: u32,
}

/// Why a request was refused service. Typed so clients (and traces)
/// can distinguish "slow down" from "queue saturated" from "too late".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket was empty: per-tenant rate limit.
    RateLimited,
    /// The shared queue hit its depth limit: backpressure.
    QueueFull,
    /// The request's class deadline lapsed while it waited in queue;
    /// serving it would waste capacity on a response nobody wants.
    DeadlineLapsed,
    /// Static analysis proved the class's worst-case kernel latency
    /// exceeds its deadline ([`KernelClass::statically_infeasible`]):
    /// every execution would violate the SLO, so the request is
    /// refused at the door without consuming a token or a queue slot.
    StaticallyInfeasible,
    /// The adaptive concurrency limiter's door cap was hit: observed
    /// batch latency says the cluster is past its useful concurrency,
    /// so new work is backed off before the shared queue saturates.
    Overloaded,
    /// A brownout tier shed this tenant at the door: enough of the
    /// cluster is unhealthy that the lowest-weight tenants are
    /// sacrificed to keep higher-weight tenants inside their deadlines.
    Brownout,
    /// No live shard lease covers this tenant: its shard's owner is
    /// partitioned away (or the cluster has no quorum), and failover
    /// has not yet re-granted the lease. Refused at the door without
    /// consuming a token or a queue slot — serving it would risk
    /// split-brain double execution.
    PartitionedAway,
}

impl ShedReason {
    /// Stable identifier used in traces and telemetry events.
    pub fn id(&self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineLapsed => "deadline_lapsed",
            ShedReason::StaticallyInfeasible => "statically_infeasible",
            ShedReason::Overloaded => "overloaded",
            ShedReason::Brownout => "brownout",
            ShedReason::PartitionedAway => "partitioned_away",
        }
    }

    /// Dense index of the reason, `0..ShedReason::COUNT`. Lets hot
    /// paths key per-reason counters by array slot instead of by name.
    pub fn index(&self) -> usize {
        match self {
            ShedReason::RateLimited => 0,
            ShedReason::QueueFull => 1,
            ShedReason::DeadlineLapsed => 2,
            ShedReason::StaticallyInfeasible => 3,
            ShedReason::Overloaded => 4,
            ShedReason::Brownout => 5,
            ShedReason::PartitionedAway => 6,
        }
    }

    /// Number of distinct shed reasons ([`ShedReason::index`] range).
    pub const COUNT: usize = 7;
}

/// Terminal state of an offered request. The conservation invariant —
/// every offered request reaches exactly one terminal state — is
/// checked by [`crate::ServeOutcome::conserved`] and property-tested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Served to completion after `latency_us` end-to-end.
    Completed {
        /// Arrival-to-completion latency, microseconds.
        latency_us: f64,
    },
    /// Refused admission or dropped from queue, with a typed reason.
    Shed(ShedReason),
    /// Admitted but lost to a fault (node crash, transient error).
    Failed,
}

/// A seeded open-loop arrival trace: the workload side of a serving
/// run. Open-loop means arrivals do not slow down when the system
/// saturates — exactly the regime where admission control and load
/// shedding earn their keep.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    requests: Vec<Request>,
}

impl ArrivalTrace {
    /// Synthesizes a Poisson arrival trace over `horizon_us`.
    ///
    /// The aggregate offered load `offered_rps` is split across tenants
    /// in proportion to their weights; each tenant draws exponential
    /// interarrival gaps and uniform kernel classes from its own forked
    /// substream, so adding a tenant never perturbs another tenant's
    /// arrivals. Ids are assigned in global arrival order.
    pub fn synthesize(
        seed: u64,
        tenants: &[TenantSpec],
        classes: &[KernelClass],
        horizon_us: f64,
        offered_rps: f64,
    ) -> ArrivalTrace {
        assert!(!classes.is_empty(), "arrival trace needs a kernel class");
        let total_weight: f64 = tenants.iter().map(|t| t.weight.max(0.0)).sum();
        let root = DetRng::new(seed);
        let mut streams: Vec<Vec<Request>> = Vec::with_capacity(tenants.len());
        for (index, tenant) in tenants.iter().enumerate() {
            let share = if total_weight > 0.0 {
                tenant.weight.max(0.0) / total_weight
            } else {
                1.0 / tenants.len() as f64
            };
            let rate_rps = offered_rps * share;
            if rate_rps <= 0.0 {
                continue;
            }
            let mean_gap_us = 1.0e6 / rate_rps;
            let mut rng = root.fork(0x5E21_u64.wrapping_add(index as u64));
            let mut at_us = 0.0;
            let mut stream = Vec::with_capacity((rate_rps * horizon_us / 1.0e6) as usize + 16);
            loop {
                // Exponential interarrival via inverse transform; the
                // draw is in [0, 1) so the argument to ln stays in
                // (0, 1] and the gap is finite and positive.
                let gap = -mean_gap_us * (1.0 - rng.next_unit()).ln();
                at_us += gap;
                if at_us >= horizon_us {
                    break;
                }
                let class = rng.index(classes.len());
                stream.push(Request {
                    id: 0,
                    tenant: index,
                    class,
                    arrival_us: at_us,
                    attempt: 0,
                });
            }
            streams.push(stream);
        }
        // Each tenant's stream is already time-ordered (gaps are
        // non-negative), so a k-way merge replaces the global sort.
        // Scanning streams in tenant order and replacing the leader
        // only on a strictly earlier timestamp reproduces the
        // `(arrival_us, tenant)` order a stable sort would give.
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut requests = Vec::with_capacity(total);
        let mut cursors = vec![0usize; streams.len()];
        for id in 0..total {
            let mut leader: Option<usize> = None;
            for (index, stream) in streams.iter().enumerate() {
                let Some(head) = stream.get(cursors[index]) else {
                    continue;
                };
                match leader {
                    None => leader = Some(index),
                    Some(current) => {
                        let ahead = streams[current][cursors[current]].arrival_us;
                        if head.arrival_us.total_cmp(&ahead).is_lt() {
                            leader = Some(index);
                        }
                    }
                }
            }
            let index = leader.expect("cursors exhausted early");
            let mut request = streams[index][cursors[index]];
            cursors[index] += 1;
            request.id = id as u64;
            requests.push(request);
        }
        ArrivalTrace { requests }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Consumes the trace, yielding the requests in arrival order.
    /// The engine walks this vector with a cursor instead of pushing
    /// every arrival through the event queue.
    pub fn into_requests(self) -> Vec<Request> {
        self.requests
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("gold", 4.0, 8000.0, 64.0),
            TenantSpec::new("bronze", 1.0, 2000.0, 16.0),
        ]
    }

    fn classes() -> Vec<KernelClass> {
        vec![KernelClass::new("infer", 400.0, 40.0, 120.0, 5_000.0, 4096)]
    }

    #[test]
    fn trace_is_deterministic_and_sorted() {
        let a = ArrivalTrace::synthesize(7, &tenants(), &classes(), 50_000.0, 10_000.0);
        let b = ArrivalTrace::synthesize(7, &tenants(), &classes(), 50_000.0, 10_000.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for pair in a.requests().windows(2) {
            assert!(pair[0].arrival_us <= pair[1].arrival_us);
            assert!(pair[0].id < pair[1].id);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ArrivalTrace::synthesize(1, &tenants(), &classes(), 50_000.0, 10_000.0);
        let b = ArrivalTrace::synthesize(2, &tenants(), &classes(), 50_000.0, 10_000.0);
        assert_ne!(a, b);
    }

    #[test]
    fn load_split_follows_weights() {
        let trace = ArrivalTrace::synthesize(3, &tenants(), &classes(), 400_000.0, 10_000.0);
        let gold = trace.requests().iter().filter(|r| r.tenant == 0).count() as f64;
        let bronze = trace.requests().iter().filter(|r| r.tenant == 1).count() as f64;
        // 4:1 weights; Poisson noise keeps it from being exact.
        let ratio = gold / bronze.max(1.0);
        assert!((2.5..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rate_scales_request_count() {
        let low = ArrivalTrace::synthesize(5, &tenants(), &classes(), 100_000.0, 2_000.0);
        let high = ArrivalTrace::synthesize(5, &tenants(), &classes(), 100_000.0, 20_000.0);
        assert!(high.len() > 5 * low.len());
    }

    #[test]
    fn batch_cost_amortises_setup() {
        let class = &classes()[0];
        assert!(class.fpga_batch_us(8) < 8.0 * class.fpga_batch_us(1));
        assert_eq!(class.cpu_batch_us(2), 800.0);
    }
}
