//! The dynamic autotuner: constraint-aware selection over operating
//! points with online correction of design-time expectations.
//!
//! This reproduces the mARGOt decision loop (paper §VI-C): the
//! application asks for the best configuration given the current
//! features (data characteristics, execution environment); the tuner
//! filters applicable operating points, drops those violating
//! constraints, optimizes the objective, and — as observations stream in
//! through monitors — rescales each configuration's expectations so the
//! choice adapts to the real environment (e.g. FPGA contention).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use everest_telemetry::{MonitorHandle, Registry};

use crate::monitor::Monitor;
use crate::types::{Configuration, Constraint, Direction, Features, Objective, OperatingPoint};

/// Errors from the tuner.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// No operating point applies to the features.
    NothingApplicable,
    /// Points apply but all violate a constraint.
    NothingFeasible,
    /// No objective set.
    NoObjective,
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::NothingApplicable => write!(f, "no operating point applies"),
            TuneError::NothingFeasible => {
                write!(f, "every applicable operating point violates a constraint")
            }
            TuneError::NoObjective => write!(f, "no objective configured"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Exponential-moving-average weight for online correction.
const EMA_ALPHA: f64 = 0.4;

/// The autotuner.
///
/// Monitors live in an [`everest_telemetry::Registry`] under
/// `autotuner.<config>.<metric>` names rather than in private storage,
/// so tuning activity shows up in the same trace as the rest of the
/// SDK. A fresh tuner gets its own registry; use
/// [`Autotuner::with_registry`] to share one (e.g. the process-global
/// registry behind `basecamp --trace`).
#[derive(Debug)]
pub struct Autotuner {
    points: Vec<OperatingPoint>,
    constraints: Vec<Constraint>,
    objective: Option<Objective>,
    /// Per (configuration, metric) observation slots: a pre-resolved
    /// monitor handle, the design-time expectation, and the
    /// EMA-smoothed multiplicative correction factor
    /// (observed / expected).
    slots: Vec<ObserveSlot>,
    /// `(config key, metric)` → index into `slots`.
    slot_index: BTreeMap<(String, String), usize>,
    /// Shared telemetry registry holding the monitors.
    registry: Arc<Registry>,
    /// Monitor window.
    window: usize,
    /// Last configuration returned by [`Autotuner::best`], for the
    /// `autotuner.switches` counter.
    last_choice: Mutex<Option<String>>,
    /// Lazily compiled `(point × metric)` lookup table used by
    /// [`Autotuner::best`]; rebuilt after any mutation that could
    /// change it (new point, constraint, objective, or slot). Behind a
    /// mutex so `best(&self)` can fill it in place.
    compiled: Mutex<Option<CompiledPlan>>,
}

/// One compiled `(point, metric)` entry: the design-time expectation
/// plus the slot index whose live EMA factor rescales it. `None` when
/// the point has no expectation for the metric (the constraint is then
/// vacuous and the objective value is `+inf`, exactly as in
/// [`Autotuner::corrected`]).
type PlanEntry = Option<(f64, Option<usize>)>;

/// String-free form of the [`Autotuner::corrected`] inputs for every
/// operating point.
#[derive(Debug, Clone)]
struct CompiledPlan {
    /// `constraints[point][constraint]`.
    constraints: Vec<Vec<PlanEntry>>,
    /// `objective[point]` for the objective metric.
    objective: Vec<PlanEntry>,
}

impl Default for Autotuner {
    fn default() -> Autotuner {
        Autotuner::new()
    }
}

/// One resolved `(configuration, metric)` observation stream.
#[derive(Debug)]
struct ObserveSlot {
    monitor: MonitorHandle,
    /// Design-time expectation at slot-resolution time (`None` when
    /// the configuration has no operating point for the metric).
    expected: Option<f64>,
    /// EMA-smoothed observed/expected correction factor.
    factor: f64,
}

/// A pre-resolved observation slot, returned by
/// [`Autotuner::resolve_slot`] and consumed by
/// [`Autotuner::observe_slot`]. Cheap to copy; valid for the lifetime
/// of the tuner that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerSlot(usize);

fn config_key(config: &Configuration) -> String {
    config
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

impl Autotuner {
    /// Creates a tuner with a default monitor window of 8 and a private
    /// telemetry registry.
    pub fn new() -> Autotuner {
        Autotuner {
            points: Vec::new(),
            constraints: Vec::new(),
            objective: None,
            slots: Vec::new(),
            slot_index: BTreeMap::new(),
            registry: Registry::new(),
            window: 8,
            last_choice: Mutex::new(None),
            compiled: Mutex::new(None),
        }
    }

    /// Drops the compiled lookup table; called from every mutation
    /// that could change what [`Autotuner::best`] would see.
    fn invalidate_plan(&self) {
        *self.compiled.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// The `(expected, slot)` entry backing [`Autotuner::corrected`]
    /// for one `(point, metric)` pair, in index form.
    fn compile_entry(&self, point: &OperatingPoint, metric: &str) -> PlanEntry {
        let expected = *point.expected.get(metric)?;
        let key = (config_key(&point.config), metric.to_string());
        Some((expected, self.slot_index.get(&key).copied()))
    }

    fn compile_plan(&self) -> CompiledPlan {
        let objective_metric = self.objective.as_ref().map(|o| o.metric.as_str());
        CompiledPlan {
            constraints: self
                .points
                .iter()
                .map(|p| {
                    self.constraints
                        .iter()
                        .map(|c| self.compile_entry(p, &c.metric))
                        .collect()
                })
                .collect(),
            objective: self
                .points
                .iter()
                .map(|p| objective_metric.and_then(|m| self.compile_entry(p, m)))
                .collect(),
        }
    }

    /// Attaches a shared telemetry registry; monitors and the
    /// `autotuner.*` counters are recorded there from then on.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Autotuner {
        self.registry = registry;
        self
    }

    /// The telemetry registry this tuner records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The registry monitor name for `(config, metric)`.
    fn monitor_name(config_key: &str, metric: &str) -> String {
        format!("autotuner.{config_key}.{metric}")
    }

    /// Adds an operating point.
    pub fn add_point(&mut self, point: OperatingPoint) -> &mut Self {
        self.points.push(point);
        self.invalidate_plan();
        self
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, constraint: Constraint) -> &mut Self {
        self.constraints.push(constraint);
        self.invalidate_plan();
        self
    }

    /// Sets the objective.
    pub fn set_objective(&mut self, objective: Objective) -> &mut Self {
        self.objective = Some(objective);
        self.invalidate_plan();
        self
    }

    /// The corrected expectation of `metric` under `config`.
    pub fn corrected(&self, point: &OperatingPoint, metric: &str) -> Option<f64> {
        let expected = point.expected.get(metric)?;
        let key = (config_key(&point.config), metric.to_string());
        let factor = self
            .slot_index
            .get(&key)
            .map(|&i| self.slots[i].factor)
            .unwrap_or(1.0);
        Some(expected * factor)
    }

    /// Selects the best configuration for the current features.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] when nothing applies, nothing is feasible,
    /// or no objective was set.
    pub fn best(&self, features: &Features) -> Result<Configuration, TuneError> {
        let objective = self.objective.as_ref().ok_or(TuneError::NoObjective)?;
        // Resolve every `(point, metric)` string key once, then decide
        // on slot indexes: the hot retune path never allocates a key.
        let mut compiled = self.compiled.lock().unwrap_or_else(|e| e.into_inner());
        let plan = compiled.get_or_insert_with(|| self.compile_plan());
        let corrected = |entry: &PlanEntry| {
            entry.map(|(expected, slot)| {
                expected * slot.map(|i| self.slots[i].factor).unwrap_or(1.0)
            })
        };
        let mut applicable = false;
        let mut best: Option<(usize, f64)> = None;
        for (index, point) in self.points.iter().enumerate() {
            if !point.applies(features) {
                continue;
            }
            applicable = true;
            let feasible =
                plan.constraints[index]
                    .iter()
                    .zip(&self.constraints)
                    .all(|(entry, constraint)| {
                        corrected(entry)
                            .map(|v| constraint.satisfied(v))
                            .unwrap_or(true)
                    });
            if !feasible {
                continue;
            }
            let value = corrected(&plan.objective[index]).unwrap_or(f64::INFINITY);
            let value = match objective.direction {
                Direction::Minimize => value,
                Direction::Maximize => -value,
            };
            // Strictly-less keeps the first minimum, matching the old
            // `min_by` over the feasible points in insertion order.
            if best.is_none_or(|(_, incumbent)| value.total_cmp(&incumbent).is_lt()) {
                best = Some((index, value));
            }
        }
        drop(compiled);
        if !applicable {
            return Err(TuneError::NothingApplicable);
        }
        let Some((best_index, _)) = best else {
            return Err(TuneError::NothingFeasible);
        };
        let best = &self.points[best_index];
        let chosen = config_key(&best.config);
        let mut last = self.last_choice.lock().unwrap_or_else(|e| e.into_inner());
        if last.as_deref() != Some(chosen.as_str()) {
            if last.is_some() {
                self.registry.counter_add("autotuner.switches", 1);
                self.registry
                    .event("autotuner.switch", format!("now {chosen}"));
            }
            *last = Some(chosen);
        }
        self.registry.counter_add("autotuner.decisions", 1);
        Ok(best.config.clone())
    }

    /// Resolves the observation slot for `(config, metric)`: one
    /// string-keyed lookup (creating the slot and its registry monitor
    /// on first use) that makes every subsequent
    /// [`Autotuner::observe_slot`] string-free. The slot captures the
    /// design-time expectation at resolution time, so resolve slots
    /// after the operating points are added.
    pub fn resolve_slot(&mut self, config: &Configuration, metric: &str) -> TunerSlot {
        let key = (config_key(config), metric.to_string());
        if let Some(&index) = self.slot_index.get(&key) {
            return TunerSlot(index);
        }
        let monitor = self
            .registry
            .monitor_handle(&Self::monitor_name(&key.0, metric), self.window);
        let expected = self
            .points
            .iter()
            .find(|p| config_key(&p.config) == key.0)
            .and_then(|p| p.expected.get(metric))
            .copied();
        let index = self.slots.len();
        self.slots.push(ObserveSlot {
            monitor,
            expected,
            factor: 1.0,
        });
        self.slot_index.insert(key, index);
        // A new slot can back an existing `(point, metric)` entry.
        self.invalidate_plan();
        TunerSlot(index)
    }

    /// Feeds an observation through a pre-resolved slot: the monitor
    /// update and the EMA correction run without building a single
    /// string — the hot-path form used by the serving engine once per
    /// completed batch.
    pub fn observe_slot(&mut self, slot: TunerSlot, value: f64) {
        let slot = &mut self.slots[slot.0];
        slot.monitor.observe(value);
        if let Some(expected) = slot.expected {
            if expected > 0.0 {
                let ratio = value / expected;
                slot.factor = (1.0 - EMA_ALPHA) * slot.factor + EMA_ALPHA * ratio;
            }
        }
    }

    /// Feeds an observation of `metric` under `config`; updates the
    /// monitors and the correction factor.
    pub fn observe(&mut self, config: &Configuration, metric: &str, value: f64) {
        let slot = self.resolve_slot(config, metric);
        self.observe_slot(slot, value);
    }

    /// A snapshot of the monitor for `(config, metric)`, if
    /// observations exist.
    pub fn monitor(&self, config: &Configuration, metric: &str) -> Option<Monitor> {
        self.registry
            .monitor(&Self::monitor_name(&config_key(config), metric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::config;

    /// Two code variants of a kernel: FPGA (fast, power-hungry setup) and
    /// CPU (slow, always available).
    fn kernel_tuner() -> Autotuner {
        let mut t = Autotuner::new();
        t.add_point(
            OperatingPoint::new(config([("variant", "fpga")]))
                .expect("time_us", 500.0)
                .expect("energy_j", 1.2),
        );
        t.add_point(
            OperatingPoint::new(config([("variant", "cpu")]))
                .expect("time_us", 4_000.0)
                .expect("energy_j", 3.0),
        );
        t.set_objective(Objective::minimize("time_us"));
        t
    }

    #[test]
    fn picks_fastest_variant_by_default() {
        let t = kernel_tuner();
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(best["variant"].to_string(), "fpga");
    }

    #[test]
    fn adapts_when_observations_degrade() {
        let mut t = kernel_tuner();
        let fpga = config([("variant", "fpga")]);
        // FPGA contended: observed time 12x the expectation.
        for _ in 0..10 {
            t.observe(&fpga, "time_us", 6_000.0);
        }
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(
            best["variant"].to_string(),
            "cpu",
            "tuner must switch to the CPU variant under contention"
        );
        // Contention clears: observations return to design-time values.
        for _ in 0..20 {
            t.observe(&fpga, "time_us", 500.0);
        }
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(best["variant"].to_string(), "fpga");
    }

    #[test]
    fn constraints_filter_points() {
        let mut t = kernel_tuner();
        t.set_objective(Objective::minimize("energy_j"));
        // Tight deadline excludes the CPU variant.
        t.add_constraint(Constraint::le("time_us", 1_000.0));
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(best["variant"].to_string(), "fpga");
        // Impossible deadline: nothing feasible.
        t.add_constraint(Constraint::le("time_us", 1.0));
        assert_eq!(t.best(&Features::new()), Err(TuneError::NothingFeasible));
    }

    #[test]
    fn feature_regions_select_size_dependent_points() {
        let mut t = Autotuner::new();
        // FPGA pays off only for large inputs (offload overhead).
        t.add_point(
            OperatingPoint::new(config([("variant", "fpga")]))
                .expect("time_us", 800.0)
                .when("size", 10_000.0, f64::INFINITY),
        );
        t.add_point(OperatingPoint::new(config([("variant", "cpu")])).expect("time_us", 1_500.0));
        t.set_objective(Objective::minimize("time_us"));

        let mut small = Features::new();
        small.insert("size".into(), 100.0);
        assert_eq!(t.best(&small).unwrap()["variant"].to_string(), "cpu");

        let mut large = Features::new();
        large.insert("size".into(), 1_000_000.0);
        assert_eq!(t.best(&large).unwrap()["variant"].to_string(), "fpga");
    }

    #[test]
    fn maximize_objective() {
        let mut t = Autotuner::new();
        t.add_point(OperatingPoint::new(config([("q", 1i64)])).expect("accuracy", 0.8));
        t.add_point(OperatingPoint::new(config([("q", 2i64)])).expect("accuracy", 0.95));
        t.set_objective(Objective::maximize("accuracy"));
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(best["q"].to_string(), "2");
    }

    #[test]
    fn errors_are_specific() {
        let mut t = Autotuner::new();
        assert_eq!(t.best(&Features::new()), Err(TuneError::NoObjective));
        t.set_objective(Objective::minimize("time_us"));
        assert_eq!(t.best(&Features::new()), Err(TuneError::NothingApplicable));
    }

    #[test]
    fn monitors_accumulate_observations() {
        let mut t = kernel_tuner();
        let cfg = config([("variant", "fpga")]);
        t.observe(&cfg, "time_us", 500.0);
        t.observe(&cfg, "time_us", 700.0);
        let m = t.monitor(&cfg, "time_us").unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), Some(600.0));
    }
}
