//! The dynamic autotuner: constraint-aware selection over operating
//! points with online correction of design-time expectations.
//!
//! This reproduces the mARGOt decision loop (paper §VI-C): the
//! application asks for the best configuration given the current
//! features (data characteristics, execution environment); the tuner
//! filters applicable operating points, drops those violating
//! constraints, optimizes the objective, and — as observations stream in
//! through monitors — rescales each configuration's expectations so the
//! choice adapts to the real environment (e.g. FPGA contention).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use everest_telemetry::Registry;

use crate::monitor::Monitor;
use crate::types::{Configuration, Constraint, Direction, Features, Objective, OperatingPoint};

/// Errors from the tuner.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// No operating point applies to the features.
    NothingApplicable,
    /// Points apply but all violate a constraint.
    NothingFeasible,
    /// No objective set.
    NoObjective,
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::NothingApplicable => write!(f, "no operating point applies"),
            TuneError::NothingFeasible => {
                write!(f, "every applicable operating point violates a constraint")
            }
            TuneError::NoObjective => write!(f, "no objective configured"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Exponential-moving-average weight for online correction.
const EMA_ALPHA: f64 = 0.4;

/// The autotuner.
///
/// Monitors live in an [`everest_telemetry::Registry`] under
/// `autotuner.<config>.<metric>` names rather than in private storage,
/// so tuning activity shows up in the same trace as the rest of the
/// SDK. A fresh tuner gets its own registry; use
/// [`Autotuner::with_registry`] to share one (e.g. the process-global
/// registry behind `basecamp --trace`).
#[derive(Debug)]
pub struct Autotuner {
    points: Vec<OperatingPoint>,
    constraints: Vec<Constraint>,
    objective: Option<Objective>,
    /// Per (configuration, metric): multiplicative correction factor
    /// (observed / expected), EMA-smoothed.
    corrections: BTreeMap<(String, String), f64>,
    /// Shared telemetry registry holding the monitors.
    registry: Arc<Registry>,
    /// Monitor window.
    window: usize,
    /// Last configuration returned by [`Autotuner::best`], for the
    /// `autotuner.switches` counter.
    last_choice: Mutex<Option<String>>,
}

impl Default for Autotuner {
    fn default() -> Autotuner {
        Autotuner::new()
    }
}

fn config_key(config: &Configuration) -> String {
    config
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

impl Autotuner {
    /// Creates a tuner with a default monitor window of 8 and a private
    /// telemetry registry.
    pub fn new() -> Autotuner {
        Autotuner {
            points: Vec::new(),
            constraints: Vec::new(),
            objective: None,
            corrections: BTreeMap::new(),
            registry: Registry::new(),
            window: 8,
            last_choice: Mutex::new(None),
        }
    }

    /// Attaches a shared telemetry registry; monitors and the
    /// `autotuner.*` counters are recorded there from then on.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Autotuner {
        self.registry = registry;
        self
    }

    /// The telemetry registry this tuner records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The registry monitor name for `(config, metric)`.
    fn monitor_name(config_key: &str, metric: &str) -> String {
        format!("autotuner.{config_key}.{metric}")
    }

    /// Adds an operating point.
    pub fn add_point(&mut self, point: OperatingPoint) -> &mut Self {
        self.points.push(point);
        self
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, constraint: Constraint) -> &mut Self {
        self.constraints.push(constraint);
        self
    }

    /// Sets the objective.
    pub fn set_objective(&mut self, objective: Objective) -> &mut Self {
        self.objective = Some(objective);
        self
    }

    /// The corrected expectation of `metric` under `config`.
    pub fn corrected(&self, point: &OperatingPoint, metric: &str) -> Option<f64> {
        let expected = point.expected.get(metric)?;
        let key = (config_key(&point.config), metric.to_string());
        let factor = self.corrections.get(&key).copied().unwrap_or(1.0);
        Some(expected * factor)
    }

    /// Selects the best configuration for the current features.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] when nothing applies, nothing is feasible,
    /// or no objective was set.
    pub fn best(&self, features: &Features) -> Result<Configuration, TuneError> {
        let objective = self.objective.as_ref().ok_or(TuneError::NoObjective)?;
        let applicable: Vec<&OperatingPoint> =
            self.points.iter().filter(|p| p.applies(features)).collect();
        if applicable.is_empty() {
            return Err(TuneError::NothingApplicable);
        }
        let feasible: Vec<&OperatingPoint> = applicable
            .iter()
            .copied()
            .filter(|p| {
                self.constraints.iter().all(|c| {
                    self.corrected(p, &c.metric)
                        .map(|v| c.satisfied(v))
                        .unwrap_or(true)
                })
            })
            .collect();
        if feasible.is_empty() {
            return Err(TuneError::NothingFeasible);
        }
        let best = feasible
            .into_iter()
            .min_by(|a, b| {
                let va = self
                    .corrected(a, &objective.metric)
                    .unwrap_or(f64::INFINITY);
                let vb = self
                    .corrected(b, &objective.metric)
                    .unwrap_or(f64::INFINITY);
                let (va, vb) = match objective.direction {
                    Direction::Minimize => (va, vb),
                    Direction::Maximize => (-va, -vb),
                };
                va.total_cmp(&vb)
            })
            .expect("feasible set non-empty");
        let chosen = config_key(&best.config);
        let mut last = self.last_choice.lock().unwrap_or_else(|e| e.into_inner());
        if last.as_deref() != Some(chosen.as_str()) {
            if last.is_some() {
                self.registry.counter_add("autotuner.switches", 1);
                self.registry
                    .event("autotuner.switch", format!("now {chosen}"));
            }
            *last = Some(chosen);
        }
        self.registry.counter_add("autotuner.decisions", 1);
        Ok(best.config.clone())
    }

    /// Feeds an observation of `metric` under `config`; updates the
    /// monitors and the correction factor.
    pub fn observe(&mut self, config: &Configuration, metric: &str, value: f64) {
        let key = (config_key(config), metric.to_string());
        self.registry
            .observe_windowed(&Self::monitor_name(&key.0, metric), value, self.window);
        // Correction needs the design-time expectation.
        let expected = self
            .points
            .iter()
            .find(|p| config_key(&p.config) == key.0)
            .and_then(|p| p.expected.get(metric))
            .copied();
        if let Some(expected) = expected {
            if expected > 0.0 {
                let ratio = value / expected;
                let entry = self.corrections.entry(key).or_insert(1.0);
                *entry = (1.0 - EMA_ALPHA) * *entry + EMA_ALPHA * ratio;
            }
        }
    }

    /// A snapshot of the monitor for `(config, metric)`, if
    /// observations exist.
    pub fn monitor(&self, config: &Configuration, metric: &str) -> Option<Monitor> {
        self.registry
            .monitor(&Self::monitor_name(&config_key(config), metric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::config;

    /// Two code variants of a kernel: FPGA (fast, power-hungry setup) and
    /// CPU (slow, always available).
    fn kernel_tuner() -> Autotuner {
        let mut t = Autotuner::new();
        t.add_point(
            OperatingPoint::new(config([("variant", "fpga")]))
                .expect("time_us", 500.0)
                .expect("energy_j", 1.2),
        );
        t.add_point(
            OperatingPoint::new(config([("variant", "cpu")]))
                .expect("time_us", 4_000.0)
                .expect("energy_j", 3.0),
        );
        t.set_objective(Objective::minimize("time_us"));
        t
    }

    #[test]
    fn picks_fastest_variant_by_default() {
        let t = kernel_tuner();
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(best["variant"].to_string(), "fpga");
    }

    #[test]
    fn adapts_when_observations_degrade() {
        let mut t = kernel_tuner();
        let fpga = config([("variant", "fpga")]);
        // FPGA contended: observed time 12x the expectation.
        for _ in 0..10 {
            t.observe(&fpga, "time_us", 6_000.0);
        }
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(
            best["variant"].to_string(),
            "cpu",
            "tuner must switch to the CPU variant under contention"
        );
        // Contention clears: observations return to design-time values.
        for _ in 0..20 {
            t.observe(&fpga, "time_us", 500.0);
        }
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(best["variant"].to_string(), "fpga");
    }

    #[test]
    fn constraints_filter_points() {
        let mut t = kernel_tuner();
        t.set_objective(Objective::minimize("energy_j"));
        // Tight deadline excludes the CPU variant.
        t.add_constraint(Constraint::le("time_us", 1_000.0));
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(best["variant"].to_string(), "fpga");
        // Impossible deadline: nothing feasible.
        t.add_constraint(Constraint::le("time_us", 1.0));
        assert_eq!(t.best(&Features::new()), Err(TuneError::NothingFeasible));
    }

    #[test]
    fn feature_regions_select_size_dependent_points() {
        let mut t = Autotuner::new();
        // FPGA pays off only for large inputs (offload overhead).
        t.add_point(
            OperatingPoint::new(config([("variant", "fpga")]))
                .expect("time_us", 800.0)
                .when("size", 10_000.0, f64::INFINITY),
        );
        t.add_point(OperatingPoint::new(config([("variant", "cpu")])).expect("time_us", 1_500.0));
        t.set_objective(Objective::minimize("time_us"));

        let mut small = Features::new();
        small.insert("size".into(), 100.0);
        assert_eq!(t.best(&small).unwrap()["variant"].to_string(), "cpu");

        let mut large = Features::new();
        large.insert("size".into(), 1_000_000.0);
        assert_eq!(t.best(&large).unwrap()["variant"].to_string(), "fpga");
    }

    #[test]
    fn maximize_objective() {
        let mut t = Autotuner::new();
        t.add_point(OperatingPoint::new(config([("q", 1i64)])).expect("accuracy", 0.8));
        t.add_point(OperatingPoint::new(config([("q", 2i64)])).expect("accuracy", 0.95));
        t.set_objective(Objective::maximize("accuracy"));
        let best = t.best(&Features::new()).unwrap();
        assert_eq!(best["q"].to_string(), "2");
    }

    #[test]
    fn errors_are_specific() {
        let mut t = Autotuner::new();
        assert_eq!(t.best(&Features::new()), Err(TuneError::NoObjective));
        t.set_objective(Objective::minimize("time_us"));
        assert_eq!(t.best(&Features::new()), Err(TuneError::NothingApplicable));
    }

    #[test]
    fn monitors_accumulate_observations() {
        let mut t = kernel_tuner();
        let cfg = config([("variant", "fpga")]);
        t.observe(&cfg, "time_us", 500.0);
        t.observe(&cfg, "time_us", 700.0);
        let m = t.monitor(&cfg, "time_us").unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), Some(600.0));
    }
}
