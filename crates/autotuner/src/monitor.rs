//! Runtime monitors: windowed statistics over metric observations.
//!
//! mARGOt monitors observe "functional and extra-functional properties"
//! during execution (§VI-C); the autotuner uses them to correct its
//! design-time expectations online.
//!
//! The implementation moved to [`everest_telemetry::Monitor`] so every
//! SDK layer shares one monitor type inside the common telemetry
//! registry; this module re-exports it for source compatibility.

pub use everest_telemetry::Monitor;
