//! # everest-autotuner
//!
//! A mARGOt-style dynamic autotuning framework (paper §VI-C, Gadioli et
//! al., IEEE TC 2019): application-level selection of the best knob
//! configuration (parameters, code variants like CPU vs FPGA kernels)
//! given runtime metrics and the execution environment.
//!
//! * [`types`] — knobs, configurations, operating points with feature
//!   regions, constraints and objectives;
//! * [`monitor`] — sliding-window metric monitors;
//! * [`tuner`] — constraint-aware selection with EMA-based online
//!   correction of design-time expectations (the adaptation mechanism
//!   behind experiment E9).
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use everest_autotuner::tuner::Autotuner;
//! use everest_autotuner::types::{config, Constraint, Features, Objective, OperatingPoint};
//!
//! let mut tuner = Autotuner::new();
//! tuner.add_point(
//!     OperatingPoint::new(config([("variant", "fpga")]))
//!         .expect("time_us", 500.0)
//!         .expect("energy_j", 1.2),
//! );
//! tuner.add_point(
//!     OperatingPoint::new(config([("variant", "cpu")]))
//!         .expect("time_us", 4_000.0)
//!         .expect("energy_j", 3.0),
//! );
//! tuner.add_constraint(Constraint::le("time_us", 2_000.0));
//! tuner.set_objective(Objective::minimize("energy_j"));
//! let best = tuner.best(&Features::new())?;
//! assert_eq!(best["variant"].to_string(), "fpga");
//! # Ok(())
//! # }
//! ```

pub mod monitor;
pub mod tuner;
pub mod types;

pub use monitor::Monitor;
pub use tuner::{Autotuner, TuneError, TunerSlot};
pub use types::{
    config, Configuration, Constraint, Direction, Features, KnobValue, Objective, OperatingPoint,
};
