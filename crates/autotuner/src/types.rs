//! Knobs, configurations, operating points and goals — the mARGOt data
//! model (paper §VI-C, ref \[8\]).
//!
//! *Knobs* are the variables the autotuner controls (application
//! parameters, code variants such as CPU vs FPGA kernels). *Metrics* are
//! the observable properties (execution time, energy, accuracy). An
//! *operating point* records the expected metric values of one knob
//! configuration, optionally restricted to a region of the *feature*
//! space (input characteristics, execution environment).

use std::collections::BTreeMap;
use std::fmt;

/// A knob value.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum KnobValue {
    /// Integer-valued knob (unroll factor, batch size).
    Int(i64),
    /// Named variant (e.g. `"fpga"` vs `"cpu"`).
    Str(String),
    /// Continuous knob.
    F64(f64),
}

impl fmt::Display for KnobValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobValue::Int(v) => write!(f, "{v}"),
            KnobValue::Str(s) => write!(f, "{s}"),
            KnobValue::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for KnobValue {
    fn from(v: i64) -> Self {
        KnobValue::Int(v)
    }
}

impl From<&str> for KnobValue {
    fn from(v: &str) -> Self {
        KnobValue::Str(v.to_string())
    }
}

impl From<f64> for KnobValue {
    fn from(v: f64) -> Self {
        KnobValue::F64(v)
    }
}

/// A full knob assignment.
pub type Configuration = BTreeMap<String, KnobValue>;

/// Builds a [`Configuration`] from pairs.
pub fn config<I, K, V>(pairs: I) -> Configuration
where
    I: IntoIterator<Item = (K, V)>,
    K: Into<String>,
    V: Into<KnobValue>,
{
    pairs
        .into_iter()
        .map(|(k, v)| (k.into(), v.into()))
        .collect()
}

/// Feature values describing the current input/environment.
pub type Features = BTreeMap<String, f64>;

/// An operating point: configuration + expected metrics + validity
/// region in feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// The knob configuration.
    pub config: Configuration,
    /// Expected metric values at design time.
    pub expected: BTreeMap<String, f64>,
    /// Feature ranges where this point's expectations are valid:
    /// `feature -> (min, max)`; missing features are unconstrained.
    pub region: BTreeMap<String, (f64, f64)>,
}

impl OperatingPoint {
    /// Creates an operating point for a configuration.
    pub fn new(config: Configuration) -> OperatingPoint {
        OperatingPoint {
            config,
            expected: BTreeMap::new(),
            region: BTreeMap::new(),
        }
    }

    /// Declares an expected metric value.
    pub fn expect(mut self, metric: &str, value: f64) -> OperatingPoint {
        self.expected.insert(metric.to_string(), value);
        self
    }

    /// Restricts validity to `feature ∈ [min, max)`.
    pub fn when(mut self, feature: &str, min: f64, max: f64) -> OperatingPoint {
        self.region.insert(feature.to_string(), (min, max));
        self
    }

    /// Whether the point applies under the given features.
    pub fn applies(&self, features: &Features) -> bool {
        self.region.iter().all(|(name, (lo, hi))| {
            features
                .get(name)
                .map(|v| v >= lo && v < hi)
                .unwrap_or(false)
        })
    }
}

/// Constraint comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Metric must be `<=` the bound.
    Le,
    /// Metric must be `>=` the bound.
    Ge,
}

/// A constraint on a metric (mARGOt goals).
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Metric name.
    pub metric: String,
    /// Comparison.
    pub cmp: Cmp,
    /// Bound.
    pub bound: f64,
}

impl Constraint {
    /// `metric <= bound`.
    pub fn le(metric: &str, bound: f64) -> Constraint {
        Constraint {
            metric: metric.to_string(),
            cmp: Cmp::Le,
            bound,
        }
    }

    /// `metric >= bound`.
    pub fn ge(metric: &str, bound: f64) -> Constraint {
        Constraint {
            metric: metric.to_string(),
            cmp: Cmp::Ge,
            bound,
        }
    }

    /// Whether a metric value satisfies the constraint.
    pub fn satisfied(&self, value: f64) -> bool {
        match self.cmp {
            Cmp::Le => value <= self.bound,
            Cmp::Ge => value >= self.bound,
        }
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Minimize the metric.
    Minimize,
    /// Maximize the metric.
    Maximize,
}

/// The objective: one metric plus a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Metric name.
    pub metric: String,
    /// Direction.
    pub direction: Direction,
}

impl Objective {
    /// Minimizes a metric.
    pub fn minimize(metric: &str) -> Objective {
        Objective {
            metric: metric.to_string(),
            direction: Direction::Minimize,
        }
    }

    /// Maximizes a metric.
    pub fn maximize(metric: &str) -> Objective {
        Objective {
            metric: metric.to_string(),
            direction: Direction::Maximize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_and_display() {
        let c = config([
            ("variant", KnobValue::from("fpga")),
            ("unroll", 4i64.into()),
        ]);
        assert_eq!(c["variant"], KnobValue::Str("fpga".into()));
        assert_eq!(c["unroll"].to_string(), "4");
    }

    #[test]
    fn operating_point_regions() {
        let p = OperatingPoint::new(config([("v", 1i64)]))
            .expect("time_us", 100.0)
            .when("size", 1000.0, 10_000.0);
        let mut f = Features::new();
        f.insert("size".into(), 5000.0);
        assert!(p.applies(&f));
        f.insert("size".into(), 10.0);
        assert!(!p.applies(&f));
        // missing feature -> not applicable
        assert!(!p.applies(&Features::new()));
        // unconstrained point applies anywhere
        assert!(OperatingPoint::new(config([("v", 1i64)])).applies(&Features::new()));
    }

    #[test]
    fn constraints() {
        assert!(Constraint::le("t", 10.0).satisfied(10.0));
        assert!(!Constraint::le("t", 10.0).satisfied(10.1));
        assert!(Constraint::ge("acc", 0.9).satisfied(0.95));
        assert!(!Constraint::ge("acc", 0.9).satisfied(0.85));
    }
}
