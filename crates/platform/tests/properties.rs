//! Property tests over the platform models: physical sanity of the
//! bandwidth/latency formulas for any parameters.

use proptest::prelude::*;

use everest_platform::device::FpgaDevice;
use everest_platform::link::{NetworkModel, PcieModel};
use everest_platform::memory::{AccessPattern, MemoryModel};
use everest_platform::xrt::{Direction, XrtDevice};

proptest! {
    #[test]
    fn memory_efficiency_is_a_fraction_and_monotone_in_burst(
        burst_pow in 4u32..20,
        width_pow in 5u32..10,
        lanes in 1u32..64,
    ) {
        let model = MemoryModel::new(FpgaDevice::alveo_u55c().memories[0]);
        let pattern = AccessPattern {
            burst_bytes: 1 << burst_pow,
            port_width_bits: 1 << width_pow,
            lanes,
        };
        let eff = model.efficiency(&pattern);
        prop_assert!((0.0..=1.0).contains(&eff));
        let bigger = AccessPattern {
            burst_bytes: 2 << burst_pow,
            ..pattern
        };
        prop_assert!(model.efficiency(&bigger) >= eff);
        // effective bandwidth never exceeds the aggregate peak
        prop_assert!(model.effective_gbps(&pattern) <= model.system.peak_gbps() + 1e-9);
    }

    #[test]
    fn transfer_times_are_monotone_in_bytes(
        a in 0u64..1 << 30,
        b in 0u64..1 << 30,
        lanes in 1u32..32,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let model = MemoryModel::new(FpgaDevice::alveo_u280().memories[0]);
        let pattern = AccessPattern { lanes, ..AccessPattern::default() };
        prop_assert!(model.transfer_time_us(lo, &pattern) <= model.transfer_time_us(hi, &pattern));
        let pcie = PcieModel::new(3, 16);
        prop_assert!(pcie.transfer_time_us(lo) <= pcie.transfer_time_us(hi));
        let net = NetworkModel::cloudfpga_tcp();
        prop_assert!(net.message_time_us(lo) <= net.message_time_us(hi));
    }

    #[test]
    fn xrt_clock_is_monotone_for_any_op_sequence(
        ops in proptest::collection::vec((0u8..3, 1u64..1 << 22), 1..30),
    ) {
        let mut session = XrtDevice::open(FpgaDevice::alveo_u55c());
        session.load_bitstream("any");
        let bo = session.alloc_bo(1 << 22, 0).expect("fits");
        let mut last = session.now_us();
        let n_ops = ops.len();
        for (kind, amount) in ops {
            match kind {
                0 => {
                    session.sync_bo(bo.handle, Direction::HostToDevice).expect("ok");
                }
                1 => {
                    session.sync_bo(bo.handle, Direction::DeviceToHost).expect("ok");
                }
                _ => {
                    session.run_kernel("k", amount).expect("ok");
                }
            }
            let now = session.now_us();
            prop_assert!(now >= last, "virtual time went backwards");
            last = now;
        }
        // one trace entry per op plus the bitstream load
        prop_assert_eq!(session.events().len(), n_ops + 1);
    }
}
