//! # everest-platform
//!
//! Performance and resource models of the EVEREST target systems (paper
//! §III): AMD Alveo u55c/u280 PCIe cards with XRT and HBM2/DDR4, and IBM
//! cloudFPGA network-attached nodes with an on-fabric 10 Gb/s TCP/UDP
//! stack.
//!
//! The paper's evaluation ran on real hardware; this crate is the
//! simulation substrate that replaces it (see DESIGN.md): calibrated
//! bandwidth/latency/resource models plus a simulated XRT host API with
//! a virtual clock and event tracing. The SDK's decisions (Olympus
//! data-movement planning, runtime scheduling, autotuning) only depend
//! on the *relative* numbers these models reproduce.
//!
//! * [`device`] — device descriptors and resource capacities;
//! * [`memory`] — HBM/DDR burst-efficiency bandwidth model;
//! * [`link`] — PCIe DMA and network-stack transfer models;
//! * [`xrt`] — the simulated host runtime (bitstreams, partial
//!   reconfiguration, buffer objects, kernel launches) and the fabric
//!   allocator.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use everest_platform::device::FpgaDevice;
//! use everest_platform::xrt::{Direction, XrtDevice};
//!
//! let mut session = XrtDevice::open(FpgaDevice::alveo_u55c());
//! session.load_bitstream("kernel.xclbin");
//! let bo = session.alloc_bo(1 << 20, 0)?;
//! session.sync_bo(bo.handle, Direction::HostToDevice)?;
//! session.run_kernel("rrtmg", 1_000_000)?;
//! assert!(session.now_us() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod device;
pub mod link;
pub mod memory;
pub mod xrt;

pub use device::{DeviceResources, FpgaDevice, MemorySystem};
pub use link::{LinkModel, NetworkModel, PcieModel};
pub use memory::{AccessPattern, MemoryModel};
pub use xrt::{Direction, Event, FabricAllocator, XrtDevice, XrtError};
