//! FPGA device descriptors for the EVEREST target systems (paper §III):
//! PCIe-attached AMD Alveo cards (u55c, u280) with XRT, and IBM
//! cloudFPGA network-attached nodes.

use serde::{Deserialize, Serialize};

/// Programmable-logic resource capacity of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct DeviceResources {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP slices.
    pub dsps: u64,
    /// 18 Kb BRAM halves.
    pub brams: u64,
    /// UltraRAM blocks.
    pub urams: u64,
}

impl DeviceResources {
    /// Component-wise subtraction, saturating at zero.
    pub fn saturating_sub(self, used: DeviceResources) -> DeviceResources {
        DeviceResources {
            luts: self.luts.saturating_sub(used.luts),
            ffs: self.ffs.saturating_sub(used.ffs),
            dsps: self.dsps.saturating_sub(used.dsps),
            brams: self.brams.saturating_sub(used.brams),
            urams: self.urams.saturating_sub(used.urams),
        }
    }

    /// Whether `need` fits in `self`.
    pub fn contains(&self, need: &DeviceResources) -> bool {
        self.luts >= need.luts
            && self.ffs >= need.ffs
            && self.dsps >= need.dsps
            && self.brams >= need.brams
            && self.urams >= need.urams
    }

    /// Utilization of the scarcest resource, in [0, 1+].
    pub fn utilization_of(&self, used: &DeviceResources) -> f64 {
        let ratios = [
            used.luts as f64 / self.luts.max(1) as f64,
            used.ffs as f64 / self.ffs.max(1) as f64,
            used.dsps as f64 / self.dsps.max(1) as f64,
            used.brams as f64 / self.brams.max(1) as f64,
        ];
        ratios.into_iter().fold(0.0, f64::max)
    }
}

/// External memory technology attached to the device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemoryKind {
    /// High-bandwidth memory (many pseudo-channels).
    Hbm2,
    /// DDR4 DIMM channels.
    Ddr4,
}

/// External memory subsystem description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    /// Technology.
    pub kind: MemoryKind,
    /// Number of (pseudo-)channels.
    pub channels: u32,
    /// Peak bandwidth per channel in GB/s.
    pub channel_gbps: f64,
    /// Capacity in GiB.
    pub capacity_gib: f64,
    /// Random-access latency in nanoseconds.
    pub latency_ns: f64,
}

impl MemorySystem {
    /// Aggregate peak bandwidth in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.channels as f64 * self.channel_gbps
    }
}

/// How the device attaches to the rest of the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Attachment {
    /// PCIe-attached accelerator card driven through XRT.
    Pcie {
        /// Generation (3 or 4).
        gen: u8,
        /// Lane count.
        lanes: u8,
    },
    /// Network-attached FPGA with an on-fabric TCP/UDP stack
    /// (IBM cloudFPGA, paper ref \[20\]).
    Network {
        /// Link speed in Gb/s.
        gbps: f64,
    },
}

/// A complete FPGA device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Marketing name (`"alveo_u55c"`, ...).
    pub name: String,
    /// Programmable-logic capacity.
    pub resources: DeviceResources,
    /// External memory subsystems (HBM and/or DDR).
    pub memories: Vec<MemorySystem>,
    /// Host attachment.
    pub attachment: Attachment,
    /// Default kernel clock in MHz.
    pub kernel_clock_mhz: f64,
    /// Configuration (bitstream) size in MiB, for partial-reconfiguration
    /// timing.
    pub bitstream_mib: f64,
}

impl FpgaDevice {
    /// AMD Alveo u55c: HBM2-only card used for the PTDR prototype (§VIII).
    pub fn alveo_u55c() -> FpgaDevice {
        FpgaDevice {
            name: "alveo_u55c".into(),
            resources: DeviceResources {
                luts: 1_304_000,
                ffs: 2_607_000,
                dsps: 9_024,
                brams: 4_032,
                urams: 960,
            },
            memories: vec![MemorySystem {
                kind: MemoryKind::Hbm2,
                channels: 32,
                channel_gbps: 14.375,
                capacity_gib: 16.0,
                latency_ns: 120.0,
            }],
            attachment: Attachment::Pcie { gen: 3, lanes: 16 },
            kernel_clock_mhz: 300.0,
            bitstream_mib: 90.0,
        }
    }

    /// AMD Alveo u280: HBM2 + DDR4 card.
    pub fn alveo_u280() -> FpgaDevice {
        FpgaDevice {
            name: "alveo_u280".into(),
            resources: DeviceResources {
                luts: 1_304_000,
                ffs: 2_607_000,
                dsps: 9_024,
                brams: 4_032,
                urams: 960,
            },
            memories: vec![
                MemorySystem {
                    kind: MemoryKind::Hbm2,
                    channels: 32,
                    channel_gbps: 14.375,
                    capacity_gib: 8.0,
                    latency_ns: 120.0,
                },
                MemorySystem {
                    kind: MemoryKind::Ddr4,
                    channels: 2,
                    channel_gbps: 19.2,
                    capacity_gib: 32.0,
                    latency_ns: 80.0,
                },
            ],
            attachment: Attachment::Pcie { gen: 3, lanes: 16 },
            kernel_clock_mhz: 300.0,
            bitstream_mib: 90.0,
        }
    }

    /// IBM cloudFPGA node: mid-size Kintex with DDR4, network-attached via
    /// a 10 Gb/s on-fabric TCP/UDP stack.
    pub fn cloudfpga() -> FpgaDevice {
        FpgaDevice {
            name: "cloudfpga".into(),
            resources: DeviceResources {
                luts: 331_000,
                ffs: 663_000,
                dsps: 2_760,
                brams: 2_160,
                urams: 0,
            },
            memories: vec![MemorySystem {
                kind: MemoryKind::Ddr4,
                channels: 2,
                channel_gbps: 17.0,
                capacity_gib: 16.0,
                latency_ns: 90.0,
            }],
            attachment: Attachment::Network { gbps: 10.0 },
            kernel_clock_mhz: 156.25,
            bitstream_mib: 30.0,
        }
    }

    /// Looks up a preset by name.
    pub fn by_name(name: &str) -> Option<FpgaDevice> {
        match name {
            "alveo_u55c" => Some(Self::alveo_u55c()),
            "alveo_u280" => Some(Self::alveo_u280()),
            "cloudfpga" => Some(Self::cloudfpga()),
            _ => None,
        }
    }

    /// Total external-memory peak bandwidth in GB/s.
    pub fn total_memory_gbps(&self) -> f64 {
        self.memories.iter().map(MemorySystem::peak_gbps).sum()
    }

    /// Whether the device is network-attached.
    pub fn is_network_attached(&self) -> bool {
        matches!(self.attachment, Attachment::Network { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_magnitudes() {
        let u55c = FpgaDevice::alveo_u55c();
        assert!((u55c.total_memory_gbps() - 460.0).abs() < 1.0);
        assert_eq!(u55c.memories[0].channels, 32);
        assert!(!u55c.is_network_attached());

        let cf = FpgaDevice::cloudfpga();
        assert!(cf.is_network_attached());
        assert!(cf.resources.luts < u55c.resources.luts);
    }

    #[test]
    fn by_name_roundtrip() {
        for name in ["alveo_u55c", "alveo_u280", "cloudfpga"] {
            assert_eq!(FpgaDevice::by_name(name).unwrap().name, name);
        }
        assert!(FpgaDevice::by_name("virtex2").is_none());
    }

    #[test]
    fn resource_arithmetic() {
        let total = FpgaDevice::alveo_u55c().resources;
        let need = DeviceResources {
            luts: 100_000,
            ffs: 150_000,
            dsps: 512,
            brams: 256,
            urams: 0,
        };
        assert!(total.contains(&need));
        let left = total.saturating_sub(need);
        assert_eq!(left.luts, total.luts - 100_000);
        let too_much = DeviceResources {
            dsps: 100_000,
            ..need
        };
        assert!(!total.contains(&too_much));
    }

    #[test]
    fn utilization_tracks_scarcest_resource() {
        let total = FpgaDevice::alveo_u55c().resources;
        let used = DeviceResources {
            luts: total.luts / 10,
            ffs: total.ffs / 10,
            dsps: total.dsps / 2, // DSPs dominate
            brams: 0,
            urams: 0,
        };
        let u = total.utilization_of(&used);
        assert!((u - 0.5).abs() < 0.01, "got {u}");
    }

    #[test]
    fn serde_roundtrip() {
        let dev = FpgaDevice::alveo_u280();
        let json = serde_json::to_string(&dev).unwrap();
        let back: FpgaDevice = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dev);
    }
}
