//! A simulated XRT-style host runtime.
//!
//! Mirrors the Xilinx Runtime host API the EVEREST nodes use (§III):
//! load a bitstream (or partially reconfigure), allocate buffer objects,
//! sync them over the host link, and launch kernels. The simulation
//! advances a virtual clock using the platform performance models and
//! records an event trace that the virtualization layer and the
//! experiments inspect.

use serde::{Deserialize, Serialize};

use everest_faults::{DetRng, FaultInjector, FaultKind, FaultOp, RetryPolicy};

use crate::device::{Attachment, DeviceResources, FpgaDevice};
use crate::link::{link_for, LinkHealth, LinkModel};
use crate::memory::{AccessPattern, MemoryModel};

/// Virtual time a DMA engine hangs before the driver declares a
/// timeout (`FaultKind::DmaTimeout`), in µs. Matches the order of
/// magnitude of XRT's default ERT timeout handling.
pub const DMA_TIMEOUT_PENALTY_US: f64 = 1_000.0;

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Host to device.
    HostToDevice,
    /// Device to host.
    DeviceToHost,
}

/// One entry of the event trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Bitstream programmed.
    LoadBitstream {
        /// Name of the configuration.
        name: String,
        /// Virtual time at completion (µs).
        at_us: f64,
    },
    /// Partial reconfiguration of one region.
    PartialReconfig {
        /// Region name.
        region: String,
        /// Virtual time at completion (µs).
        at_us: f64,
    },
    /// Buffer sync over the host link.
    Sync {
        /// Buffer handle.
        bo: usize,
        /// Direction.
        direction: Direction,
        /// Bytes moved.
        bytes: u64,
        /// Virtual time at completion (µs).
        at_us: f64,
    },
    /// Kernel execution.
    KernelRun {
        /// Kernel name.
        kernel: String,
        /// Cycles consumed.
        cycles: u64,
        /// Virtual time at completion (µs).
        at_us: f64,
    },
    /// An injected fault fired against this session (see
    /// `everest-faults` and `docs/RESILIENCE.md`).
    Fault {
        /// Stable fault-kind identifier (`FaultKind::id`).
        kind: String,
        /// Virtual time at which it fired (µs).
        at_us: f64,
    },
}

/// A buffer object on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferObject {
    /// Handle.
    pub handle: usize,
    /// Size in bytes.
    pub bytes: u64,
    /// Memory bank (channel) index.
    pub bank: u32,
}

/// Errors from the simulated runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum XrtError {
    /// Device memory exhausted.
    OutOfMemory {
        /// Requested bytes.
        requested: u64,
        /// Remaining bytes.
        available: u64,
    },
    /// No bitstream loaded before a kernel launch.
    NoBitstream,
    /// Unknown buffer handle.
    BadHandle(usize),
    /// A DMA/sync operation hung and the driver timed it out.
    DmaTimeout {
        /// Buffer handle that was in flight.
        bo: usize,
    },
    /// Partial reconfiguration failed; the region (and any loaded
    /// configuration) is lost until a full bitstream reload.
    PartialReconfigFailed {
        /// Region that failed to reconfigure.
        region: String,
    },
    /// A kernel launch hit a transient error; retrying may succeed.
    TransientKernelError {
        /// Kernel that failed.
        kernel: String,
    },
    /// The device (or the node carrying it) is gone; no operation will
    /// ever succeed again on this session.
    DeviceLost,
}

impl std::fmt::Display for XrtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XrtError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device memory exhausted: requested {requested} bytes, {available} available"
            ),
            XrtError::NoBitstream => write!(f, "no bitstream loaded"),
            XrtError::BadHandle(h) => write!(f, "unknown buffer handle {h}"),
            XrtError::DmaTimeout { bo } => {
                write!(f, "dma timeout while syncing buffer {bo}")
            }
            XrtError::PartialReconfigFailed { region } => {
                write!(f, "partial reconfiguration of region '{region}' failed")
            }
            XrtError::TransientKernelError { kernel } => {
                write!(f, "transient error while running kernel '{kernel}'")
            }
            XrtError::DeviceLost => write!(f, "device lost"),
        }
    }
}

impl std::error::Error for XrtError {}

/// A simulated device session.
#[derive(Debug, Clone)]
pub struct XrtDevice {
    /// The device model.
    pub device: FpgaDevice,
    link: LinkModel,
    memory: MemoryModel,
    clock_us: f64,
    /// Extra per-operation overhead in µs (used by the virtualization
    /// layer: ~0 for SR-IOV VF passthrough, noticeable for emulated I/O).
    pub per_op_overhead_us: f64,
    allocated: u64,
    buffers: Vec<BufferObject>,
    bitstream: Option<String>,
    events: Vec<Event>,
    faults: Option<FaultInjector>,
    link_health: LinkHealth,
    dead_at: Option<f64>,
}

impl XrtDevice {
    /// Telemetry counter name for host-link traffic on this device:
    /// `platform.pcie.bytes` for PCIe cards, `platform.network.bytes`
    /// for network-attached FPGAs.
    fn link_counter(&self) -> &'static str {
        match self.device.attachment {
            Attachment::Pcie { .. } => "platform.pcie.bytes",
            _ => "platform.network.bytes",
        }
    }

    /// Opens a session on a device model.
    pub fn open(device: FpgaDevice) -> XrtDevice {
        let link = link_for(&device.attachment);
        let memory = MemoryModel::new(device.memories[0]);
        XrtDevice {
            device,
            link,
            memory,
            clock_us: 0.0,
            per_op_overhead_us: 0.0,
            allocated: 0,
            buffers: Vec::new(),
            bitstream: None,
            events: Vec::new(),
            faults: None,
            link_health: LinkHealth::healthy(),
            dead_at: None,
        }
    }

    /// Arms a fault injector against this session: subsequent
    /// operations consult it and turn fired faults into typed errors,
    /// latency penalties or state loss (see `docs/RESILIENCE.md`).
    pub fn with_faults(mut self, injector: FaultInjector) -> XrtDevice {
        self.faults = Some(injector);
        self
    }

    /// Arms (or replaces) the fault injector in place.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Whether the device has been lost to a fail-stop fault.
    pub fn is_dead(&self) -> bool {
        self.dead_at.is_some()
    }

    /// Current link-health state (degraded by `LinkDegrade` faults).
    pub fn link_health(&self) -> LinkHealth {
        self.link_health
    }

    /// Consults the injector for a fault applying to `op` once the
    /// virtual clock would reach `projected_us`. Records the firing in
    /// the event trace. `NodeCrash` marks the session dead for good.
    fn poll_fault(&mut self, op: FaultOp, projected_us: f64) -> Option<everest_faults::FaultSpec> {
        let fault = self.faults.as_ref()?.fire(op, projected_us)?;
        self.events.push(Event::Fault {
            kind: fault.kind.id().to_string(),
            at_us: fault.at_us,
        });
        if fault.kind == FaultKind::NodeCrash {
            self.dead_at = Some(fault.at_us);
            self.clock_us = self.clock_us.max(fault.at_us);
        }
        Some(fault)
    }

    /// Silent compute multiplier from the armed injector: `SlowNode`
    /// contention times `VfCreep` degradation (1.0 when healthy or
    /// unarmed). Gray faults never error, never enter the event trace
    /// and never reach telemetry — they only stretch the virtual
    /// clock, which is exactly what makes them hard to catch.
    fn gray_compute(&self) -> f64 {
        self.faults.as_ref().map_or(1.0, |f| {
            f.gray_compute_factor(self.clock_us) * f.gray_vf_factor(self.clock_us)
        })
    }

    /// Silent transfer multiplier from the armed injector's `GrayLink`
    /// windows (1.0 when healthy or unarmed).
    fn gray_link(&self) -> f64 {
        self.faults
            .as_ref()
            .map_or(1.0, |f| f.gray_link_factor(self.clock_us))
    }

    /// Fails fast when the session is already dead.
    fn check_alive(&self) -> Result<(), XrtError> {
        if self.dead_at.is_some() {
            Err(XrtError::DeviceLost)
        } else {
            Ok(())
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> f64 {
        self.clock_us
    }

    /// The recorded event trace.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total device memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.device.memories[0].capacity_gib * (1u64 << 30) as f64) as u64
    }

    /// Loads a full bitstream (programming time scales with size).
    pub fn load_bitstream(&mut self, name: &str) -> f64 {
        // ICAP-style programming at ~800 MB/s.
        let time_us = self.device.bitstream_mib * 1024.0 * 1024.0 / 800.0;
        self.clock_us += time_us + self.per_op_overhead_us;
        self.bitstream = Some(name.to_string());
        self.events.push(Event::LoadBitstream {
            name: name.to_string(),
            at_us: self.clock_us,
        });
        everest_telemetry::counter_add("platform.xrt.bitstream_loads", 1);
        everest_telemetry::event(
            "platform.xrt.load_bitstream",
            format!("{name} on {}", self.device.name),
        );
        time_us
    }

    /// Partially reconfigures one region (paper ref \[20\]): roughly a
    /// tenth of the full bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`XrtError::PartialReconfigFailed`] when an injected
    /// `PartialReconfigFail` fault fires — the attempt time is still
    /// charged and the loaded configuration is lost (a full
    /// [`load_bitstream`](Self::load_bitstream) repairs the device) —
    /// or [`XrtError::DeviceLost`] on a dead session.
    pub fn partial_reconfig(&mut self, region: &str) -> Result<f64, XrtError> {
        self.check_alive()?;
        let time_us = self.device.bitstream_mib * 0.1 * 1024.0 * 1024.0 / 800.0;
        match self
            .poll_fault(FaultOp::PartialReconfig, self.clock_us + time_us)
            .map(|f| f.kind)
        {
            Some(FaultKind::PartialReconfigFail) => {
                self.clock_us += time_us + self.per_op_overhead_us;
                self.bitstream = None;
                everest_telemetry::counter_add("platform.faults.reconfig_failures", 1);
                return Err(XrtError::PartialReconfigFailed {
                    region: region.to_string(),
                });
            }
            Some(FaultKind::NodeCrash) => return Err(XrtError::DeviceLost),
            // No other kind applies to PartialReconfig polls; listed so
            // a new fault kind is a compile error, not a fallthrough.
            Some(
                FaultKind::LinkDegrade { .. }
                | FaultKind::DmaTimeout
                | FaultKind::TransientKernelError
                | FaultKind::MemoryEcc
                | FaultKind::VfUnplug { .. }
                | FaultKind::SlowNode { .. }
                | FaultKind::GrayLink { .. }
                | FaultKind::VfCreep { .. }
                | FaultKind::PartitionSym { .. }
                | FaultKind::PartitionAsym { .. }
                | FaultKind::MsgDelay { .. }
                | FaultKind::MsgLoss { .. },
            )
            | None => {}
        }
        self.clock_us += time_us + self.per_op_overhead_us;
        if self.bitstream.is_none() {
            self.bitstream = Some(format!("pr:{region}"));
        }
        self.events.push(Event::PartialReconfig {
            region: region.to_string(),
            at_us: self.clock_us,
        });
        Ok(time_us)
    }

    /// Allocates a buffer object in the given bank.
    ///
    /// # Errors
    ///
    /// Returns [`XrtError::OutOfMemory`] when capacity is exhausted.
    pub fn alloc_bo(&mut self, bytes: u64, bank: u32) -> Result<BufferObject, XrtError> {
        self.check_alive()?;
        let capacity = self.memory_bytes();
        if self.allocated + bytes > capacity {
            return Err(XrtError::OutOfMemory {
                requested: bytes,
                available: capacity - self.allocated,
            });
        }
        self.allocated += bytes;
        let bo = BufferObject {
            handle: self.buffers.len(),
            bytes,
            bank: bank % self.memory.system.channels,
        };
        self.buffers.push(bo);
        Ok(bo)
    }

    /// Syncs a buffer over the host link; returns elapsed µs.
    ///
    /// # Errors
    ///
    /// Returns [`XrtError::BadHandle`] for stale handles,
    /// [`XrtError::DmaTimeout`] when an injected DMA fault fires (the
    /// hang is charged to the clock), or [`XrtError::DeviceLost`] on a
    /// dead session. An injected `LinkDegrade` fault is not an error:
    /// it inflates this and subsequent transfers until the flap ends.
    /// Gray `GrayLink` windows silently inflate the transfer with no
    /// event at all.
    pub fn sync_bo(&mut self, handle: usize, direction: Direction) -> Result<f64, XrtError> {
        self.check_alive()?;
        let bo = *self
            .buffers
            .get(handle)
            .ok_or(XrtError::BadHandle(handle))?;
        let gray = self.gray_link();
        let mut time_us =
            self.link.transfer_time_us(bo.bytes) * self.link_health.factor_at(self.clock_us) * gray
                + self.per_op_overhead_us;
        if let Some(fault) = self.poll_fault(FaultOp::Sync, self.clock_us + time_us) {
            match fault.kind {
                FaultKind::DmaTimeout => {
                    // The engine hangs at the fault instant and the
                    // driver times it out.
                    let hang_at = fault.at_us.clamp(self.clock_us, self.clock_us + time_us);
                    self.clock_us = hang_at + DMA_TIMEOUT_PENALTY_US;
                    everest_telemetry::counter_add("platform.faults.dma_timeouts", 1);
                    return Err(XrtError::DmaTimeout { bo: handle });
                }
                FaultKind::LinkDegrade {
                    factor,
                    duration_us,
                } => {
                    self.link_health.degrade(factor, fault.at_us + duration_us);
                    time_us = self.link.transfer_time_us(bo.bytes) * factor * gray
                        + self.per_op_overhead_us;
                }
                FaultKind::NodeCrash => return Err(XrtError::DeviceLost),
                // No other kind applies to Sync polls.
                FaultKind::PartialReconfigFail
                | FaultKind::TransientKernelError
                | FaultKind::MemoryEcc
                | FaultKind::VfUnplug { .. }
                | FaultKind::SlowNode { .. }
                | FaultKind::GrayLink { .. }
                | FaultKind::VfCreep { .. }
                | FaultKind::PartitionSym { .. }
                | FaultKind::PartitionAsym { .. }
                | FaultKind::MsgDelay { .. }
                | FaultKind::MsgLoss { .. } => {}
            }
        }
        self.clock_us += time_us;
        everest_telemetry::counter_add(self.link_counter(), bo.bytes);
        everest_telemetry::histogram_record("platform.sync_us", time_us);
        self.events.push(Event::Sync {
            bo: handle,
            direction,
            bytes: bo.bytes,
            at_us: self.clock_us,
        });
        Ok(time_us)
    }

    /// Runs a kernel for `cycles` at the device clock; returns elapsed µs.
    ///
    /// # Errors
    ///
    /// Returns [`XrtError::NoBitstream`] when nothing is programmed,
    /// [`XrtError::TransientKernelError`] when an injected transient
    /// fault fires (the wasted partial run is charged to the clock; a
    /// retry may succeed), or [`XrtError::DeviceLost`] on a dead
    /// session. An injected `MemoryEcc` fault is not an error: the
    /// controller scrubs and replays, stalling the kernel by
    /// [`MemoryModel::ecc_scrub_us`]. Gray `SlowNode` / `VfCreep`
    /// windows silently stretch the run with no event at all.
    pub fn run_kernel(&mut self, kernel: &str, cycles: u64) -> Result<f64, XrtError> {
        self.check_alive()?;
        if self.bitstream.is_none() {
            return Err(XrtError::NoBitstream);
        }
        let mut time_us = cycles as f64 / self.device.kernel_clock_mhz * self.gray_compute()
            + self.per_op_overhead_us;
        if let Some(fault) = self.poll_fault(FaultOp::Kernel, self.clock_us + time_us) {
            match fault.kind {
                FaultKind::TransientKernelError => {
                    // The run dies partway through: charge the wasted
                    // portion up to the fault instant.
                    let wasted = (fault.at_us - self.clock_us).clamp(0.0, time_us);
                    self.clock_us += wasted;
                    everest_telemetry::counter_add("platform.faults.kernel_errors", 1);
                    return Err(XrtError::TransientKernelError {
                        kernel: kernel.to_string(),
                    });
                }
                FaultKind::MemoryEcc => {
                    time_us += self.memory.ecc_scrub_us();
                    everest_telemetry::counter_add("platform.faults.ecc_events", 1);
                }
                FaultKind::NodeCrash => return Err(XrtError::DeviceLost),
                // No other kind applies to Kernel polls.
                FaultKind::LinkDegrade { .. }
                | FaultKind::DmaTimeout
                | FaultKind::PartialReconfigFail
                | FaultKind::VfUnplug { .. }
                | FaultKind::SlowNode { .. }
                | FaultKind::GrayLink { .. }
                | FaultKind::VfCreep { .. }
                | FaultKind::PartitionSym { .. }
                | FaultKind::PartitionAsym { .. }
                | FaultKind::MsgDelay { .. }
                | FaultKind::MsgLoss { .. } => {}
            }
        }
        self.clock_us += time_us;
        everest_telemetry::counter_add("platform.kernel.runs", 1);
        everest_telemetry::histogram_record("platform.kernel.run_us", time_us);
        self.events.push(Event::KernelRun {
            kernel: kernel.to_string(),
            cycles,
            at_us: self.clock_us,
        });
        Ok(time_us)
    }

    /// Retries [`run_kernel`](Self::run_kernel) on transient errors
    /// with deterministic exponential backoff drawn from `rng`.
    /// Non-transient errors (`DeviceLost`, `NoBitstream`) propagate
    /// immediately. Returns the elapsed µs of the successful run (the
    /// wasted attempts and backoff are already on the clock).
    ///
    /// # Errors
    ///
    /// Returns the last error once the retry budget is exhausted.
    pub fn run_kernel_with_retry(
        &mut self,
        kernel: &str,
        cycles: u64,
        policy: &RetryPolicy,
        rng: &mut DetRng,
    ) -> Result<f64, XrtError> {
        let mut attempt = 0u32;
        loop {
            match self.run_kernel(kernel, cycles) {
                Err(XrtError::TransientKernelError { .. }) if attempt < policy.max_retries => {
                    self.clock_us += policy.backoff_us(attempt, rng);
                    attempt += 1;
                    everest_telemetry::counter_add("platform.kernel.retries", 1);
                }
                other => return other,
            }
        }
    }

    /// Time for a kernel to stream `bytes` from external memory with the
    /// given access pattern (used by Olympus' data-movement planning).
    /// An injected `MemoryEcc` fault adds the scrub-and-replay stall.
    pub fn memory_stream_time_us(&mut self, bytes: u64, pattern: &AccessPattern) -> f64 {
        everest_telemetry::counter_add("platform.hbm.bytes", bytes);
        let mut time_us = self.memory.transfer_time_us(bytes, pattern);
        if let Some(fault) = self.poll_fault(FaultOp::MemoryStream, self.clock_us + time_us) {
            if fault.kind == FaultKind::MemoryEcc {
                time_us += self.memory.ecc_scrub_us();
                everest_telemetry::counter_add("platform.faults.ecc_events", 1);
            }
        }
        time_us
    }
}

/// Tracks placement of synthesized kernels onto a device's fabric.
#[derive(Debug, Clone)]
pub struct FabricAllocator {
    /// Total capacity.
    pub total: DeviceResources,
    used: DeviceResources,
    placed: Vec<(String, DeviceResources)>,
}

impl FabricAllocator {
    /// Creates an allocator for a device.
    pub fn new(device: &FpgaDevice) -> Self {
        FabricAllocator {
            total: device.resources,
            used: DeviceResources::default(),
            placed: Vec::new(),
        }
    }

    /// Attempts to place a kernel; returns `false` (placing nothing) when
    /// it does not fit.
    pub fn place(&mut self, name: &str, need: DeviceResources) -> bool {
        let after = DeviceResources {
            luts: self.used.luts + need.luts,
            ffs: self.used.ffs + need.ffs,
            dsps: self.used.dsps + need.dsps,
            brams: self.used.brams + need.brams,
            urams: self.used.urams + need.urams,
        };
        if !self.total.contains(&after) {
            return false;
        }
        self.used = after;
        self.placed.push((name.to_string(), need));
        true
    }

    /// Maximum number of copies of a kernel that fit alongside what is
    /// already placed.
    pub fn max_replicas(&self, need: &DeviceResources) -> u64 {
        let free = self.total.saturating_sub(self.used);
        let mut n = u64::MAX;
        for (have, want) in [
            (free.luts, need.luts),
            (free.ffs, need.ffs),
            (free.dsps, need.dsps),
            (free.brams, need.brams),
            (free.urams, need.urams),
        ] {
            if let Some(fit) = have.checked_div(want) {
                n = n.min(fit);
            }
        }
        if n == u64::MAX {
            0
        } else {
            n
        }
    }

    /// Scarcest-resource utilization in \[0, 1\].
    pub fn utilization(&self) -> f64 {
        self.total.utilization_of(&self.used)
    }

    /// Placed kernels.
    pub fn placements(&self) -> &[(String, DeviceResources)] {
        &self.placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_flow_advances_clock_in_order() {
        let mut dev = XrtDevice::open(FpgaDevice::alveo_u55c());
        dev.load_bitstream("rrtmg.xclbin");
        let bo = dev.alloc_bo(1 << 20, 0).unwrap();
        dev.sync_bo(bo.handle, Direction::HostToDevice).unwrap();
        dev.run_kernel("rrtmg", 3_000_000).unwrap();
        dev.sync_bo(bo.handle, Direction::DeviceToHost).unwrap();
        let times: Vec<f64> = dev
            .events()
            .iter()
            .map(|e| match e {
                Event::LoadBitstream { at_us, .. }
                | Event::PartialReconfig { at_us, .. }
                | Event::Sync { at_us, .. }
                | Event::KernelRun { at_us, .. }
                | Event::Fault { at_us, .. } => *at_us,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(dev.events().len(), 4);
        // 3M cycles at 300 MHz = 10 ms
        let Event::KernelRun { at_us, .. } = dev.events()[2] else {
            panic!()
        };
        let Event::Sync { at_us: prev, .. } = dev.events()[1] else {
            panic!()
        };
        assert!((at_us - prev - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn kernel_without_bitstream_fails() {
        let mut dev = XrtDevice::open(FpgaDevice::alveo_u55c());
        assert_eq!(dev.run_kernel("k", 100), Err(XrtError::NoBitstream));
    }

    #[test]
    fn memory_exhaustion_reported() {
        let mut dev = XrtDevice::open(FpgaDevice::alveo_u55c());
        // u55c has 16 GiB
        dev.alloc_bo(15 << 30, 0).unwrap();
        let err = dev.alloc_bo(2 << 30, 0).unwrap_err();
        assert!(matches!(err, XrtError::OutOfMemory { .. }));
    }

    #[test]
    fn partial_reconfig_is_much_faster_than_full() {
        let mut dev = XrtDevice::open(FpgaDevice::alveo_u55c());
        let full = dev.load_bitstream("full");
        let partial = dev.partial_reconfig("role0").unwrap();
        assert!(partial * 5.0 < full, "partial {partial} vs full {full}");
    }

    #[test]
    fn overhead_model_inflates_every_operation() {
        let mut native = XrtDevice::open(FpgaDevice::alveo_u55c());
        let mut emulated = XrtDevice::open(FpgaDevice::alveo_u55c());
        emulated.per_op_overhead_us = 50.0;
        native.load_bitstream("x");
        emulated.load_bitstream("x");
        let b1 = native.alloc_bo(4096, 0).unwrap();
        let b2 = emulated.alloc_bo(4096, 0).unwrap();
        let t_native = native.sync_bo(b1.handle, Direction::HostToDevice).unwrap();
        let t_emulated = emulated
            .sync_bo(b2.handle, Direction::HostToDevice)
            .unwrap();
        assert!((t_emulated - t_native - 50.0).abs() < 1e-9);
    }

    #[test]
    fn node_crash_kills_the_session_for_good() {
        use everest_faults::{FaultInjector, FaultPlan};
        let plan = FaultPlan::single_node_crash(7, 0, 100.0);
        let mut dev =
            XrtDevice::open(FpgaDevice::alveo_u55c()).with_faults(FaultInjector::for_node(plan, 0));
        dev.load_bitstream("x");
        let bo = dev.alloc_bo(4096, 0).unwrap();
        // bitstream load already pushed the clock past 100 µs, so the
        // very next faultable op observes the crash.
        assert_eq!(
            dev.sync_bo(bo.handle, Direction::HostToDevice),
            Err(XrtError::DeviceLost)
        );
        assert!(dev.is_dead());
        // everything else fails fast from now on
        assert_eq!(dev.run_kernel("k", 100), Err(XrtError::DeviceLost));
        assert_eq!(dev.alloc_bo(64, 0), Err(XrtError::DeviceLost));
        assert!(matches!(
            dev.events().last(),
            Some(Event::Fault { kind, .. }) if kind == "node_crash"
        ));
    }

    #[test]
    fn dma_timeout_charges_the_hang_and_errors() {
        use everest_faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
        let plan = FaultPlan::new(1).with_fault(FaultSpec {
            at_us: 0.0,
            node: 0,
            kind: FaultKind::DmaTimeout,
        });
        let mut dev =
            XrtDevice::open(FpgaDevice::alveo_u55c()).with_faults(FaultInjector::for_node(plan, 0));
        dev.load_bitstream("x");
        let bo = dev.alloc_bo(1 << 20, 0).unwrap();
        let before = dev.now_us();
        let err = dev.sync_bo(bo.handle, Direction::HostToDevice).unwrap_err();
        assert_eq!(err, XrtError::DmaTimeout { bo: bo.handle });
        assert!(
            dev.now_us() >= before + DMA_TIMEOUT_PENALTY_US,
            "timeout must cost at least the penalty"
        );
        // the fault is consumed: the retry succeeds
        assert!(dev.sync_bo(bo.handle, Direction::HostToDevice).is_ok());
    }

    #[test]
    fn link_degrade_inflates_transfers_until_recovery() {
        use everest_faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
        let plan = FaultPlan::new(2).with_fault(FaultSpec {
            at_us: 0.0,
            node: 0,
            kind: FaultKind::LinkDegrade {
                factor: 4.0,
                duration_us: 1e9,
            },
        });
        let mut healthy = XrtDevice::open(FpgaDevice::alveo_u55c());
        let mut flapping =
            XrtDevice::open(FpgaDevice::alveo_u55c()).with_faults(FaultInjector::for_node(plan, 0));
        let b1 = healthy.alloc_bo(1 << 24, 0).unwrap();
        let b2 = flapping.alloc_bo(1 << 24, 0).unwrap();
        let t_ok = healthy.sync_bo(b1.handle, Direction::HostToDevice).unwrap();
        let t_bad = flapping
            .sync_bo(b2.handle, Direction::HostToDevice)
            .unwrap();
        assert!(
            t_bad > t_ok * 3.0,
            "degraded transfer {t_bad} vs healthy {t_ok}"
        );
        assert!(flapping.link_health().is_degraded_at(flapping.now_us()));
        // and the episode persists for later transfers too
        let t_later = flapping
            .sync_bo(b2.handle, Direction::HostToDevice)
            .unwrap();
        assert!(t_later > t_ok * 3.0);
    }

    #[test]
    fn partial_reconfig_failure_requires_full_reload() {
        use everest_faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
        let plan = FaultPlan::new(3).with_fault(FaultSpec {
            at_us: 0.0,
            node: 0,
            kind: FaultKind::PartialReconfigFail,
        });
        let mut dev =
            XrtDevice::open(FpgaDevice::alveo_u55c()).with_faults(FaultInjector::for_node(plan, 0));
        dev.load_bitstream("shell");
        let err = dev.partial_reconfig("role0").unwrap_err();
        assert!(matches!(err, XrtError::PartialReconfigFailed { .. }));
        // configuration lost: kernels refuse to launch
        assert_eq!(dev.run_kernel("k", 100), Err(XrtError::NoBitstream));
        // a full reload repairs the device
        dev.load_bitstream("shell");
        assert!(dev.run_kernel("k", 100).is_ok());
    }

    #[test]
    fn transient_kernel_error_recovers_under_retry() {
        use everest_faults::{DetRng, FaultInjector, FaultKind, FaultPlan, FaultSpec, RetryPolicy};
        let plan = FaultPlan::new(4).with_fault(FaultSpec {
            at_us: 0.0,
            node: 0,
            kind: FaultKind::TransientKernelError,
        });
        let mut dev =
            XrtDevice::open(FpgaDevice::alveo_u55c()).with_faults(FaultInjector::for_node(plan, 0));
        dev.load_bitstream("x");
        let mut rng = DetRng::new(4);
        let policy = RetryPolicy::default();
        let before = dev.now_us();
        let t = dev
            .run_kernel_with_retry("k", 300_000, &policy, &mut rng)
            .unwrap();
        // 300k cycles at 300 MHz = 1 ms per attempt; the clock carries
        // the failed attempt and backoff on top of the good run.
        assert!((t - 1_000.0).abs() < 1.0, "got {t}");
        assert!(
            dev.now_us() > before + t,
            "failed attempt + backoff must be charged"
        );
        // with no retries allowed the same fault is fatal
        let plan2 = FaultPlan::new(5).with_fault(FaultSpec {
            at_us: 0.0,
            node: 0,
            kind: FaultKind::TransientKernelError,
        });
        let mut dev2 = XrtDevice::open(FpgaDevice::alveo_u55c())
            .with_faults(FaultInjector::for_node(plan2, 0));
        dev2.load_bitstream("x");
        let mut rng2 = DetRng::new(5);
        assert!(matches!(
            dev2.run_kernel_with_retry("k", 300_000, &RetryPolicy::none(), &mut rng2),
            Err(XrtError::TransientKernelError { .. })
        ));
    }

    #[test]
    fn ecc_event_stalls_but_does_not_fail() {
        use everest_faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
        let plan = FaultPlan::new(6).with_fault(FaultSpec {
            at_us: 0.0,
            node: 0,
            kind: FaultKind::MemoryEcc,
        });
        let mut dev =
            XrtDevice::open(FpgaDevice::alveo_u55c()).with_faults(FaultInjector::for_node(plan, 0));
        let mut clean = XrtDevice::open(FpgaDevice::alveo_u55c());
        dev.load_bitstream("x");
        clean.load_bitstream("x");
        let t_faulty = dev.run_kernel("k", 300_000).unwrap();
        let t_clean = clean.run_kernel("k", 300_000).unwrap();
        assert!(
            t_faulty > t_clean + 40.0,
            "scrub stall missing: {t_faulty} vs {t_clean}"
        );
    }

    #[test]
    fn gray_faults_inflate_silently_without_events_or_errors() {
        use everest_faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
        let plan = FaultPlan::new(9)
            .with_fault(FaultSpec::new(
                0.0,
                0,
                FaultKind::SlowNode {
                    factor: 3.0,
                    duration_us: 1e9,
                },
            ))
            .with_fault(FaultSpec::new(
                0.0,
                0,
                FaultKind::GrayLink {
                    factor: 4.0,
                    duration_us: 1e9,
                },
            ))
            .with_fault(FaultSpec::new(0.0, 0, FaultKind::VfCreep { per_ms: 0.001 }));
        let mut gray =
            XrtDevice::open(FpgaDevice::alveo_u55c()).with_faults(FaultInjector::for_node(plan, 0));
        let mut clean = XrtDevice::open(FpgaDevice::alveo_u55c());
        gray.load_bitstream("x");
        clean.load_bitstream("x");
        let b1 = gray.alloc_bo(1 << 24, 0).unwrap();
        let b2 = clean.alloc_bo(1 << 24, 0).unwrap();

        // Every op succeeds, yet the gray session pays more time.
        let t_sync_gray = gray.sync_bo(b1.handle, Direction::HostToDevice).unwrap();
        let t_sync_clean = clean.sync_bo(b2.handle, Direction::HostToDevice).unwrap();
        assert!(
            t_sync_gray > t_sync_clean * 3.5,
            "gray link: {t_sync_gray} vs {t_sync_clean}"
        );
        let t_run_gray = gray.run_kernel("k", 300_000).unwrap();
        let t_run_clean = clean.run_kernel("k", 300_000).unwrap();
        assert!(
            t_run_gray > t_run_clean * 2.9,
            "slow node: {t_run_gray} vs {t_run_clean}"
        );
        assert!(!gray.is_dead());
        assert!(!gray.link_health().is_degraded_at(gray.now_us()));

        // Invisibility is the point: no Fault event is ever recorded.
        assert!(
            !gray
                .events()
                .iter()
                .any(|e| matches!(e, Event::Fault { .. })),
            "gray faults must leave no trace in the event log"
        );
    }

    #[test]
    fn allocator_places_until_full_and_counts_replicas() {
        let dev = FpgaDevice::cloudfpga();
        let mut alloc = FabricAllocator::new(&dev);
        let kernel = DeviceResources {
            luts: 100_000,
            ffs: 150_000,
            dsps: 800,
            brams: 400,
            urams: 0,
        };
        assert_eq!(alloc.max_replicas(&kernel), 3); // LUT-bound: 331k/100k
        assert!(alloc.place("k0", kernel));
        assert!(alloc.place("k1", kernel));
        assert!(alloc.place("k2", kernel));
        assert!(!alloc.place("k3", kernel), "fourth copy must not fit");
        assert_eq!(alloc.placements().len(), 3);
        assert!(alloc.utilization() > 0.85);
    }
}
